"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` needs ``bdist_wheel`` for PEP 660 editable installs;
offline machines without ``wheel`` can fall back to
``python setup.py develop`` which this shim enables.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
