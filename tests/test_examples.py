"""Every shipped example must run cleanly end-to-end."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def test_at_least_three_examples_ship():
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples should narrate what they do"
