"""Shared fixtures of the test suite."""

from __future__ import annotations

import pytest

from repro.core.model import EventLog
from repro.kvstore import InMemoryStore, LSMStore

try:  # hypothesis drives the differential suite; the rest runs without it
    from hypothesis import HealthCheck, settings

    settings.register_profile(
        "ci",
        deadline=None,  # store setup time varies too much for per-example deadlines
        max_examples=50,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.load_profile("ci")
except ImportError:  # pragma: no cover
    pass


@pytest.fixture
def memory_store():
    store = InMemoryStore()
    yield store
    store.close()


@pytest.fixture
def lsm_store(tmp_path):
    store = LSMStore(str(tmp_path / "store"))
    yield store
    store.close()


@pytest.fixture(params=["memory", "lsm"])
def any_store(request, tmp_path):
    """Both backends behind the same API; tests run once per backend."""
    if request.param == "memory":
        store = InMemoryStore()
    else:
        store = LSMStore(str(tmp_path / "store"))
    yield store
    store.close()


@pytest.fixture
def paper_log() -> EventLog:
    """The trace of the paper's §2.1 example plus companions."""
    return EventLog.from_dict(
        {
            "t1": list("AAABAACB"),
            "t2": list("ABC"),
            "t3": list("CBA"),
        }
    )


@pytest.fixture
def table3_trace() -> tuple[list[str], list[int]]:
    """The exact trace of the paper's Table 3: <(A,1)...(A,6)>."""
    return ["A", "A", "B", "A", "B", "A"], [1, 2, 3, 4, 5, 6]
