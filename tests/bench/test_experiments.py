"""Experiment harness: every table/figure function produces sane rows."""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    ALL_EXPERIMENTS,
    exp_fig2,
    exp_fig3,
    exp_fig4,
    exp_fig5,
    exp_fig6,
    exp_fig7,
    exp_pattern_language,
    exp_table4,
    exp_table5,
    exp_table6,
    exp_table7,
    exp_table8,
)

SCALE = 0.01
SMALL = ("max_100", "bpi_2013")


class TestDatasetExperiments:
    def test_table4_rows(self):
        result = exp_table4(SCALE, datasets=SMALL)
        assert result.columns[0] == "log file"
        assert [row[0] for row in result.rows] == list(SMALL)
        assert all(row[1] > 0 and row[2] > 0 for row in result.rows)

    def test_fig2_distributions(self):
        result = exp_fig2(SCALE, datasets=SMALL)
        for row in result.rows:
            _, ev_min, ev_mean, ev_max, act_min, act_mean, act_max = row
            assert ev_min <= ev_mean <= ev_max
            assert act_min <= act_mean <= act_max


class TestIndexingExperiments:
    def test_table5_times_positive(self):
        result = exp_table5(SCALE, datasets=SMALL)
        for row in result.rows:
            assert all(cell > 0 for cell in row[1:])

    def test_fig3_covers_three_sweeps(self):
        result = exp_fig3(0.005)
        sweeps = {row[0] for row in result.rows}
        assert sweeps == {"events/trace", "traces", "activities"}
        assert all(cell > 0 for row in result.rows for cell in row[2:])

    def test_table6_columns(self):
        result = exp_table6(SCALE, datasets=("bpi_2013",), workers=2)
        assert len(result.columns) == 7
        (row,) = result.rows
        assert all(cell > 0 for cell in row[1:])


class TestQueryExperiments:
    def test_table7(self):
        result = exp_table7(SCALE, datasets=("max_100",), patterns_per_length=3)
        (row,) = result.rows
        assert all(cell > 0 for cell in row[1:])

    def test_fig4_lengths(self):
        result = exp_fig4(SCALE, dataset="max_100", lengths=(2, 4), patterns_per_length=3)
        assert [row[0] for row in result.rows] == [2, 4]

    def test_table8(self):
        result = exp_table8(
            SCALE, datasets=("max_100",), lengths=(2,), patterns_per_config=3
        )
        (row,) = result.rows
        assert row[0] == 2 and row[1] == "max_100"
        assert all(cell > 0 for cell in row[2:])


class TestContinuationExperiments:
    def test_fig5(self):
        result = exp_fig5(SCALE, dataset="max_100", lengths=(1, 2), patterns_per_length=2)
        assert len(result.rows) == 2

    def test_fig6_brackets(self):
        result = exp_fig6(SCALE, dataset="max_100", top_ks=(0, 2))
        assert len(result.rows) == 2

    def test_fig7_accuracy_bounds(self):
        result = exp_fig7(SCALE, dataset="max_100", top_ks=(1, 50))
        accuracies = [row[1] for row in result.rows]
        assert all(0.0 <= acc <= 1.0 for acc in accuracies)
        assert accuracies[-1] == 1.0  # huge topK == accurate


class TestPatternLanguageExperiment:
    def test_per_kind_rows_and_snapshot(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # the snapshot lands in the cwd
        result = exp_pattern_language(
            SCALE, dataset="max_100", patterns_per_kind=2, repeats=1
        )
        kinds = [row[0] for row in result.rows]
        assert kinds == ["windowed", "alternation", "kleene", "negation", "all"]
        assert all(row[1] > 0 for row in result.rows)  # pattern counts
        assert all(row[2] > 0 and row[3] > 0 for row in result.rows)  # timings
        assert (tmp_path / "BENCH_pattern_language.json").is_file()


class TestRegistryCompleteness:
    def test_every_paper_artifact_has_an_experiment(self):
        paper_artifacts = {
            "table4",
            "table5",
            "table6",
            "table7",
            "table8",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
        }
        assert paper_artifacts <= set(ALL_EXPERIMENTS)
        # Beyond the paper: repo-specific ablations must stay registered
        # so the runner exposes them.
        assert set(ALL_EXPERIMENTS) - paper_artifacts == {
            "ablation_cache",
            "ablation_planner",
            "leveled_compaction",
            "pattern_language",
            "postings_compression",
            "sharded_service",
        }
