"""Workload preparation helpers used by every benchmark."""

from __future__ import annotations

from repro.bench.workloads import (
    build_index,
    contiguous_patterns,
    prepared_dataset,
    prepared_index,
    stnm_patterns,
    timed,
)
from repro.core.policies import Policy


class TestTimed:
    def test_returns_elapsed_and_value(self):
        elapsed, value = timed(lambda: 41 + 1)
        assert value == 42
        assert elapsed >= 0.0


class TestCaches:
    def test_dataset_cache_returns_same_object(self):
        a = prepared_dataset("bpi_2013", 0.01)
        b = prepared_dataset("bpi_2013", 0.01)
        assert a is b

    def test_index_cache_keyed_by_policy(self):
        stnm = prepared_index("bpi_2013", 0.01, Policy.STNM)
        sc = prepared_index("bpi_2013", 0.01, Policy.SC)
        assert stnm is not sc
        assert stnm is prepared_index("bpi_2013", 0.01, Policy.STNM)


class TestPatternSampling:
    def test_stnm_patterns_are_gapped_subsequences(self):
        log = prepared_dataset("max_100", 0.1)
        for pattern in stnm_patterns(log, 4, 10, seed=1):
            assert len(pattern) == 4
            assert any(_is_subsequence(pattern, t.activities) for t in log)

    def test_contiguous_patterns_are_substrings(self):
        log = prepared_dataset("max_100", 0.1)
        for pattern in contiguous_patterns(log, 3, 10, seed=2):
            assert any(
                trace.activities[i : i + 3] == pattern
                for trace in log
                for i in range(len(trace) - 2)
            )

    def test_patterns_deterministic_per_seed(self):
        log = prepared_dataset("max_100", 0.1)
        assert stnm_patterns(log, 3, 5, seed=9) == stnm_patterns(log, 3, 5, seed=9)
        assert stnm_patterns(log, 3, 5, seed=9) != stnm_patterns(log, 3, 5, seed=10)

    def test_short_trace_fallback(self):
        from repro.core.model import EventLog

        log = EventLog.from_dict({"t": ["a"]})
        patterns = stnm_patterns(log, 5, 3, seed=0)
        assert len(patterns) == 3  # falls back to alphabet sampling


class TestBuildIndex:
    def test_build_index_queries_work(self):
        log = prepared_dataset("bpi_2013", 0.01)
        index = build_index(log, Policy.STNM)
        patterns = stnm_patterns(log, 2, 3, seed=4)
        assert any(index.detect(p) for p in patterns)


def _is_subsequence(pattern, activities):
    it = iter(activities)
    return all(any(a == p for a in it) for p in pattern)
