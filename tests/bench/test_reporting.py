"""Result table formatting and CSV persistence."""

from __future__ import annotations

import csv

import pytest

from repro.bench.reporting import ExperimentResult, format_table, write_csv


@pytest.fixture
def result():
    result = ExperimentResult("tableX", "Demo", ["name", "time"])
    result.add("alpha", 1.234)
    result.add("beta", 0.00042)
    result.note("a caveat")
    return result


class TestExperimentResult:
    def test_row_arity_enforced(self, result):
        with pytest.raises(ValueError):
            result.add("only-one-cell")

    def test_format_contains_everything(self, result):
        text = format_table(result)
        assert "tableX" in text and "Demo" in text
        assert "alpha" in text and "beta" in text
        assert "a caveat" in text

    def test_float_rendering(self):
        result = ExperimentResult("t", "t", ["v"])
        result.add(0.0)
        result.add(123.456)
        result.add(0.5)
        result.add(0.00001)
        text = format_table(result)
        assert "123.5" in text
        assert "0.500" in text

    def test_write_csv_roundtrip(self, result, tmp_path):
        path = write_csv(result, str(tmp_path))
        with open(path, newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["name", "time"]
        assert rows[1][0] == "alpha"
        assert len(rows) == 3


class TestRunnerCli:
    def test_runs_selected_experiment(self, tmp_path, capsys, monkeypatch):
        from repro.bench.runner import main

        monkeypatch.chdir(tmp_path)
        assert main(["table4", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "table4" in out
        assert (tmp_path / "results" / "table4.csv").exists()
