"""Postings codec: exact round-trips, legacy interop, strict corrupt input."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import CorruptPostingsError
from repro.core.postings import (
    TAG_FLOAT,
    TAG_INT,
    TAG_INTFLOAT,
    TAG_RAW,
    decode_index_value,
    decode_postings,
    encode_postings,
)
from repro.kvstore.encoding import encode_value

_trace_ids = st.text(min_size=0, max_size=12)
_int_ts = st.integers(min_value=-(2**63), max_value=2**63 - 1)
_float_ts = st.floats(allow_nan=False)
_any_ts = st.one_of(_int_ts, _float_ts)


def _entries(ts_strategy):
    return st.lists(
        st.tuples(_trace_ids, ts_strategy, ts_strategy), max_size=60
    )


class TestRoundTrip:
    def test_empty(self):
        assert decode_postings(encode_postings([])) == []

    def test_single_entry(self):
        entries = [("trace-1", 10, 12)]
        assert decode_postings(encode_postings(entries)) == entries

    def test_non_monotonic_timestamps(self):
        # Deltas go negative; zigzag must keep them exact.
        entries = [("t", 100, 90), ("t", 5, 500), ("u", -7, -7), ("t", 80, 0)]
        assert decode_postings(encode_postings(entries)) == entries

    def test_int64_boundaries(self):
        big = 2**63 - 1
        entries = [("t", big, -big), ("t", 0, big), ("u", -(2**63), 0)]
        assert decode_postings(encode_postings(entries)) == entries

    @given(_entries(_int_ts))
    @settings(max_examples=50, deadline=None)
    def test_int_entries(self, entries):
        assert decode_postings(encode_postings(entries)) == entries

    @given(_entries(_float_ts))
    @settings(max_examples=50, deadline=None)
    def test_float_entries(self, entries):
        assert decode_postings(encode_postings(entries)) == entries

    @given(_entries(_any_ts))
    @settings(max_examples=50, deadline=None)
    def test_mixed_type_entries(self, entries):
        # Mixed int/float rows fall back to RAW; per-field types survive.
        decoded = decode_postings(encode_postings(entries))
        assert decoded == entries
        for row, expected in zip(decoded, entries):
            assert [type(v) for v in row] == [type(v) for v in expected]

    def test_non_finite_floats_round_trip(self):
        entries = [("t", math.inf, -math.inf), ("t", 0.5, math.inf)]
        chunk = encode_postings(entries)
        assert chunk[0] == TAG_FLOAT  # raw doubles, not int deltas
        assert decode_postings(chunk) == entries

    def test_nan_round_trips_via_float_format(self):
        chunk = encode_postings([("t", math.nan, 1.0)])
        ((trace, ts_a, ts_b),) = decode_postings(chunk)
        assert trace == "t" and math.isnan(ts_a) and ts_b == 1.0


class TestFormatSelection:
    def test_all_int_picks_int(self):
        assert encode_postings([("t", 1, 2)])[0] == TAG_INT

    def test_integral_floats_pick_intfloat_and_stay_float(self):
        chunk = encode_postings([("t", 1.0, 2.0)])
        assert chunk[0] == TAG_INTFLOAT
        ((_, ts_a, ts_b),) = decode_postings(chunk)
        assert type(ts_a) is float and type(ts_b) is float

    def test_bool_timestamp_falls_back_to_raw(self):
        # bool is an int subclass; exact-type checks must not coerce it.
        chunk = encode_postings([("t", True, 1)])
        assert chunk[0] == TAG_RAW
        assert decode_postings(chunk) == [("t", True, 1)]

    def test_non_string_trace_id_falls_back_to_raw(self):
        entries = [(42, 1, 2)]
        chunk = encode_postings(entries)
        assert chunk[0] == TAG_RAW
        assert decode_postings(chunk) == entries

    def test_large_floats_use_raw_doubles(self):
        # 2**53 + 1 is not exactly representable as an "integral float"
        # delta; the codec must not round it through int.
        value = float(2**60)
        chunk = encode_postings([("t", value, value)])
        assert chunk[0] == TAG_FLOAT
        assert decode_postings(chunk) == [("t", value, value)]

    def test_compresses_realistic_postings(self):
        entries = [
            (f"trace-{i % 8}", 1_700_000_000 + i, 1_700_000_000 + i + 3)
            for i in range(500)
        ]
        chunk = encode_postings(entries)
        baseline = encode_value([list(e) for e in entries])
        assert len(chunk) * 2 < len(baseline)


class TestCorruptInput:
    def test_empty_chunk(self):
        with pytest.raises(CorruptPostingsError):
            decode_postings(b"")

    def test_unknown_tag(self):
        with pytest.raises(CorruptPostingsError, match="unknown"):
            decode_postings(b"\x7f\x01")

    def test_truncated_varint(self):
        chunk = encode_postings([("t", 1000000, 2000000)])
        with pytest.raises(CorruptPostingsError):
            decode_postings(chunk[:-1])

    def test_trailing_bytes(self):
        chunk = encode_postings([("t", 1, 2)])
        with pytest.raises(CorruptPostingsError, match="trailing"):
            decode_postings(chunk + b"\x00")

    def test_overlong_varint(self):
        with pytest.raises(CorruptPostingsError, match="overlong"):
            decode_postings(bytes([TAG_INT]) + b"\xff" * 11)

    def test_corrupt_raw_payload(self):
        with pytest.raises(CorruptPostingsError):
            decode_postings(bytes([TAG_RAW]) + b"\x99garbage")

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_arbitrary_bytes_never_crash_unexpectedly(self, blob):
        # Any input either decodes to a list of 3-tuples or raises the
        # typed error -- no IndexError/struct.error escapes.
        try:
            rows = decode_postings(blob)
        except CorruptPostingsError:
            return
        assert isinstance(rows, list)
        assert all(isinstance(r, tuple) for r in rows)


class TestIndexValueInterop:
    def test_splices_legacy_and_encoded_items(self):
        legacy = [["t1", 1, 2], ("t2", 3, 4)]
        encoded = encode_postings([("t3", 5, 6), ("t1", 7, 8)])
        value = legacy + [encoded]
        assert decode_index_value(value) == [
            ("t1", 1, 2),
            ("t2", 3, 4),
            ("t3", 5, 6),
            ("t1", 7, 8),
        ]

    def test_pure_legacy_value(self):
        assert decode_index_value([["t", 1, 2]]) == [("t", 1, 2)]

    def test_pure_encoded_value(self):
        chunks = [
            encode_postings([("a", 1, 2)]),
            encode_postings([("b", 3, 4)]),
        ]
        assert decode_index_value(chunks) == [("a", 1, 2), ("b", 3, 4)]
