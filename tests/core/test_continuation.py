"""Pattern continuation (§3.2.2): Accurate / Fast / Hybrid and Equation 1."""

from __future__ import annotations

import math

import pytest

from repro.core.engine import SequenceIndex
from repro.core.errors import EmptyPatternError
from repro.core.matches import ContinuationProposal
from repro.core.model import EventLog
from repro.core.policies import Policy


@pytest.fixture
def index(paper_log):
    idx = SequenceIndex(policy=Policy.STNM)
    idx.update(paper_log)
    return idx


class TestScoring:
    def test_equation_one(self):
        proposal = ContinuationProposal("X", completions=10, average_duration=2.0, exact=True)
        assert proposal.score == 5.0

    def test_zero_duration_scores_infinite(self):
        proposal = ContinuationProposal("X", 3, 0.0, True)
        assert math.isinf(proposal.score)

    def test_zero_completions_scores_zero(self):
        proposal = ContinuationProposal("X", 0, 0.0, True)
        assert proposal.score == 0.0


class TestAccurate:
    def test_counts_are_exact_detections(self, index):
        proposals = index.continuations(["A", "B"], mode="accurate")
        by_event = {p.event: p for p in proposals}
        # A,B -> C completes in t1 via (0,3,6)? (B,C)=(3,6) chains, and in
        # t2 via (0,1,2): check against detect().
        assert by_event["C"].completions == len(index.detect(["A", "B", "C"]))
        for proposal in proposals:
            assert proposal.exact
            assert proposal.completions == len(index.detect(["A", "B", proposal.event]))

    def test_sorted_by_score(self, index):
        proposals = index.continuations(["A", "B"], mode="accurate")
        scores = [p.score for p in proposals]
        assert scores == sorted(scores, reverse=True)

    def test_within_constraint_filters(self, paper_log):
        idx = SequenceIndex(policy=Policy.STNM)
        idx.update(paper_log)
        loose = idx.explorer.accurate(["A"], within=None)
        tight = idx.explorer.accurate(["A"], within=0.5)
        loose_total = sum(p.completions for p in loose)
        tight_total = sum(p.completions for p in tight)
        assert tight_total <= loose_total

    def test_within_keeps_only_quick_followups(self):
        log = EventLog.from_dict({"t": ["A", "B"]})  # gap 1
        idx = SequenceIndex(policy=Policy.STNM)
        idx.update(log)
        assert idx.explorer.accurate(["A"], within=1.0)[0].completions == 1
        assert idx.explorer.accurate(["A"], within=0.5)[0].completions == 0

    def test_empty_pattern_rejected(self, index):
        with pytest.raises(EmptyPatternError):
            index.continuations([], mode="accurate")

    def test_unknown_last_event_no_candidates(self, index):
        assert index.continuations(["ZZZ"], mode="accurate") == []


class TestFast:
    def test_uses_pair_statistics(self, index):
        proposals = index.continuations(["A"], mode="fast")
        by_event = {p.event: p for p in proposals}
        # Count[A] rows: completions of (A, x) pairs across traces.
        assert by_event["B"].completions == 3
        assert not by_event["B"].exact

    def test_upper_bound_capped_by_pattern_pairs(self, index):
        # For pattern A->B, (A,B) completes 3 times; candidate completions
        # are capped at 3 even if the candidate pair is more frequent.
        proposals = index.continuations(["A", "B"], mode="fast")
        assert all(p.completions <= 3 for p in proposals)

    def test_fast_bounds_accurate(self, index):
        """Fast's counts are upper bounds of Accurate's exact counts."""
        fast = {p.event: p for p in index.continuations(["A", "B"], mode="fast")}
        accurate = index.continuations(["A", "B"], mode="accurate")
        for proposal in accurate:
            assert proposal.completions <= fast[proposal.event].completions

    def test_single_event_pattern_no_cap(self, index):
        proposals = index.continuations(["A"], mode="fast")
        assert proposals  # no pairs to cap by; candidates returned as-is


class TestHybrid:
    def test_topk_zero_equals_fast(self, index):
        assert index.continuations(["A", "B"], mode="hybrid", top_k=0) == \
            index.continuations(["A", "B"], mode="fast")

    def test_full_topk_equals_accurate(self, index):
        fast = index.continuations(["A", "B"], mode="fast")
        hybrid = index.continuations(["A", "B"], mode="hybrid", top_k=len(fast))
        accurate = index.continuations(["A", "B"], mode="accurate")
        assert hybrid == accurate

    def test_returns_at_most_topk(self, index):
        hybrid = index.continuations(["A", "B"], mode="hybrid", top_k=1)
        assert len(hybrid) == 1
        assert hybrid[0].exact

    def test_negative_topk_rejected(self, index):
        with pytest.raises(ValueError):
            index.continuations(["A"], mode="hybrid", top_k=-1)

    def test_unknown_mode_rejected(self, index):
        with pytest.raises(ValueError):
            index.continuations(["A"], mode="psychic")


class TestRankingAccuracy:
    def test_identical_rankings_scoreone(self, index):
        reference = index.continuations(["A", "B"], mode="accurate")
        assert index.explorer.ranking_accuracy(reference, reference) == 1.0

    def test_empty_reference_is_perfect(self, index):
        assert index.explorer.ranking_accuracy([], []) == 1.0

    def test_partial_overlap(self):
        ref = [
            ContinuationProposal("a", 2, 1.0, True),
            ContinuationProposal("b", 1, 1.0, True),
        ]
        cand = [
            ContinuationProposal("a", 5, 1.0, False),
            ContinuationProposal("z", 4, 1.0, False),
        ]
        from repro.core.continuation import ContinuationExplorer

        assert ContinuationExplorer.ranking_accuracy(ref, cand) == 0.5

    def test_hybrid_accuracy_monotone_to_one(self, index):
        reference = index.continuations(["A", "B"], mode="accurate")
        alphabet = len(index.continuations(["A", "B"], mode="fast"))
        accuracies = [
            index.explorer.ranking_accuracy(
                reference, index.continuations(["A", "B"], mode="hybrid", top_k=k)
            )
            for k in range(alphabet + 1)
        ]
        assert accuracies[-1] == 1.0


class TestExploreAt:
    def test_append_position_equals_accurate(self, index):
        pattern = ["A", "B"]
        assert index.explore_at(pattern, len(pattern)) == index.continuations(
            pattern, mode="accurate"
        )

    def test_prepend_position(self, index):
        proposals = index.explore_at(["B", "C"], 0)
        by_event = {p.event: p for p in proposals}
        # A precedes B somewhere and A->B->C completes (t2 at least).
        assert by_event["A"].completions == len(index.detect(["A", "B", "C"]))

    def test_middle_insertion(self, index):
        proposals = index.explore_at(["A", "C"], 1)
        by_event = {p.event: p for p in proposals}
        assert "B" in by_event
        assert by_event["B"].completions == len(index.detect(["A", "B", "C"]))

    def test_candidates_require_both_neighbours(self, index):
        events = {p.event for p in index.explore_at(["A", "C"], 1)}
        # Candidate must follow A and precede C somewhere in the logs.
        followers = set(index.tables.get_counts("A"))
        predecessors = set(index.tables.get_reverse_counts("C"))
        assert events <= (followers & predecessors)

    def test_position_bounds(self, index):
        with pytest.raises(ValueError):
            index.explore_at(["A"], 5)
        with pytest.raises(EmptyPatternError):
            index.explore_at([], 0)
