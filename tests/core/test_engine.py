"""SequenceIndex facade: wiring, persistence, partitions, pruning."""

from __future__ import annotations

import pytest

from repro.core.engine import SequenceIndex
from repro.core.errors import IndexStateError
from repro.core.model import Event, EventLog
from repro.core.policies import PairMethod, Policy
from repro.kvstore import LSMStore


class TestFacade:
    def test_default_store_is_memory(self, paper_log):
        index = SequenceIndex()
        index.update(paper_log)
        assert index.detect(["A", "B"])
        assert index.policy is Policy.STNM
        assert index.method is PairMethod.INDEXING

    def test_trace_ids_and_activities(self, paper_log):
        index = SequenceIndex()
        index.update(paper_log)
        assert sorted(index.trace_ids()) == ["t1", "t2", "t3"]
        assert index.activities() == {"A", "B", "C"}

    def test_context_manager_closes_store(self, tmp_path):
        with SequenceIndex(LSMStore(str(tmp_path / "ix"))) as index:
            index.update(EventLog.from_dict({"t": "AB"}))
        from repro.kvstore.api import StoreClosedError

        with pytest.raises(StoreClosedError):
            index.store.get("meta", "meta")

    def test_prune_trace(self, paper_log):
        index = SequenceIndex()
        index.update(paper_log)
        index.prune_trace("t1")
        assert "t1" not in index.trace_ids()
        # Index entries survive pruning: queries still work.
        assert any(m.trace_id == "t1" for m in index.detect(["A", "B"]))
        # But incremental updates to the pruned trace would re-create pairs,
        # so the trace is simply gone from the bookkeeping tables.
        assert index.tables.get_last_checked(("A", "B")).get("t1") is None


class TestIntrospection:
    def test_get_trace(self, paper_log):
        index = SequenceIndex()
        index.update(paper_log)
        assert index.get_trace("t2") == [("A", 0), ("B", 1), ("C", 2)]
        assert index.get_trace("missing") == []

    def test_top_pairs(self, paper_log):
        index = SequenceIndex()
        index.update(paper_log)
        top = index.top_pairs(3)
        assert len(top) == 3
        counts = [count for _, count in top]
        assert counts == sorted(counts, reverse=True)
        # (A, B) completes 3 times and is the most frequent pair.
        assert top[0] == (("A", "B"), 3)

    def test_top_pairs_k_bounds(self, paper_log):
        index = SequenceIndex()
        index.update(paper_log)
        with pytest.raises(ValueError):
            index.top_pairs(0)
        everything = index.top_pairs(1000)
        assert len(everything) >= 5


class TestPersistence:
    def test_detect_after_reopen(self, tmp_path, paper_log):
        path = str(tmp_path / "ix")
        with SequenceIndex(LSMStore(path)) as index:
            index.update(paper_log)
            before = index.detect(["A", "B"])
        with SequenceIndex(LSMStore(path)) as index:
            assert index.detect(["A", "B"]) == before

    def test_policy_mismatch_on_reopen(self, tmp_path, paper_log):
        path = str(tmp_path / "ix")
        with SequenceIndex(LSMStore(path), policy=Policy.STNM) as index:
            index.update(paper_log)
        with pytest.raises(IndexStateError):
            SequenceIndex(LSMStore(path), policy=Policy.SC)

    def test_incremental_across_reopen(self, tmp_path):
        path = str(tmp_path / "ix")
        with SequenceIndex(LSMStore(path)) as index:
            index.update([Event("t", "A", 1)])
        with SequenceIndex(LSMStore(path)) as index:
            index.update([Event("t", "B", 2)])
            assert index.tables.get_index(("A", "B")) == [("t", 1, 2)]


class TestPartitions:
    def test_partition_isolation_and_union(self, paper_log):
        index = SequenceIndex()
        index.update(
            EventLog.from_dict({"jan_t": "AB"}), partition="2026-01"
        )
        index.update(
            EventLog.from_dict({"feb_t": "AB"}), partition="2026-02"
        )
        jan = index.detect(["A", "B"], partition="2026-01")
        feb = index.detect(["A", "B"], partition="2026-02")
        both = index.detect(["A", "B"], partition=None)
        assert {m.trace_id for m in jan} == {"jan_t"}
        assert {m.trace_id for m in feb} == {"feb_t"}
        assert {m.trace_id for m in both} == {"jan_t", "feb_t"}

    def test_default_partition_included_in_union(self):
        index = SequenceIndex()
        index.update(EventLog.from_dict({"t": "AB"}))
        assert index.detect(["A", "B"], partition=None)

    def test_partitions_survive_reopen(self, tmp_path):
        path = str(tmp_path / "ix")
        with SequenceIndex(LSMStore(path)) as index:
            index.update(EventLog.from_dict({"t": "AB"}), partition="p1")
        with SequenceIndex(LSMStore(path)) as index:
            assert index.detect(["A", "B"], partition=None)
            assert index.detect(["A", "B"], partition="p1")

    def test_statistics_are_global_across_partitions(self):
        index = SequenceIndex()
        index.update(EventLog.from_dict({"a": "AB"}), partition="p1")
        index.update(EventLog.from_dict({"b": "AB"}), partition="p2")
        assert index.statistics(["A", "B"]).pairs[0].completions == 2
