"""Index builder (Algorithm 1): full builds, incremental updates,
duplicate prevention, parallel parity."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import IndexBuilder
from repro.core.engine import SequenceIndex
from repro.core.errors import TraceOrderError
from repro.core.model import Event, EventLog
from repro.core.policies import PairMethod, Policy
from repro.executor import ParallelExecutor
from repro.kvstore import InMemoryStore


def _build(log, policy=Policy.STNM, method=None, executor=None):
    store = InMemoryStore()
    builder = IndexBuilder(store, policy, method, executor)
    stats = builder.build(log)
    return builder, stats


class TestFullBuild:
    def test_counts_in_stats(self, paper_log):
        _, stats = _build(paper_log)
        assert stats.traces_seen == 3
        assert stats.new_traces == 3
        assert stats.events_indexed == paper_log.num_events
        assert stats.pairs_created > 0

    def test_seq_table_filled(self, paper_log):
        builder, _ = _build(paper_log)
        assert builder.tables.get_sequence("t2") == [("A", 0), ("B", 1), ("C", 2)]

    def test_index_matches_pair_creation(self, paper_log):
        from repro.core.pairs import indexing_pairs

        builder, _ = _build(paper_log)
        trace = paper_log.trace("t1")
        expected = indexing_pairs(trace.activities, trace.timestamps)
        for pair, ts_pairs in expected.items():
            grouped = builder.tables.get_index_grouped(pair)
            assert grouped.get("t1") == ts_pairs

    def test_counts_and_durations(self):
        log = EventLog.from_dict({"t": "AB"})
        builder, _ = _build(log)
        assert builder.tables.get_pair_count(("A", "B")) == (1.0, 1)
        assert builder.tables.get_reverse_counts("B") == {"A": (1.0, 1)}

    def test_last_checked_filled(self, paper_log):
        builder, _ = _build(paper_log)
        checked = builder.tables.get_last_checked(("A", "B"))
        assert "t1" in checked and "t2" in checked

    def test_empty_batch(self):
        builder, stats = _build(EventLog())
        assert stats.traces_seen == 0

    @pytest.mark.parametrize(
        "method", (PairMethod.INDEXING, PairMethod.PARSING, PairMethod.STATE)
    )
    def test_methods_produce_identical_tables(self, paper_log, method):
        reference, _ = _build(paper_log, method=PairMethod.INDEXING)
        other, _ = _build(paper_log, method=method)
        for pair in [("A", "B"), ("A", "A"), ("B", "C"), ("C", "B")]:
            assert sorted(other.tables.get_index(pair)) == sorted(
                reference.tables.get_index(pair)
            )


class TestConfigurationValidation:
    def test_sc_policy_requires_strict(self):
        with pytest.raises(ValueError):
            IndexBuilder(InMemoryStore(), Policy.SC, PairMethod.INDEXING)

    def test_stnm_policy_rejects_strict(self):
        with pytest.raises(ValueError):
            IndexBuilder(InMemoryStore(), Policy.STNM, PairMethod.STRICT)

    def test_stam_not_indexable(self):
        with pytest.raises(ValueError):
            IndexBuilder(InMemoryStore(), Policy.STAM)

    def test_defaults(self):
        assert IndexBuilder(InMemoryStore(), Policy.SC).method is PairMethod.STRICT
        assert (
            IndexBuilder(InMemoryStore(), Policy.STNM).method is PairMethod.INDEXING
        )


class TestIncremental:
    def _batches(self, activities, cuts):
        """Split one trace's activities into event batches at ``cuts``."""
        bounds = [0, *cuts, len(activities)]
        return [
            [
                Event("t", activities[i], i)
                for i in range(bounds[j], bounds[j + 1])
            ]
            for j in range(len(bounds) - 1)
        ]

    @pytest.mark.parametrize("policy", (Policy.STNM, Policy.SC))
    def test_incremental_equals_batch(self, policy):
        activities = list("ABCABDBACBAD")
        full_store = InMemoryStore()
        IndexBuilder(full_store, policy).build(
            EventLog.from_dict({"t": activities})
        )
        inc_store = InMemoryStore()
        inc_builder = IndexBuilder(inc_store, policy)
        for batch in self._batches(activities, [3, 5, 9]):
            if batch:
                inc_builder.update(batch)
        for a in "ABCD":
            for b in "ABCD":
                assert sorted(
                    IndexBuilder(inc_store, policy).tables.get_index((a, b))
                ) == sorted(
                    IndexBuilder(full_store, policy).tables.get_index((a, b))
                ), (a, b)

    @given(
        st.lists(st.sampled_from("ABCD"), min_size=1, max_size=30),
        st.lists(st.integers(1, 29), max_size=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_incremental_equals_batch_random(self, activities, raw_cuts):
        cuts = sorted({c for c in raw_cuts if c < len(activities)})
        full = SequenceIndex(policy=Policy.STNM)
        full.update(EventLog.from_dict({"t": activities}))
        inc = SequenceIndex(policy=Policy.STNM)
        for batch in self._batches(activities, cuts):
            if batch:
                inc.update(batch)
        types = sorted(set(activities))
        for a in types:
            for b in types:
                assert sorted(inc.tables.get_index((a, b))) == sorted(
                    full.tables.get_index((a, b))
                ), (a, b, activities, cuts)
                assert inc.tables.get_pair_count((a, b)) == full.tables.get_pair_count(
                    (a, b)
                )

    def test_no_duplicates_on_repeated_updates(self):
        index = SequenceIndex(policy=Policy.STNM)
        index.update([Event("t", "A", 1), Event("t", "B", 2)])
        index.update([Event("t", "A", 3), Event("t", "B", 4)])
        assert index.tables.get_index(("A", "B")) == [("t", 1, 2), ("t", 3, 4)]

    def test_dangling_anchor_closed_by_later_batch(self):
        index = SequenceIndex(policy=Policy.STNM)
        index.update([Event("t", "A", 1)])
        assert index.tables.get_index(("A", "B")) == []
        index.update([Event("t", "B", 10)])
        assert index.tables.get_index(("A", "B")) == [("t", 1, 10)]

    def test_out_of_order_batch_rejected(self):
        index = SequenceIndex(policy=Policy.STNM)
        index.update([Event("t", "A", 5)])
        with pytest.raises(TraceOrderError):
            index.update([Event("t", "B", 3)])

    def test_non_increasing_batch_rejected(self):
        index = SequenceIndex(policy=Policy.STNM)
        with pytest.raises(TraceOrderError):
            index.update([Event("t", "A", 1), Event("t", "B", 1)])

    def test_batch_events_need_timestamps(self):
        index = SequenceIndex(policy=Policy.STNM)
        with pytest.raises(TraceOrderError):
            index.update([Event("t", "A", None)])

    def test_new_trace_in_later_batch(self):
        index = SequenceIndex(policy=Policy.STNM)
        index.update([Event("t1", "A", 1), Event("t1", "B", 2)])
        stats = index.update([Event("t2", "A", 1), Event("t2", "B", 2)])
        assert stats.new_traces == 1
        grouped = index.tables.get_index_grouped(("A", "B"))
        assert set(grouped) == {"t1", "t2"}


class TestParallelParity:
    @pytest.mark.parametrize("backend", ("thread", "process"))
    def test_parallel_equals_serial(self, paper_log, backend):
        serial, _ = _build(paper_log, executor=ParallelExecutor.serial())
        parallel, _ = _build(
            paper_log, executor=ParallelExecutor(backend=backend, max_workers=3)
        )
        for pair in [("A", "B"), ("B", "A"), ("A", "A"), ("C", "B")]:
            assert sorted(parallel.tables.get_index(pair)) == sorted(
                serial.tables.get_index(pair)
            )
            assert parallel.tables.get_pair_count(pair) == serial.tables.get_pair_count(pair)
