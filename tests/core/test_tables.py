"""Index tables (§3.1.2) over both store backends."""

from __future__ import annotations

import pytest

from repro.core.errors import IndexStateError
from repro.core.policies import PairMethod, Policy
from repro.core.tables import IndexTables


@pytest.fixture
def tables(any_store):
    tables = IndexTables(any_store)
    tables.ensure_schema()
    return tables


class TestSchema:
    def test_idempotent(self, tables):
        tables.ensure_schema()
        tables.ensure_schema()

    def test_configuration_recorded_and_enforced(self, tables):
        tables.check_configuration(Policy.STNM, PairMethod.INDEXING)
        tables.check_configuration(Policy.STNM, PairMethod.STATE)  # same policy ok
        with pytest.raises(IndexStateError):
            tables.check_configuration(Policy.SC, PairMethod.STRICT)


class TestSeq:
    def test_append_and_get(self, tables):
        tables.append_sequence("t1", [("A", 1.0), ("B", 2.0)])
        tables.append_sequence("t1", [("C", 3.0)])
        assert tables.get_sequence("t1") == [("A", 1.0), ("B", 2.0), ("C", 3.0)]

    def test_missing_trace_is_empty(self, tables):
        assert tables.get_sequence("nope") == []

    def test_iter_sequences_sorted_by_trace(self, tables):
        tables.append_sequence("b", [("X", 1.0)])
        tables.append_sequence("a", [("Y", 1.0)])
        assert [tid for tid, _ in tables.iter_sequences()] == ["a", "b"]

    def test_delete(self, tables):
        tables.append_sequence("t", [("A", 1.0)])
        tables.delete_sequence("t")
        assert tables.get_sequence("t") == []


class TestIndex:
    def test_append_and_group(self, tables):
        tables.append_index(("A", "B"), [("t1", 1.0, 2.0), ("t2", 5.0, 6.0)])
        tables.append_index(("A", "B"), [("t1", 3.0, 4.0)])
        grouped = tables.get_index_grouped(("A", "B"))
        assert grouped == {"t1": [(1.0, 2.0), (3.0, 4.0)], "t2": [(5.0, 6.0)]}

    def test_missing_pair_empty(self, tables):
        assert tables.get_index(("X", "Y")) == []
        assert tables.get_index_grouped(("X", "Y")) == {}

    def test_partitions_isolate_and_union(self, tables):
        tables.ensure_partition("p1")
        tables.register_partition("p1")
        tables.ensure_partition("p2")
        tables.register_partition("p2")
        tables.append_index(("A", "B"), [("t1", 1.0, 2.0)], partition="p1")
        tables.append_index(("A", "B"), [("t2", 3.0, 4.0)], partition="p2")
        assert tables.get_index(("A", "B"), partition="p1") == [("t1", 1.0, 2.0)]
        assert tables.get_index(("A", "B"), partition="p2") == [("t2", 3.0, 4.0)]
        assert tables.get_index(("A", "B"), partition="") == []
        union = tables.get_index(("A", "B"), partition=None)
        assert sorted(union) == [("t1", 1.0, 2.0), ("t2", 3.0, 4.0)]

    def test_partition_registration_idempotent(self, tables):
        tables.register_partition("p")
        tables.register_partition("p")
        assert tables.get_meta().get("partitions", []).count("p") <= 1


class TestCounts:
    def test_accumulation(self, tables):
        tables.add_counts("A", {"B": [10.0, 2]})
        tables.add_counts("A", {"B": [5.0, 1], "C": [1.0, 1]})
        counts = tables.get_counts("A")
        assert counts == {"B": (15.0, 3), "C": (1.0, 1)}
        assert tables.get_pair_count(("A", "B")) == (15.0, 3)
        assert tables.get_pair_count(("A", "Z")) == (0.0, 0)

    def test_reverse_counts(self, tables):
        tables.add_reverse_counts("B", {"A": [10.0, 2]})
        assert tables.get_reverse_counts("B") == {"A": (10.0, 2)}
        assert tables.get_reverse_counts("Z") == {}


class TestLastChecked:
    def test_max_semantics(self, tables):
        tables.update_last_checked(("A", "B"), {"t1": 5.0})
        tables.update_last_checked(("A", "B"), {"t1": 3.0, "t2": 9.0})
        checked = tables.get_last_checked(("A", "B"))
        assert checked == {"t1": 5.0, "t2": 9.0}
        assert tables.get_last_completion(("A", "B")) == 9.0

    def test_missing(self, tables):
        assert tables.get_last_checked(("X", "Y")) == {}
        assert tables.get_last_completion(("X", "Y")) is None

    def test_prune_trace(self, tables):
        tables.append_sequence("t1", [("A", 1.0), ("B", 2.0)])
        tables.update_last_checked(("A", "B"), {"t1": 2.0, "t2": 7.0})
        tables.prune_trace("t1", {"A", "B"})
        assert tables.get_sequence("t1") == []
        assert tables.get_last_checked(("A", "B")) == {"t2": 7.0}
