"""Units for the pattern AST, the textual grammar and `find_matches`."""

from __future__ import annotations

import pytest

from repro.core.errors import PatternSyntaxError
from repro.core.pattern import (
    Pattern,
    PatternElement,
    find_matches,
    parse_pattern,
)


class TestParser:
    def test_full_grammar_round_trips(self):
        text = "SEQ(A, !B, (C|D)+) WITHIN 10"
        pattern = parse_pattern(text)
        assert str(pattern) == text
        assert pattern.within == 10
        assert [str(e) for e in pattern.elements] == ["A", "!B", "(C|D)+"]

    def test_bare_comma_form(self):
        assert parse_pattern("A, B, C") == parse_pattern("SEQ(A, B, C)")

    def test_keywords_are_case_insensitive(self):
        assert parse_pattern("seq(A, B) within 5") == parse_pattern(
            "SEQ(A, B) WITHIN 5"
        )

    def test_seq_is_a_valid_activity_name_when_not_called(self):
        # "SEQ" only acts as the wrapper when followed by "(".
        pattern = parse_pattern("SEQ, A")
        assert [e.types for e in pattern.elements] == [("SEQ",), ("A",)]

    def test_single_element_forms(self):
        assert parse_pattern("A").elements == (PatternElement(types=("A",)),)
        assert parse_pattern("A+").elements[0].kleene
        assert parse_pattern("(A|B)").elements[0].types == ("A", "B")

    def test_negated_alternation_with_kleene_neighbours(self):
        pattern = parse_pattern("A+, !(X|Y), B")
        assert pattern.elements[0].kleene
        assert pattern.elements[1].negated
        assert pattern.elements[1].types == ("X", "Y")

    def test_duplicate_alternation_branches_dedupe(self):
        assert parse_pattern("(A|A|B)").elements[0].types == ("A", "B")

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "SEQ()",
            "A,,B",
            "!A, B",  # leading negation has no anchor
            "!A+",  # negated and Kleene are mutually exclusive
            "(A|)",
            "(|A)",
            "A)",
            "SEQ(A",
            "A WITHIN",
            "A WITHIN x",
            "A WITHIN 0",
            "A WITHIN -3",
            "A B",  # missing comma
            "SEQ(A, B) WITHIN 5 trailing",
        ],
    )
    def test_rejects_malformed_expressions(self, bad):
        with pytest.raises(PatternSyntaxError):
            parse_pattern(bad)

    def test_of_builds_from_element_strings(self):
        pattern = Pattern.of("A", "!B", "(C|D)+", within=10)
        assert pattern == parse_pattern("SEQ(A, !B, (C|D)+) WITHIN 10")

    def test_element_validation(self):
        with pytest.raises(PatternSyntaxError):
            PatternElement(types=())
        with pytest.raises(PatternSyntaxError):
            PatternElement(types=("A",), kleene=True, negated=True)

    def test_is_plain_and_activities(self):
        plain = parse_pattern("A, B, C")
        assert plain.is_plain
        assert plain.activities() == ("A", "B", "C")
        for fancy in ("A, B+", "A, (B|C)", "A, !B, C", "A, B WITHIN 5"):
            pattern = parse_pattern(fancy)
            assert not pattern.is_plain
            with pytest.raises(PatternSyntaxError):
                pattern.activities()

    def test_negation_scopes(self):
        pattern = parse_pattern("A, !X, B, !Y")
        assert pattern.negation_scopes() == ((1, 0, 1), (3, 1, None))


def run(trace: str, expr: str, timestamps=None):
    activities = list(trace)
    if timestamps is None:
        timestamps = list(range(len(activities)))
    return find_matches(activities, timestamps, parse_pattern(expr))


class TestFindMatches:
    def test_paper_example_greedy_non_overlapping(self):
        # §2.1: A,A,B over <AAABAACB> -> (1,2,4) and (5,6,8) in 1-based time.
        assert run("AAABAACB", "A, A, B", timestamps=list(range(1, 9))) == [
            (1, 2, 4),
            (5, 6, 8),
        ]

    def test_window_bound_is_inclusive(self):
        assert run("AB", "A, B WITHIN 1") == [(0, 1)]
        assert run("AB", "A, B WITHIN 0.5") == []

    def test_window_failure_retries_after_first_event(self):
        # (A@0, B@4) exceeds the window, but (A@2, B@4) fits.
        assert run("AxAxB", "A, B WITHIN 2") == [(2, 4)]

    def test_alternation_takes_earliest_of_either_type(self):
        assert run("ACB", "A, (B|C)") == [(0, 1)]
        assert run("ABC", "A, (B|C)") == [(0, 1)]

    def test_kleene_maximal_munch_stops_at_next_element(self):
        # B+ absorbs both Bs, stops at the first C; the later B is free.
        assert run("ABBCB", "A, B+, C") == [(0, 1, 2, 3)]

    def test_trailing_kleene_absorbs_to_end_of_trace(self):
        assert run("ABxB", "A, B+") == [(0, 1, 3)]

    def test_kleene_alternation_absorbs_both_types(self):
        assert run("ABCBD", "A, (B|C)+") == [(0, 1, 2, 3)]

    def test_negation_blocks_in_scope_occurrences_only(self):
        assert run("AXB", "A, !X, B") == []
        assert run("ABX", "A, !X, B") == [(0, 1)]  # X after B: out of scope
        assert run("XAB", "A, !X, B") == [(1, 2)]  # X before A: out of scope

    def test_violated_negation_retries_after_first_event(self):
        # (A@0 .. B@3) straddles the X; the A@2 attempt does not.
        assert run("AXAB", "A, !X, B") == [(2, 3)]

    def test_trailing_negation_scans_to_end_of_trace(self):
        assert run("ABX", "A, B, !X") == []
        assert run("ABx", "A, B, !X") == [(0, 1)]

    def test_trailing_negation_bounded_by_window(self):
        # X is 3 ticks after the A anchor; WITHIN 2 puts it out of scope.
        assert run("ABxX", "A, B, !X WITHIN 2") == [(0, 1)]
        assert run("ABX", "A, B, !X WITHIN 2") == []

    def test_missing_element_ends_search(self):
        assert run("AAAA", "A, B") == []

    def test_max_matches_budget(self):
        activities = list("ABABAB")
        timestamps = list(range(6))
        pattern = parse_pattern("A, B")
        assert len(find_matches(activities, timestamps, pattern)) == 3
        assert (
            len(find_matches(activities, timestamps, pattern, max_matches=2))
            == 2
        )

    def test_empty_trace(self):
        assert find_matches([], [], parse_pattern("A")) == []

    def test_real_timestamps_drive_the_window(self):
        # Two events, positions adjacent but 10 time units apart.
        assert find_matches(["A", "B"], [0.0, 10.0], parse_pattern("A, B WITHIN 5")) == []
        assert find_matches(["A", "B"], [0.0, 5.0], parse_pattern("A, B WITHIN 5")) == [
            (0.0, 5.0)
        ]
