"""Composite-pattern queries through the engine: corpus + planner contracts.

The golden corpus (``tests/data/pattern_corpus.json``) holds hand-verified
match sets over a small checked-in log; both the indexed prune-then-verify
path and the SASE oracle must reproduce every case exactly.  The planner
tests pin the contracts the pattern path adds on top of it: alternation
cardinality is the sum of branch-pair counts, a zero-cardinality positive
group short-circuits before any sequence read, and negation never prunes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.baselines.sase.engine import SaseEngine
from repro.core.engine import SequenceIndex
from repro.core.errors import PolicyMismatchError
from repro.core.matches import PatternPlan
from repro.core.model import EventLog
from repro.core.pattern import parse_pattern
from repro.core.policies import Policy
from repro.logs.csv_log import read_csv_log

DATA = Path(__file__).resolve().parents[1] / "data"
CORPUS = json.loads((DATA / "pattern_corpus.json").read_text())


@pytest.fixture(scope="module")
def golden_log() -> EventLog:
    return read_csv_log(str(DATA / "golden_log.csv"))


@pytest.fixture(scope="module")
def golden_index(golden_log):
    index = SequenceIndex(policy=Policy.STNM)
    index.update(golden_log)
    yield index
    index.close()


def _expected(case) -> set[tuple[str, tuple[float, ...]]]:
    return {
        (trace_id, tuple(stamps))
        for trace_id, spans in case["expected"].items()
        for stamps in spans
    }


@pytest.mark.parametrize("case", CORPUS["cases"], ids=lambda c: c["pattern"])
class TestGoldenCorpus:
    def test_indexed_path_matches_corpus(self, golden_index, case):
        matches = golden_index.detect(parse_pattern(case["pattern"]))
        assert {(m.trace_id, m.timestamps) for m in matches} == _expected(case)

    def test_sase_oracle_matches_corpus(self, golden_log, case):
        matches = SaseEngine(golden_log).query(parse_pattern(case["pattern"]))
        assert {(m.trace_id, m.timestamps) for m in matches} == _expected(case)

    def test_count_and_contains_agree_with_corpus(self, golden_index, case):
        expected = _expected(case)
        pattern = parse_pattern(case["pattern"])
        assert golden_index.count(pattern) == len(expected)
        assert set(golden_index.contains(pattern)) == {t for t, _ in expected}


def test_corpus_tags_cover_every_operator():
    tagged = {op for case in CORPUS["cases"] for op in case["operators"]}
    assert {"sequence", "alternation", "kleene", "negation", "within"} <= tagged


class TestPatternPlanner:
    def test_alternation_cardinality_is_sum_of_branch_counts(self):
        log = EventLog.from_dict({"t1": ["A", "B"], "t2": ["A", "C"], "t3": ["A", "B"]})
        with SequenceIndex(policy=Policy.STNM) as index:
            index.update(log)
            plan = index.explain("SEQ(A, (B|C))")
            assert isinstance(plan, PatternPlan)
            assert plan.groups == ((("A", "B"), ("A", "C")),)
            assert plan.cardinalities == (3,)  # 2x (A,B) + 1x (A,C)

    def test_zero_cardinality_positive_group_skips_sequence_reads(self):
        log = EventLog.from_dict({"t1": ["A", "B"], "t2": ["A", "B", "A"]})
        with SequenceIndex(policy=Policy.STNM, query_cache_size=0) as index:
            index.update(log)
            reads = []
            original = index.tables.get_sequence
            index.tables.get_sequence = lambda tid: (
                reads.append(tid) or original(tid)
            )
            assert index.detect("SEQ(A, Z)") == []
            assert index.count("SEQ(A, Z)") == 0
            assert index.contains("SEQ(A, Z)") == []
            assert reads == []
            # A live pattern does read sequences -- the probe works.
            assert index.count("SEQ(A, B)") == 2
            assert reads != []

    def test_negated_zero_count_element_must_not_prune(self):
        """The central soundness case: "Z never happens" makes !Z vacuously
        true everywhere, so SEQ(A, !Z, B) must equal SEQ(A, B) -- a planner
        that fed the negated pair's zero Count into the early exit would
        return nothing instead."""
        log = EventLog.from_dict({"t1": ["A", "B"], "t2": ["B", "A", "B"]})
        with SequenceIndex(policy=Policy.STNM) as index:
            index.update(log)
            plain = index.detect("SEQ(A, B)")
            negated = index.detect("SEQ(A, !Z, B)")
            assert {(m.trace_id, m.timestamps) for m in negated} == {
                (m.trace_id, m.timestamps) for m in plain
            }
            plan = index.explain("SEQ(A, !Z, B)")
            assert plan.groups == ((("A", "B"),),)  # Z appears in no group
            assert plan.negated == ("!Z",)
            assert "no pruning" in plan.describe()

    def test_planner_disabled_keeps_natural_group_order(self):
        # (A,B) completes 3x, (B,C) once: the planner would flip the order.
        log = EventLog.from_dict({"t1": ["A", "B", "A", "B", "A", "B", "C"]})
        planned = SequenceIndex(policy=Policy.STNM)
        naive = SequenceIndex(policy=Policy.STNM, planner=False)
        try:
            planned.update(log)
            naive.update(log)
            nat = naive.explain("SEQ(A, B, C)")
            assert nat.order == (0, 1)
            assert not nat.reordered
            a = planned.detect("SEQ(A, B, C)")
            b = naive.detect("SEQ(A, B, C)")
            assert {(m.trace_id, m.timestamps) for m in a} == {
                (m.trace_id, m.timestamps) for m in b
            }
        finally:
            planned.close()
            naive.close()

    def test_planner_orders_groups_cheapest_first(self):
        # (A,B) completes 3x, (B,C) once: pruning must start at (B,C).
        log = EventLog.from_dict(
            {
                "t1": ["A", "B", "A", "B", "A", "B", "C"],
            }
        )
        with SequenceIndex(policy=Policy.STNM) as index:
            index.update(log)
            plan = index.explain("SEQ(A, B, C)")
            assert plan.cardinalities == (3, 1)
            assert plan.order == (1, 0)
            assert plan.reordered

    def test_explain_profile_reports_verify_stage(self):
        log = EventLog.from_dict({"t1": ["A", "B"]})
        with SequenceIndex(policy=Policy.STNM) as index:
            index.update(log)
            matches, plan, profile = index.detect(
                "SEQ(A, B+)", explain_profile=True
            )
            assert [m.timestamps for m in matches] == [(0.0, 1.0)]
            stages = [stage.name for stage in profile.stages]
            assert "verify" in stages
            assert "plan" in stages


class TestEngineContracts:
    def test_string_and_pattern_route_identically(self):
        log = EventLog.from_dict({"t1": ["A", "C", "B"]})
        with SequenceIndex(policy=Policy.STNM) as index:
            index.update(log)
            via_str = index.detect("SEQ(A, (B|C))")
            via_ast = index.detect(parse_pattern("SEQ(A, (B|C))"))
            assert via_str == via_ast

    def test_pattern_results_are_cached_per_generation(self):
        log = EventLog.from_dict({"t1": ["A", "B"]})
        with SequenceIndex(policy=Policy.STNM) as index:
            index.update(log)
            pattern = parse_pattern("SEQ(A, B+)")
            first = index.detect(pattern)
            hits_before = index.query_cache_stats()["hits"]
            second = index.detect(pattern)
            assert second == first
            assert index.query_cache_stats()["hits"] == hits_before + 1
            # an update invalidates by construction (new generation)
            index.update(EventLog.from_dict({"t2": ["A", "B"]}))
            third = index.detect(pattern)
            assert len(third) == 2

    def test_sequence_cache_serves_repeat_verifications(self):
        log = EventLog.from_dict({"t1": ["A", "B"], "t2": ["A", "B"]})
        with SequenceIndex(policy=Policy.STNM, query_cache_size=0) as index:
            index.update(log)
            index.detect("SEQ(A, B+)")
            misses = index.sequence_cache_stats()["misses"]
            assert misses == 2  # both candidate traces decoded once
            index.detect("SEQ(A, B+)")
            stats = index.sequence_cache_stats()
            assert stats["misses"] == misses
            assert stats["hits"] >= 2
            # an update rolls the write generation: cached rows go stale
            index.update(EventLog.from_dict({"t3": ["A", "B"]}))
            index.detect("SEQ(A, B+)")
            assert index.sequence_cache_stats()["misses"] > misses

    def test_non_stnm_index_refuses_composite_patterns(self):
        log = EventLog.from_dict({"t1": ["A", "B"]})
        with SequenceIndex(policy=Policy.SC) as index:
            index.update(log)
            with pytest.raises(PolicyMismatchError):
                index.detect("SEQ(A, B+)")
            with pytest.raises(PolicyMismatchError):
                index.count("SEQ(A, B)")
            with pytest.raises(PolicyMismatchError):
                index.explain("SEQ(A, B)")

    def test_composite_rejects_policy_and_within_kwargs(self):
        log = EventLog.from_dict({"t1": ["A", "B"]})
        with SequenceIndex(policy=Policy.STNM) as index:
            index.update(log)
            pattern = parse_pattern("SEQ(A, B)")
            with pytest.raises(ValueError, match="policy"):
                index.detect(pattern, policy=Policy.STAM)
            with pytest.raises(ValueError, match="within"):
                index.detect(pattern, within=5.0)
            with pytest.raises(ValueError, match="within"):
                index.count(pattern, within=5.0)

    def test_max_matches_limits_composite_detection(self):
        log = EventLog.from_dict({f"t{i}": ["A", "B"] for i in range(5)})
        with SequenceIndex(policy=Policy.STNM) as index:
            index.update(log)
            assert len(index.detect("SEQ(A, B)", max_matches=3)) == 3

    def test_single_positive_element_full_scan(self):
        # No positive adjacency -> no pruning groups -> full sequence scan.
        log = EventLog.from_dict({"t1": ["A", "X", "A"], "t2": ["B"]})
        with SequenceIndex(policy=Policy.STNM) as index:
            index.update(log)
            plan = index.explain("SEQ(A+)")
            assert plan.groups == ()
            assert "full sequence scan" in plan.describe()
            matches = index.detect("SEQ(A+)")
            assert {(m.trace_id, m.timestamps) for m in matches} == {
                ("t1", (0.0, 2.0))
            }

    def test_sase_pattern_bridge_agrees_with_legacy_nfa(self):
        from repro.baselines.sase.pattern import SasePattern

        log = EventLog.from_dict(
            {"t1": ["A", "B", "B", "C", "B"], "t2": ["B", "A", "C"]}
        )
        engine = SaseEngine(log)
        legacy = SasePattern.seq("A", "B+", "C", within=10)
        bridged = legacy.to_pattern()
        assert str(bridged) == "SEQ(A, B+, C) WITHIN 10"
        assert engine.query(legacy) == engine.query(bridged)

    def test_sase_bridge_rejects_non_stnm(self):
        from repro.baselines.sase.pattern import SasePattern

        with pytest.raises(ValueError, match="STNM"):
            SasePattern.seq("A", "B", strategy=Policy.SC).to_pattern()
