"""Planner equivalence and plan introspection.

The selectivity-driven planner must be *unobservable* through results: for
any log, pattern, policy, partition layout and cache configuration,
planner-ordered detection returns byte-identical matches to naive
left-to-right evaluation and to a brute-force per-trace oracle.  These
properties pin that down, alongside sanity checks of the plan object and
its metrics/CLI surface.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import SequenceIndex
from repro.core.errors import EmptyPatternError
from repro.core.model import EventLog
from repro.core.pairs import reference_stnm_pairs, strict_pairs
from repro.core.policies import Policy

ACTIVITIES = "ABCD"

LOGS = st.dictionaries(
    st.sampled_from(["t1", "t2", "t3", "t4"]),
    st.lists(st.sampled_from(ACTIVITIES), min_size=2, max_size=25),
    min_size=1,
    max_size=4,
)
PATTERNS = st.lists(st.sampled_from(ACTIVITIES), min_size=2, max_size=5)


def _oracle_matches(log_dict, pattern, policy):
    """Brute-force Algorithm 2 per trace, from the reference pair builders."""
    reference = strict_pairs if policy is Policy.SC else reference_stnm_pairs
    out = []
    for trace_id in sorted(log_dict):
        activities = log_dict[trace_id]
        stamps = list(range(len(activities)))
        pairs = reference(activities, stamps)
        chains = [list(p) for p in pairs.get((pattern[0], pattern[1]), [])]
        for i in range(1, len(pattern) - 1):
            step = {ta: tb for ta, tb in pairs.get((pattern[i], pattern[i + 1]), [])}
            chains = [c + [step[c[-1]]] for c in chains if c[-1] in step]
        out.extend((trace_id, tuple(chain)) for chain in sorted(map(tuple, chains)))
    return out


def _build(log_dict, policy=Policy.STNM, **knobs):
    index = SequenceIndex(policy=policy, **knobs)
    index.update(EventLog.from_dict(log_dict))
    return index


class TestPlannerEquivalence:
    @given(log=LOGS, pattern=PATTERNS, policy=st.sampled_from([Policy.STNM, Policy.SC]))
    @settings(max_examples=120, deadline=None)
    def test_planner_equals_naive_equals_oracle(self, log, pattern, policy):
        planned = _build(log, policy, query_cache_size=0)
        naive = _build(log, policy, query_cache_size=0, planner=False,
                       postings_cache_size=0, batched_reads=False)
        got_planned = planned.detect(pattern)
        got_naive = naive.detect(pattern)
        assert got_planned == got_naive
        assert [(m.trace_id, m.timestamps) for m in got_planned] == _oracle_matches(
            log, pattern, policy
        )

    @given(log=LOGS, pattern=PATTERNS)
    @settings(max_examples=60, deadline=None)
    def test_postings_cache_is_invisible(self, log, pattern):
        cached = _build(log, query_cache_size=0, postings_cache_size=32)
        uncached = _build(log, query_cache_size=0, postings_cache_size=0)
        # Run twice on the cached index: the second detection is served
        # (partially) from decoded postings and must not drift.
        first = cached.detect(pattern)
        second = cached.detect(pattern)
        assert first == second == uncached.detect(pattern)

    @given(log=LOGS, pattern=PATTERNS)
    @settings(max_examples=60, deadline=None)
    def test_count_and_contains_match_detect(self, log, pattern):
        index = _build(log, query_cache_size=0)
        matches = index.detect(pattern)
        assert index.count(pattern) == len(matches)
        assert index.contains(pattern) == sorted({m.trace_id for m in matches})

    @given(log=LOGS, pattern=PATTERNS, within=st.floats(0, 30))
    @settings(max_examples=60, deadline=None)
    def test_count_within_matches_detect(self, log, pattern, within):
        index = _build(log, query_cache_size=0)
        assert index.count(pattern, within=within) == len(
            index.detect(pattern, within=within)
        )

    @given(log=LOGS, pattern=PATTERNS)
    @settings(max_examples=40, deadline=None)
    def test_partition_union_planned_equals_naive(self, log, pattern):
        # Spread traces round-robin over two named partitions plus default,
        # then query the union: planner and naive must still agree.
        def spread(index):
            parts = ["", "p1", "p2"]
            for i, trace_id in enumerate(sorted(log)):
                index.update(
                    EventLog.from_dict({trace_id: log[trace_id]}),
                    partition=parts[i % 3],
                )

        planned = SequenceIndex(query_cache_size=0)
        naive = SequenceIndex(
            query_cache_size=0, planner=False, postings_cache_size=0,
            batched_reads=False,
        )
        spread(planned)
        spread(naive)
        assert planned.detect(pattern, partition=None) == naive.detect(
            pattern, partition=None
        )
        if len(log) >= 2:  # "p1" only exists once a second trace was spread
            assert planned.detect(pattern, partition="p1") == naive.detect(
                pattern, partition="p1"
            )


class TestPlanObject:
    def _index(self):
        return _build(
            {"t1": list("ABCABC"), "t2": list("AABBC"), "t3": list("CBA")}
        )

    def test_order_is_contiguous_permutation(self):
        index = self._index()
        plan = index.explain(["A", "B", "C", "A"])
        n = len(plan.pairs)
        assert sorted(plan.order) == list(range(n))
        # The covered window stays contiguous at every step.
        seen = {plan.order[0]}
        for idx in plan.order[1:]:
            assert idx - 1 in seen or idx + 1 in seen
            seen.add(idx)

    def test_cardinalities_match_statistics(self):
        index = self._index()
        pattern = ["A", "B", "C"]
        plan = index.explain(pattern)
        stats = index.statistics(pattern)
        assert plan.pairs == tuple(zip(pattern, pattern[1:]))
        assert plan.cardinalities == tuple(row.completions for row in stats.pairs)
        assert plan.estimated_cost == min(plan.cardinalities)

    def test_starts_at_rarest_pair(self):
        index = self._index()
        plan = index.explain(["A", "B", "C"])
        rarest = min(
            range(len(plan.cardinalities)), key=lambda i: plan.cardinalities[i]
        )
        assert plan.order[0] == rarest

    def test_reordered_flag(self):
        index = self._index()
        for pattern in (["A", "B", "C"], ["B", "C", "A"], ["A", "B", "C", "A"]):
            plan = index.explain(pattern)
            assert plan.reordered == (plan.order != tuple(range(len(plan.pairs))))

    def test_planner_disabled_keeps_natural_order(self):
        index = _build({"t1": list("ABCABC")}, planner=False)
        plan = index.explain(["A", "B", "C"])
        assert plan.order == (0, 1)
        assert not plan.reordered

    def test_trivial_plan_for_short_patterns(self):
        index = self._index()
        plan = index.explain(["A"])
        assert plan.pairs == () and plan.order == ()
        assert "left-to-right" in plan.describe()

    def test_describe_lists_every_step(self):
        index = self._index()
        plan = index.explain(["A", "B", "C"])
        lines = plan.describe().splitlines()
        assert len(lines) == len(plan.pairs) + 1
        assert all("cardinality=" in line for line in lines[:-1])

    def test_plan_requires_pairs(self):
        index = self._index()
        with pytest.raises(EmptyPatternError):
            index.query.plan(["A"])


class TestExplainSurface:
    def test_detect_explain_returns_matches_and_plan(self):
        index = _build({"t1": list("ABCABC")}, query_cache_size=0)
        matches, plan = index.detect(["A", "B", "C"], explain=True)
        assert matches == index.detect(["A", "B", "C"])
        assert plan.pattern == ("A", "B", "C")

    def test_explain_bypasses_query_cache(self):
        index = _build({"t1": list("ABCABC")})
        index.detect(["A", "B", "C"])  # warm the result cache
        matches, plan = index.detect(["A", "B", "C"], explain=True)
        assert matches == index.detect(["A", "B", "C"])

    def test_zero_cardinality_short_circuits(self):
        index = _build({"t1": list("ABC")}, query_cache_size=0)
        store_metrics = index.store.metrics
        before = store_metrics.snapshot()
        assert index.detect(["A", "Z"]) == []
        assert index.contains(["A", "Z"]) == []
        after = store_metrics.snapshot()
        # The dead pair is detected from Count alone: the first call issues
        # the one batched Count read, the second hits the planner's
        # Count-row cache -- the Index table is never touched.
        assert after["multi_get_batches"] - before["multi_get_batches"] == 1

    def test_planner_reorders_metric(self):
        index = _build(
            {"t1": list("ABCABC"), "t2": list("ABAB")}, query_cache_size=0
        )
        plan = index.explain(["A", "B", "C"])
        before = index.store.metrics.snapshot().get("planner_reorders", 0)
        index.detect(["A", "B", "C"])
        after = index.store.metrics.snapshot().get("planner_reorders", 0)
        assert after - before == (1 if plan.reordered else 0)

    def test_postings_cache_metrics_accumulate(self):
        index = _build({"t1": list("ABCABC")}, query_cache_size=0)
        index.detect(["A", "B", "C"])
        index.detect(["A", "B", "C"])
        snap = index.store.metrics.snapshot()
        assert snap["postings_cache_hits"] > 0
        assert snap["postings_cache_misses"] > 0
        assert index.postings_cache_stats()["hits"] > 0

    def test_postings_cache_invalidated_by_update(self):
        index = _build({"t1": list("ABC")}, query_cache_size=0)
        assert len(index.detect(["A", "B", "C"])) == 1
        index.update(EventLog.from_dict({"t9": list("ABC")}))
        matches = index.detect(["A", "B", "C"])
        assert sorted(m.trace_id for m in matches) == ["t1", "t9"]

    def test_prefixes_unaffected_by_planner(self):
        log = {"t1": list("ABCABC"), "t2": list("ACBCA")}
        planned = _build(log)
        naive = _build(log, planner=False, postings_cache_size=0)
        assert planned.detect_with_prefixes(["A", "B", "C"]) == naive.detect_with_prefixes(
            ["A", "B", "C"]
        )
