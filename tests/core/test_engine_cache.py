"""The query-result cache must be invisible except for speed.

Property test: over random logs and patterns, a cached index answers every
query identically to an uncached one -- including on the second (cache-hit)
ask -- and a batch ``update()`` or ``prune_trace()`` invalidates stale
entries via the write-generation epoch.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import SequenceIndex
from repro.core.model import Event, EventLog

ALPHABET = "ABCD"

LOGS = st.lists(
    st.text(alphabet=ALPHABET, min_size=1, max_size=8), min_size=1, max_size=5
).map(lambda traces: {f"t{i}": acts for i, acts in enumerate(traces)})
PATTERNS = st.lists(st.sampled_from(ALPHABET), min_size=2, max_size=3)


def _ask_everything(index: SequenceIndex, pattern: list[str]):
    return (
        index.detect(pattern),
        index.count(pattern),
        index.contains(pattern),
        index.statistics(pattern),
        index.continuations(pattern, top_k=3),
    )


@settings(max_examples=40, deadline=None)
@given(log=LOGS, pattern=PATTERNS)
def test_cached_equals_uncached(log, pattern):
    cached = SequenceIndex()
    uncached = SequenceIndex(query_cache_size=0)
    event_log = EventLog.from_dict(log)
    cached.update(event_log)
    uncached.update(EventLog.from_dict(log))

    cold = _ask_everything(cached, pattern)
    reference = _ask_everything(uncached, pattern)
    assert cold == reference
    warm = _ask_everything(cached, pattern)  # second ask is served by cache
    assert warm == reference
    assert cached.query_cache_stats()["hits"] >= 5


def test_update_invalidates_cache():
    index = SequenceIndex()
    index.update([Event("t1", "A", 1), Event("t1", "B", 2)])
    assert index.count(["A", "B"]) == 1
    assert index.count(["A", "B"]) == 1  # cache hit

    generation = index.write_generation
    # Incremental append to the same trace plus a brand-new trace.
    index.update([Event("t1", "A", 3), Event("t1", "B", 4), Event("t2", "A", 5)])
    assert index.write_generation > generation

    # Stale entries must be unreachable: t1 = A,B,A,B now completes
    # A..B twice under skip-till-next-match, not the cached pre-update 1.
    assert index.count(["A", "B"]) == 2
    assert sorted(index.contains(["A", "B"])) == ["t1"]
    index.update([Event("t2", "B", 6)])
    assert sorted(index.contains(["A", "B"])) == ["t1", "t2"]


def test_prune_trace_invalidates_cache():
    index = SequenceIndex()
    index.update([Event("t1", "A", 1), Event("t1", "B", 2)])
    index.detect(["A", "B"])  # populate the cache
    generation = index.write_generation
    index.prune_trace("t1")
    assert index.write_generation > generation


def test_generation_bumps_after_update_applies(monkeypatch):
    # A query racing an in-flight update must cache under the PRE-update
    # generation: the bump happens only once builder.update() has finished,
    # so partial results can never be served as post-update hits.
    index = SequenceIndex()
    real_update = index.builder.update

    def observing_update(*args, **kwargs):
        assert index.write_generation == generation_before
        return real_update(*args, **kwargs)

    generation_before = index.write_generation
    monkeypatch.setattr(index.builder, "update", observing_update)
    index.update([Event("t1", "A", 1)])
    assert index.write_generation == generation_before + 1


def test_failed_update_still_invalidates(monkeypatch):
    index = SequenceIndex()
    index.update([Event("t1", "A", 1), Event("t1", "B", 2)])
    assert index.count(["A", "B"]) == 1  # populate the cache
    generation = index.write_generation

    def exploding_update(*args, **kwargs):
        raise RuntimeError("mid-batch failure")

    monkeypatch.setattr(index.builder, "update", exploding_update)
    with pytest.raises(RuntimeError):
        index.update([Event("t1", "A", 3)])
    # A partially applied batch must not leave pre-failure entries servable.
    assert index.write_generation == generation + 1


def test_cache_hits_do_not_alias_results():
    index = SequenceIndex()
    index.update([Event("t1", "A", 1), Event("t1", "B", 2)])
    first = index.detect(["A", "B"])
    first.clear()  # a caller mutating its result must not poison the cache
    second = index.detect(["A", "B"])
    assert len(second) == 1
