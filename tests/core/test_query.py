"""Query processor (§3.2.1): statistics, detection, STAM extension."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import SequenceIndex
from repro.core.errors import EmptyPatternError
from repro.core.model import EventLog
from repro.core.pairs import reference_stnm_pairs
from repro.core.policies import Policy


def _index(log, policy=Policy.STNM):
    index = SequenceIndex(policy=policy)
    index.update(log)
    return index


def _oracle_chains(activities, timestamps, pattern):
    """Reference for Algorithm 2: chain greedy pairs on shared timestamps."""
    pairs = reference_stnm_pairs(activities, timestamps)
    chains = [list(p) for p in pairs.get((pattern[0], pattern[1]), [])]
    for i in range(1, len(pattern) - 1):
        step = {ta: tb for ta, tb in pairs.get((pattern[i], pattern[i + 1]), [])}
        chains = [
            chain + [step[chain[-1]]] for chain in chains if chain[-1] in step
        ]
    return sorted(tuple(chain) for chain in chains)


class TestDetection:
    def test_paper_example_stnm(self):
        index = _index(EventLog.from_dict({"t1": list("AAABAACB")}))
        matches = index.detect(["A", "A", "B"])
        assert [m.timestamps for m in matches] == [(2, 4, 7)]

    def test_paper_example_sc(self):
        index = _index(EventLog.from_dict({"t1": list("AAABAACB")}), Policy.SC)
        matches = index.detect(["A", "A", "B"])
        assert [m.timestamps for m in matches] == [(1, 2, 3)]

    def test_length_two_pattern(self, paper_log):
        index = _index(paper_log)
        matches = index.detect(["A", "B"])
        by_trace = {}
        for match in matches:
            by_trace.setdefault(match.trace_id, []).append(match.timestamps)
        assert by_trace["t1"] == [(0, 3), (4, 7)]
        assert by_trace["t2"] == [(0, 1)]
        assert "t3" not in by_trace  # B before A only

    def test_single_event_pattern(self, paper_log):
        index = _index(paper_log)
        matches = index.detect(["C"])
        assert sorted((m.trace_id, m.timestamps) for m in matches) == [
            ("t1", (6,)),
            ("t2", (2,)),
            ("t3", (0,)),
        ]

    def test_no_match(self, paper_log):
        index = _index(paper_log)
        assert index.detect(["C", "A", "C"]) == []
        assert index.detect(["Z", "Q"]) == []

    def test_empty_pattern_rejected(self, paper_log):
        index = _index(paper_log)
        with pytest.raises(EmptyPatternError):
            index.detect([])

    def test_contains(self, paper_log):
        index = _index(paper_log)
        assert index.contains(["A", "B"]) == ["t1", "t2"]
        assert index.contains(["B", "A"]) == ["t1", "t3"]

    def test_match_properties(self, paper_log):
        index = _index(paper_log)
        (match,) = [m for m in index.detect(["A", "B"]) if m.trace_id == "t2"]
        assert match.start == 0 and match.end == 1
        assert match.duration == 1
        assert len(match) == 2

    @given(
        st.lists(st.sampled_from("ABC"), min_size=2, max_size=40),
        st.lists(st.sampled_from("ABC"), min_size=2, max_size=4),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_oracle_on_random_traces(self, activities, pattern):
        index = _index(EventLog.from_dict({"t": activities}))
        got = sorted(m.timestamps for m in index.detect(pattern))
        stamps = list(range(len(activities)))
        assert got == _oracle_chains(activities, stamps, pattern)

    def test_prefix_byproduct(self, paper_log):
        index = _index(paper_log)
        prefixes = index.detect_with_prefixes(["A", "B", "C"])
        assert set(prefixes) == {2, 3}
        assert {m.timestamps for m in prefixes[2]} == {(0, 3), (4, 7), (0, 1)}
        # t1: (A,B)=(0,3) chains with (B,C)=(3,6); t2: (0,1)+(1,2).
        assert {m.timestamps for m in prefixes[3]} == {(0, 3, 6), (0, 1, 2)}

    def test_prefix_requires_length_two(self, paper_log):
        index = _index(paper_log)
        with pytest.raises(EmptyPatternError):
            index.detect_with_prefixes(["A"])


class TestWithinAndCount:
    def test_within_filters_wide_matches(self, paper_log):
        index = _index(paper_log)
        all_matches = index.detect(["A", "B"])
        tight = index.detect(["A", "B"], within=1.0)
        assert {m.timestamps for m in tight} == {(0, 1)}
        assert len(tight) < len(all_matches)

    def test_within_zero_keeps_nothing_with_gaps(self, paper_log):
        index = _index(paper_log)
        assert index.detect(["A", "B"], within=0.0) == []

    def test_within_applies_to_stam(self, paper_log):
        index = _index(paper_log)
        stam = index.detect(["A", "B"], policy=Policy.STAM, within=2.0)
        assert all(m.duration <= 2.0 for m in stam)
        assert stam  # (1,3),(2,3) style embeddings survive

    def test_negative_within_rejected(self, paper_log):
        index = _index(paper_log)
        with pytest.raises(ValueError):
            index.detect(["A", "B"], within=-1.0)

    def test_count_matches_detect(self, paper_log):
        index = _index(paper_log)
        assert index.count(["A", "B"]) == len(index.detect(["A", "B"]))
        assert index.count(["A", "B"], within=1.0) == 1
        assert index.count(["Z", "Z"]) == 0


class TestStatistics:
    def test_pairwise_rows(self, paper_log):
        index = _index(paper_log)
        stats = index.statistics(["A", "B", "C"])
        assert [row.pair for row in stats.pairs] == [("A", "B"), ("B", "C")]
        ab = stats.pairs[0]
        assert ab.completions == 3  # (0,3),(4,7) in t1 and (0,1) in t2
        assert ab.total_duration == 3 + 3 + 1
        assert ab.average_duration == pytest.approx(7 / 3)
        assert ab.last_completion == 7

    def test_aggregates(self, paper_log):
        index = _index(paper_log)
        stats = index.statistics(["A", "B", "C"])
        # (B,C): (3,6) in t1 and (1,2) in t2 -> 2 completions, avg 2.0.
        assert stats.pairs[1].completions == 2
        assert stats.max_completions == 2
        assert stats.estimated_duration == pytest.approx(7 / 3 + 2.0)
        assert stats.last_completion == 7

    def test_unknown_pair_zeroes(self, paper_log):
        index = _index(paper_log)
        stats = index.statistics(["Z", "Q"])
        assert stats.pairs[0].completions == 0
        assert stats.pairs[0].average_duration == 0.0
        assert stats.max_completions == 0

    def test_requires_two_events(self, paper_log):
        index = _index(paper_log)
        with pytest.raises(EmptyPatternError):
            index.statistics(["A"])

    def test_all_pairs_tightens_bound(self, paper_log):
        index = _index(paper_log)
        # Pattern B -> A -> C: consecutive pairs both complete, but the
        # non-adjacent pair (B, C) only completes where B precedes C.
        loose = index.statistics(["B", "A", "C"])
        tight = index.statistics(["B", "A", "C"], all_pairs=True)
        assert tight.extra_pairs and tight.extra_pairs[0].pair == ("B", "C")
        assert tight.max_completions <= loose.max_completions

    def test_consecutive_bound_is_sound(self, paper_log):
        """The consecutive-pair minimum always dominates true completions."""
        index = _index(paper_log)
        for pattern in (["A", "B"], ["A", "B", "C"], ["B", "A", "C"]):
            bound = index.statistics(pattern).max_completions
            assert len(index.detect(pattern)) <= bound, pattern

    def test_all_pairs_bound_is_heuristic(self):
        """The §3.2.1 all-pairs tightening can undercut true completions.

        Documents the caveat on PatternStats: trace B A B C A C has two
        chained B,A,C completions but a single greedy (B,C) pair.
        """
        index = _index(EventLog.from_dict({"t": list("BABCAC")}))
        completions = len(index.detect(["B", "A", "C"]))
        assert completions == 2
        tight = index.statistics(["B", "A", "C"], all_pairs=True)
        assert tight.max_completions == 1  # heuristic bound undercounts
        loose = index.statistics(["B", "A", "C"])
        assert loose.max_completions >= completions  # sound bound holds

    def test_all_pairs_duration_estimate_unchanged(self, paper_log):
        index = _index(paper_log)
        loose = index.statistics(["A", "B", "C"])
        tight = index.statistics(["A", "B", "C"], all_pairs=True)
        assert loose.estimated_duration == tight.estimated_duration


class TestStam:
    def test_counts_all_embeddings(self):
        index = _index(EventLog.from_dict({"t": list("AAB")}))
        matches = index.detect(["A", "B"], policy=Policy.STAM)
        assert sorted(m.timestamps for m in matches) == [(0, 2), (1, 2)]

    def test_detects_patterns_the_pair_join_misses(self):
        # AAB in trace AAB: the printed Algorithm 2 finds nothing (the
        # (A,B) greedy pair anchors at the first A), STAM finds it.
        index = _index(EventLog.from_dict({"t": list("AAB")}))
        assert index.detect(["A", "A", "B"]) == []
        stam = index.detect(["A", "A", "B"], policy=Policy.STAM)
        assert [m.timestamps for m in stam] == [(0, 1, 2)]

    def test_max_matches_cap(self):
        index = _index(EventLog.from_dict({"t": list("AAAABBBB")}))
        capped = index.detect(["A", "B"], policy=Policy.STAM, max_matches=5)
        assert len(capped) == 5
        full = index.detect(["A", "B"], policy=Policy.STAM)
        assert len(full) == 16

    def test_stam_single_event(self, paper_log):
        index = _index(paper_log)
        stam = index.detect(["C"], policy=Policy.STAM)
        assert len(stam) == 3

    def test_stam_agrees_with_sase(self, paper_log):
        from repro.baselines.sase import SaseEngine

        index = _index(paper_log)
        sase = SaseEngine(paper_log)
        for pattern in (["A", "B"], ["A", "A", "B"], ["B", "C"], ["A", "B", "C"]):
            ours = sorted(
                (m.trace_id, m.timestamps)
                for m in index.detect(pattern, policy=Policy.STAM)
            )
            theirs = sorted(
                (m.trace_id, m.timestamps)
                for m in sase.query(pattern, strategy=Policy.STAM)
            )
            assert ours == theirs, pattern
