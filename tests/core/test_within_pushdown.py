"""WITHIN pushdown: pair-level span pruning must be result-invariant.

The planned chain join may drop a pair posting whose own span exceeds the
window, because chain timestamps are monotonic: in any surviving chain,
every adjacent completion spans at most the whole match, so a pair wider
than the window can never appear in a match the final end-to-end filter
would keep.  These tests hold the pushdown byte-identical to the naive
post-filter on random logs, and pin the counterexample showing why the
same pruning must NOT be applied to composite verification (the greedy
pair index under-approximates the occurrence pairs the verifier can use).
"""

from __future__ import annotations

import random

import pytest

from repro.core.engine import SequenceIndex
from repro.core.model import Event, EventLog, Trace
from repro.core.policies import Policy
from repro.difftest import random_log


def _build(case_log, policy=Policy.STNM):
    index = SequenceIndex(policy=policy)
    index.update(
        EventLog(
            Trace(tid, (Event(tid, act, ts) for act, ts in events))
            for tid, events in case_log.items()
        )
    )
    return index


def _spans(index, pattern, **kwargs):
    return [
        (m.trace_id, m.timestamps) for m in index.detect(pattern, **kwargs)
    ]


@pytest.mark.parametrize("seed", range(20))
@pytest.mark.parametrize("within", [0.0, 1.0, 3.0, 7.0, 100.0])
def test_pushdown_equals_post_filter(seed, within):
    """detect(within=t) == [m for m in detect() if m.duration <= t]."""
    rng = random.Random(seed)
    log = random_log(rng)
    patterns = [["A", "B"], ["A", "B", "C"], ["B", "B"], ["A", "C", "A", "B"]]
    with _build(log) as index:
        for pattern in patterns:
            unfiltered = index.detect(pattern)
            expected = [
                (m.trace_id, m.timestamps)
                for m in unfiltered
                if m.duration <= within
            ]
            assert _spans(index, pattern, within=within) == expected, pattern
            assert index.count(pattern, within=within) == len(expected)


@pytest.mark.parametrize("seed", range(10))
def test_pushdown_equals_post_filter_stam(seed):
    """STAM bypasses the chain join; within stays a pure post-filter."""
    rng = random.Random(100 + seed)
    log = random_log(rng)
    with _build(log) as index:
        for pattern in (["A", "B"], ["A", "B", "C"]):
            unfiltered = index.detect(pattern, policy=Policy.STAM)
            expected = [
                (m.trace_id, m.timestamps)
                for m in unfiltered
                if m.duration <= 5.0
            ]
            got = _spans(index, pattern, policy=Policy.STAM, within=5.0)
            assert got == expected, pattern


def test_composite_window_is_not_pushed_down():
    """The counterexample: pushdown would lose a valid composite match.

    Trace ``A@0, A@99, B@100`` under SEQ(A, B) WITHIN 1: the greedy STNM
    pair index stores only the pair ``(0, 100)`` (span 99 > 1), but the
    composite verifier re-walks the occurrence lists and legitimately
    finds ``(99, 100)``.  Pruning the only posting for the (A, B) pair
    would declare the trace empty before verification ever ran.
    """
    log = {"t": [("A", 0.0), ("A", 99.0), ("B", 100.0)]}
    with _build(log) as index:
        matches = _spans(index, "SEQ(A, B) WITHIN 1")
        assert matches == [("t", (99.0, 100.0))]
        # The plain path agrees there is no *chain-join* completion inside
        # the window: the greedy pairing is (0, 100), span 100.
        assert _spans(index, ["A", "B"], within=1.0) == []
        assert _spans(index, ["A", "B"]) == [("t", (0.0, 100.0))]


def test_pushdown_composes_with_max_matches():
    log = {
        "t1": [("A", 0.0), ("B", 1.0), ("A", 2.0), ("B", 3.0)],
        "t2": [("A", 0.0), ("B", 50.0)],
    }
    with _build(log) as index:
        got = _spans(index, ["A", "B"], within=5.0, max_matches=1)
        all_in_window = [
            (m.trace_id, m.timestamps)
            for m in index.detect(["A", "B"])
            if m.duration <= 5.0
        ]
        assert got == all_in_window[:1]


def test_negative_within_is_rejected():
    with _build({"t": [("A", 0.0), ("B", 1.0)]}) as index:
        with pytest.raises(ValueError):
            index.detect(["A", "B"], within=-1.0)
        with pytest.raises(ValueError):
            index.count(["A", "B"], within=-0.5)
