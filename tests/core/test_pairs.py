"""Pair-creation semantics (§4): the Table 3 example, flavor equivalence,
and the incremental-matching primitive."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pairs import (
    create_pairs,
    greedy_pair_match,
    indexing_pairs,
    occurrence_lists,
    pairs_after,
    parsing_pairs,
    reference_stnm_pairs,
    state_pairs,
    strict_pairs,
)
from repro.core.policies import PairMethod

STNM_FLAVORS = (indexing_pairs, parsing_pairs, state_pairs)

traces = st.lists(
    st.sampled_from("ABCDEFGH"), max_size=60
).map(lambda acts: (acts, list(range(len(acts)))))


class TestTable3Example:
    """The paper's exact example: trace <(A,1),(A,2),(B,3),(A,4),(B,5),(A,6)>."""

    STNM_EXPECTED = {
        ("A", "A"): [(1, 2), (4, 6)],
        ("B", "A"): [(3, 4), (5, 6)],
        ("B", "B"): [(3, 5)],
        ("A", "B"): [(1, 3), (4, 5)],
    }

    def test_sc_pairs(self, table3_trace):
        acts, stamps = table3_trace
        pairs = strict_pairs(acts, stamps)
        assert pairs[("A", "A")] == [(1, 2)]
        assert pairs[("A", "B")] == [(2, 3), (4, 5)]
        # Table 3 prints (3,4),(4,5) for SC (B,A); consecutive scanning of
        # the trace gives (3,4),(5,6) -- we implement the definition.
        assert pairs[("B", "A")] == [(3, 4), (5, 6)]
        assert ("B", "B") not in pairs

    @pytest.mark.parametrize("flavor", STNM_FLAVORS, ids=lambda f: f.__name__)
    def test_stnm_pairs(self, flavor, table3_trace):
        acts, stamps = table3_trace
        assert flavor(acts, stamps) == self.STNM_EXPECTED

    def test_stnm_skips_overlapping_anchor(self, table3_trace):
        """The paper: '(A,B) ... only the (1,3) pair ... and not (2,3)'."""
        acts, stamps = table3_trace
        assert (2, 3) not in indexing_pairs(acts, stamps)[("A", "B")]


class TestFlavorEquivalence:
    @given(traces)
    @settings(max_examples=300, deadline=None)
    def test_all_flavors_match_reference(self, trace):
        acts, stamps = trace
        expected = reference_stnm_pairs(acts, stamps)
        for flavor in STNM_FLAVORS:
            assert flavor(acts, stamps) == expected

    @given(traces)
    @settings(max_examples=100, deadline=None)
    def test_pairs_are_non_overlapping_per_type_pair(self, trace):
        acts, stamps = trace
        for (a, b), ts_pairs in indexing_pairs(acts, stamps).items():
            previous_end = None
            for ts_a, ts_b in ts_pairs:
                assert ts_a < ts_b
                if previous_end is not None:
                    assert ts_a > previous_end
                previous_end = ts_b

    @given(traces)
    @settings(max_examples=100, deadline=None)
    def test_sc_pairs_equal_zip(self, trace):
        acts, stamps = trace
        pairs = strict_pairs(acts, stamps)
        rebuilt = []
        for (a, b), ts_pairs in pairs.items():
            rebuilt.extend((ta, a, tb, b) for ta, tb in ts_pairs)
        rebuilt.sort()
        expected = [
            (stamps[i], acts[i], stamps[i + 1], acts[i + 1])
            for i in range(len(acts) - 1)
        ]
        assert rebuilt == sorted(expected)

    @given(traces)
    @settings(max_examples=50, deadline=None)
    def test_sc_pairs_subset_of_stnm_trace_presence(self, trace):
        """Any SC pair type occurring implies the STNM index has that type."""
        acts, stamps = trace
        sc = strict_pairs(acts, stamps)
        stnm = indexing_pairs(acts, stamps)
        assert set(sc) <= set(stnm)


class TestCreatePairsDispatch:
    def test_dispatch(self, table3_trace):
        acts, stamps = table3_trace
        assert create_pairs(acts, stamps, PairMethod.STRICT) == strict_pairs(acts, stamps)
        assert create_pairs(acts, stamps, PairMethod.INDEXING) == indexing_pairs(acts, stamps)
        assert create_pairs(acts, stamps, PairMethod.PARSING) == parsing_pairs(acts, stamps)
        assert create_pairs(acts, stamps, PairMethod.STATE) == state_pairs(acts, stamps)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            create_pairs(["A"], [1, 2])

    def test_empty_trace(self):
        for method in PairMethod:
            assert create_pairs([], [], method) == {}

    def test_single_event(self):
        for method in PairMethod:
            assert create_pairs(["A"], [1], method) == {}


class TestGreedyMatch:
    def test_same_type_pairs_consecutive(self):
        assert greedy_pair_match([1, 2, 3, 4, 5], [], True) == [(1, 2), (3, 4)]

    def test_cross_type(self):
        assert greedy_pair_match([1, 4], [2, 3, 5], False) == [(1, 2), (4, 5)]

    def test_no_match_after_anchor(self):
        assert greedy_pair_match([5], [1, 2], False) == []

    def test_empty_lists(self):
        assert greedy_pair_match([], [1], False) == []
        assert greedy_pair_match([1], [], False) == []


class TestPairsAfter:
    def test_matches_full_when_unbounded(self):
        occ = occurrence_lists(list("ABAB"), [1, 2, 3, 4])
        assert pairs_after(occ, "A", "B", None) == [(1, 2), (3, 4)]

    def test_filters_by_timestamp(self):
        occ = occurrence_lists(list("ABAB"), [1, 2, 3, 4])
        assert pairs_after(occ, "A", "B", 2) == [(3, 4)]
        assert pairs_after(occ, "A", "B", 4) == []

    def test_same_type_after(self):
        occ = occurrence_lists(list("AAAA"), [1, 2, 3, 4])
        assert pairs_after(occ, "A", "A", None) == [(1, 2), (3, 4)]
        assert pairs_after(occ, "A", "A", 2) == [(3, 4)]

    def test_missing_types(self):
        occ = occurrence_lists(list("A"), [1])
        assert pairs_after(occ, "A", "Z", None) == []
        assert pairs_after(occ, "Z", "A", None) == []

    @given(traces, st.integers(0, 60))
    @settings(max_examples=150, deadline=None)
    def test_incremental_equals_suffix_rerun(self, trace, cut):
        """Pairs after the last completion == pairs of the event suffix.

        This is the property Algorithm 1's correctness rests on: greedy
        matching restarted after a completed pair's end timestamp yields
        exactly the pairs a full re-run would add for the remaining events.
        """
        acts, stamps = trace
        occ = occurrence_lists(acts, stamps)
        for (a, b), full in reference_stnm_pairs(acts, stamps).items():
            for idx in range(len(full)):
                after = full[idx][1]  # completion timestamp of pair idx
                assert pairs_after(occ, a, b, after) == full[idx + 1 :]
