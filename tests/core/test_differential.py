"""Differential suite: indexed pattern queries vs the SASE oracle.

The two composite-pattern engines share nothing but the AST -- the indexed
path prunes with pair posting lists and verifies with occurrence-list
bisection, the oracle streams events through a guard automaton.  These
tests hold their match sets byte-identical:

* a fixed-seed subset of the seeded harness runs in tier-1;
* a hypothesis property generates logs and patterns independently of the
  harness's own generators;
* the wide 500-seed sweep is opt-in (``pytest -m differential``).

Every failure prints the one-line reproducer the harness renders
(``python -m repro diffcheck --seed N``) so a CI hit replays locally.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.pattern import Pattern, PatternElement
from repro.difftest import (
    CaseResult,
    evaluate_both,
    random_log,
    random_pattern,
    run_case,
    shrink,
)

# -- fixed-seed subset (tier-1) ----------------------------------------------


@pytest.mark.parametrize("seed", range(25))
def test_fixed_seeds_agree(seed):
    result = run_case(seed)
    assert result.ok, "\n" + result.report()


# -- hypothesis: independently generated cases -------------------------------

_LETTERS = tuple("ABCD")

_events = st.lists(
    st.tuples(st.sampled_from(_LETTERS), st.integers(1, 4)), max_size=14
)
_logs = st.dictionaries(
    st.sampled_from(["t0", "t1", "t2", "t3"]), _events, min_size=1, max_size=4
)
_raw_elements = st.lists(
    st.tuples(
        st.lists(st.sampled_from(_LETTERS), min_size=1, max_size=2, unique=True),
        st.booleans(),  # kleene
        st.booleans(),  # negated
    ),
    min_size=1,
    max_size=4,
)
_within = st.one_of(st.none(), st.integers(2, 15).map(float))


def _build_pattern(raw, within) -> Pattern:
    """Normalize raw tuples into a valid Pattern (first element positive)."""
    elements = []
    for i, (types, kleene, negated) in enumerate(raw):
        negated = negated and i > 0
        elements.append(
            PatternElement(
                types=tuple(types), kleene=kleene and not negated, negated=negated
            )
        )
    return Pattern(elements=tuple(elements), within=within)


def _timestamped(log):
    """Gap lists -> absolute-timestamp logs (gaps keep windows non-trivial)."""
    out = {}
    for tid, events in log.items():
        ts = 0.0
        rows = []
        for activity, gap in events:
            rows.append((activity, ts))
            ts += gap
        out[tid] = rows
    return out


@given(log=_logs, raw=_raw_elements, within=_within)
def test_property_engines_agree(log, raw, within):
    pattern = _build_pattern(raw, within)
    indexed, oracle = evaluate_both(_timestamped(log), pattern)
    assert indexed == oracle, (
        f"pattern {pattern} diverged\n"
        f"  indexed only: {sorted(indexed - oracle)}\n"
        f"  oracle only:  {sorted(oracle - indexed)}"
    )


# -- wide sweep (opt-in) -----------------------------------------------------


@pytest.mark.differential
@pytest.mark.parametrize("block", range(10))
def test_wide_sweep_agrees(block):
    """500 seeds in 10 blocks, so a failure names a narrow range."""
    for seed in range(block * 50, (block + 1) * 50):
        result = run_case(seed)
        assert result.ok, "\n" + result.report()


# -- the harness itself ------------------------------------------------------


class TestHarness:
    def test_generators_are_deterministic(self):
        import random

        a_log = random_log(random.Random(11))
        b_log = random_log(random.Random(11))
        assert a_log == b_log
        a_pat = random_pattern(random.Random(11))
        b_pat = random_pattern(random.Random(11))
        assert a_pat == b_pat

    def test_reproducer_line_names_the_seed(self):
        result = run_case(17)
        assert result.reproducer == "python -m repro diffcheck --seed 17"

    def test_report_of_divergence_is_actionable(self):
        """A synthetic divergence renders both diffs and the reproducer."""
        result = CaseResult(
            seed=99,
            pattern=Pattern.of("A"),
            log={"t0": [("A", 0.0)]},
            indexed={("t0", (0.0,))},
            oracle=set(),
        )
        report = result.report()
        assert "DIVERGENCE" in report
        assert "indexed only: [('t0', (0.0,))]" in report
        assert "diffcheck --seed 99" in report

    def test_shrinker_minimizes_a_buggy_engine(self, monkeypatch):
        """Against an engine that ignores negation, shrink() converges on a
        counterexample small enough to eyeball: one trace, and a pattern
        that still holds a negated element (dropping it kills the bug)."""
        import repro.difftest as difftest
        from repro.core.pattern import find_matches

        def buggy_evaluate(log, pattern):
            stripped = Pattern(
                elements=tuple(
                    e for e in pattern.elements if not e.negated
                ),
                within=pattern.within,
            )
            indexed, oracle = set(), set()
            for tid, events in log.items():
                acts = [a for a, _ in events]
                stamps = [t for _, t in events]
                for span in find_matches(acts, stamps, stripped):
                    indexed.add((tid, span))
                for span in find_matches(acts, stamps, pattern):
                    oracle.add((tid, span))
            return indexed, oracle

        monkeypatch.setattr(difftest, "evaluate_both", buggy_evaluate)
        log = {
            "t0": [("A", 0.0), ("B", 1.0), ("C", 2.0)],
            "t1": [("A", 0.0), ("C", 1.0)],
            "t2": [("D", 0.0)],
        }
        pattern = Pattern.of("A", "!B", "(C|D)", within=20.0)
        assert difftest._diverges(log, pattern)
        small_log, small_pattern = shrink(log, pattern)
        assert difftest._diverges(small_log, small_pattern)
        assert len(small_log) == 1
        assert sum(len(v) for v in small_log.values()) <= 3
        assert any(e.negated for e in small_pattern.elements)
        assert small_pattern.within is None
        assert all(len(e.types) == 1 for e in small_pattern.elements)

    def test_shrinker_is_identity_on_agreement(self):
        """shrink() is only called on divergences; on agreement every
        reduction fails and the case comes back unchanged."""
        log = {"t0": [("A", 0.0), ("B", 1.0)]}
        pattern = Pattern.of("A")
        assert shrink(log, pattern) == (log, pattern)
