"""`explain_profile=True`: per-stage breakdown of one detection."""

from __future__ import annotations

from repro.core.engine import SequenceIndex
from repro.core.model import Event
from repro.obs.profile import QueryProfile
from repro.obs.trace import NULL_TRACER, current_tracer

STAGES = ("plan", "fetch_postings", "intersect", "join", "materialize")


def _sizeable_log(traces: int = 200, repeats: int = 5) -> list[Event]:
    events = []
    for t in range(traces):
        ts = 0.0
        for _ in range(repeats):
            for act in ("a", "b", "c", "d"):
                events.append(
                    Event(trace_id=f"t{t}", activity=act, timestamp=ts)
                )
                ts += 1.0
    return events


def test_profile_returned_with_plan_and_matches():
    with SequenceIndex() as index:
        index.update(_sizeable_log(traces=20, repeats=2))
        matches, plan, profile = index.detect(
            ["a", "b", "c"], explain_profile=True
        )
    assert len(matches) == 40
    assert plan.pattern == ("a", "b", "c")
    assert isinstance(profile, QueryProfile)
    assert profile.query == "query.detect"
    assert profile.total_wall_s > 0


def test_profile_contains_planner_stages_in_order():
    with SequenceIndex() as index:
        index.update(_sizeable_log(traces=20, repeats=2))
        _, _, profile = index.detect(["a", "b", "c", "d"], explain_profile=True)
    assert tuple(stage.name for stage in profile.stages) == STAGES


def test_stage_counters_describe_the_execution():
    with SequenceIndex() as index:
        index.update(_sizeable_log(traces=10, repeats=1))
        matches, _, profile = index.detect(["a", "b"], explain_profile=True)
    by_name = {stage.name: dict(stage.counters) for stage in profile.stages}
    assert by_name["plan"]["pairs"] == 1
    assert by_name["intersect"]["survivors"] == 10
    assert by_name["materialize"]["matches"] == len(matches)


def test_stage_timings_account_for_most_of_the_query_wall_time():
    """The stages must sum to <= the total and cover a meaningful share.

    Stage spans nest inside the root query span, so their sum can never
    exceed the root's wall time; on a sizeable in-memory log the traced
    stages are where the work happens, so they must also account for at
    least half of it (untraced glue is cache lookups and result copies).
    """
    with SequenceIndex() as index:
        index.update(_sizeable_log())
        _, _, profile = index.detect(["a", "b", "c", "d"], explain_profile=True)
    assert profile.accounted_wall_s <= profile.total_wall_s
    assert profile.accounted_fraction >= 0.5


def test_profile_bypasses_the_query_result_cache():
    with SequenceIndex() as index:
        index.update(_sizeable_log(traces=10, repeats=1))
        index.detect(["a", "b"])  # populate the cache
        _, _, profile = index.detect(["a", "b"], explain_profile=True)
    # A cache hit would execute no stages at all.
    assert profile.stages


def test_tracer_deactivated_after_profiled_query():
    with SequenceIndex() as index:
        index.update(_sizeable_log(traces=5, repeats=1))
        index.detect(["a", "b"], explain_profile=True)
        assert current_tracer() is NULL_TRACER


def test_plain_detect_unchanged_by_profile_support():
    with SequenceIndex() as index:
        index.update(_sizeable_log(traces=10, repeats=1))
        plain = index.detect(["a", "b", "c"])
        profiled, _, _ = index.detect(["a", "b", "c"], explain_profile=True)
        explained, _ = index.detect(["a", "b", "c"], explain=True)
    assert plain == profiled == explained
