"""Suffix-array baseline ([19]): construction and SC matching."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.suffix import (
    SuffixArrayMatcher,
    TraceTree,
    build_suffix_array,
    naive_suffix_array,
)
from repro.core.model import EventLog


class TestSuffixArray:
    @given(st.lists(st.integers(0, 8), max_size=80))
    @settings(max_examples=200, deadline=None)
    def test_matches_naive(self, values):
        arr = np.asarray(values, dtype=np.int64)
        assert build_suffix_array(arr).tolist() == naive_suffix_array(arr).tolist()

    def test_empty(self):
        assert build_suffix_array(np.empty(0, dtype=np.int64)).tolist() == []

    def test_known_example(self):
        # "banana" as ints: suffix array = [5,3,1,0,4,2]
        text = np.asarray([2, 1, 3, 1, 3, 1], dtype=np.int64)  # b,a,n,a,n,a
        assert build_suffix_array(text).tolist() == [5, 3, 1, 0, 4, 2]

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            build_suffix_array(np.zeros((2, 2), dtype=np.int64))


class TestTraceTree:
    def test_deduplicates_identical_traces(self):
        tree = TraceTree()
        tree.insert("t1", ["a", "b"])
        tree.insert("t2", ["a", "b"])
        tree.insert("t3", ["a", "c"])
        paths = tree.distinct_paths()
        assert len(paths) == 3 - 1
        by_path = dict(paths)
        assert sorted(by_path[("a", "b")]) == ["t1", "t2"]
        assert by_path[("a", "c")] == ["t3"]

    def test_prefix_path_traces_kept_separate(self):
        tree = TraceTree()
        tree.insert("short", ["a"])
        tree.insert("long", ["a", "b"])
        by_path = dict(tree.distinct_paths())
        assert by_path[("a",)] == ["short"]
        assert by_path[("a", "b")] == ["long"]

    def test_node_count(self):
        tree = TraceTree()
        tree.insert("t1", ["a", "b"])
        tree.insert("t2", ["a", "c"])
        assert tree.num_nodes() == 3  # a, a->b, a->c
        assert tree.num_traces == 2

    def test_preorder_string_shape(self):
        tree = TraceTree()
        tree.insert("t", ["a", "b"])
        encode = {"a": 1, "b": 2}
        preorder = tree.preorder_string(encode)
        assert preorder == [1, 2, 0, 0]

    def test_from_log(self, paper_log):
        tree = TraceTree.from_log(paper_log)
        assert tree.num_traces == 3


def _brute_force_sc(log, pattern):
    matches = []
    width = len(pattern)
    for trace in log:
        acts = trace.activities
        for start in range(len(acts) - width + 1):
            if acts[start : start + width] == pattern:
                matches.append(
                    (trace.trace_id, tuple(trace.timestamps[start : start + width]))
                )
    return sorted(matches)


@pytest.mark.parametrize("mode", ("materialized", "array"))
class TestMatcher:
    def test_detect_equals_brute_force(self, paper_log, mode):
        matcher = SuffixArrayMatcher(paper_log, mode=mode)
        for pattern in (["A"], ["A", "B"], ["A", "A"], ["B", "C"], ["C", "B", "A"]):
            got = sorted((m.trace_id, m.timestamps) for m in matcher.detect(pattern))
            assert got == _brute_force_sc(paper_log, pattern), pattern

    def test_unknown_symbol(self, paper_log, mode):
        matcher = SuffixArrayMatcher(paper_log, mode=mode)
        assert matcher.detect(["Z"]) == []
        assert matcher.contains(["A", "Z"]) == []

    def test_empty_pattern_rejected(self, paper_log, mode):
        matcher = SuffixArrayMatcher(paper_log, mode=mode)
        with pytest.raises(ValueError):
            matcher.detect([])

    def test_duplicate_traces_fan_out(self, mode):
        log = EventLog.from_dict({"t1": "XY", "t2": "XY"})
        matcher = SuffixArrayMatcher(log, mode=mode)
        assert matcher.stats.distinct_traces == 1
        assert matcher.stats.num_traces == 2
        assert matcher.contains(["X", "Y"]) == ["t1", "t2"]

    def test_continuations(self, mode):
        log = EventLog.from_dict({"t1": "ABC", "t2": "ABD", "t3": "ABC"})
        matcher = SuffixArrayMatcher(log, mode=mode)
        assert matcher.continuations(["A", "B"]) == {"C": 2, "D": 1}
        assert matcher.continuations(["B", "C"]) == {}

    @given(
        st.dictionaries(
            st.sampled_from(["t1", "t2", "t3", "t4"]),
            st.lists(st.sampled_from("ABC"), min_size=1, max_size=15),
            min_size=1,
            max_size=4,
        ),
        st.lists(st.sampled_from("ABC"), min_size=1, max_size=4),
    )
    @settings(max_examples=80, deadline=None)
    def test_random_equivalence_with_brute_force(self, mode, traces, pattern):
        log = EventLog.from_dict(traces)
        matcher = SuffixArrayMatcher(log, mode=mode)
        got = sorted((m.trace_id, m.timestamps) for m in matcher.detect(pattern))
        assert got == _brute_force_sc(log, pattern)


class TestModesAgree:
    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c"]),
            st.lists(st.sampled_from("XYZ"), min_size=1, max_size=12),
            min_size=1,
            max_size=3,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_detection_identical(self, traces):
        log = EventLog.from_dict(traces)
        fast = SuffixArrayMatcher(log, mode="array")
        faithful = SuffixArrayMatcher(log, mode="materialized")
        for pattern in (["X"], ["X", "Y"], ["Z", "Z"], ["X", "Y", "Z"]):
            assert fast.detect(pattern) == faithful.detect(pattern)

    def test_invalid_mode(self, paper_log):
        with pytest.raises(ValueError):
            SuffixArrayMatcher(paper_log, mode="quantum")
