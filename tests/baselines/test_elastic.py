"""Elasticsearch-like baseline: postings, span queries, segment lifecycle."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.elastic import ElasticIndex
from repro.baselines.elastic.analyzer import analyze_trace
from repro.baselines.elastic.postings import PostingsBuffer, merge_segments
from repro.baselines.elastic.search import candidate_documents, span_near
from repro.core.model import EventLog, Trace


def _brute_force_greedy_spans(activities, pattern):
    """Oracle for unlimited-slop spans: greedy non-overlapping chains."""
    spans = []
    floor = -1
    while True:
        chain = []
        prev = floor
        ok = True
        for term in pattern:
            idx = next(
                (i for i in range(prev + 1, len(activities)) if activities[i] == term),
                None,
            )
            if idx is None:
                ok = False
                break
            chain.append(idx)
            prev = idx
        if not ok:
            return spans
        spans.append(tuple(chain))
        floor = chain[-1]


class TestAnalyzer:
    def test_positions_and_source(self):
        trace = Trace.from_pairs("t", [("a", 1.5), ("b", 2.5)])
        doc = analyze_trace(7, trace)
        assert doc.doc_id == 7
        assert doc.terms == ("a", "b")
        assert doc.timestamps == (1.5, 2.5)


class TestPostings:
    def _segment(self):
        buffer = PostingsBuffer()
        buffer.add_document(analyze_trace(0, Trace.from_activities("t0", "aba")))
        buffer.add_document(analyze_trace(1, Trace.from_activities("t1", "bb")))
        return buffer.refresh()

    def test_postings_positions(self):
        segment = self._segment()
        (posting,) = segment.postings("a")
        assert posting.doc_id == 0
        assert posting.positions.tolist() == [0, 2]

    def test_doc_frequency(self):
        segment = self._segment()
        assert segment.doc_frequency("b") == 2
        assert segment.doc_frequency("zz") == 0

    def test_refresh_clears_buffer(self):
        buffer = PostingsBuffer()
        buffer.add_document(analyze_trace(0, Trace.from_activities("t", "a")))
        buffer.refresh()
        assert len(buffer) == 0

    def test_duplicate_doc_rejected(self):
        buffer = PostingsBuffer()
        doc = analyze_trace(0, Trace.from_activities("t", "a"))
        buffer.add_document(doc)
        with pytest.raises(ValueError):
            buffer.add_document(doc)

    def test_merge_segments(self):
        b1 = PostingsBuffer()
        b1.add_document(analyze_trace(0, Trace.from_activities("t0", "ab")))
        b2 = PostingsBuffer()
        b2.add_document(analyze_trace(1, Trace.from_activities("t1", "ba")))
        merged = merge_segments([b1.refresh(), b2.refresh()])
        assert merged.num_documents == 2
        assert [p.doc_id for p in merged.postings("a")] == [0, 1]

    def test_merge_rejects_duplicate_ids(self):
        b1 = PostingsBuffer()
        b1.add_document(analyze_trace(0, Trace.from_activities("t0", "a")))
        b2 = PostingsBuffer()
        b2.add_document(analyze_trace(0, Trace.from_activities("t1", "a")))
        with pytest.raises(ValueError):
            merge_segments([b1.refresh(), b2.refresh()])


class TestSpanSearch:
    def _segment(self, docs):
        buffer = PostingsBuffer()
        for i, acts in enumerate(docs):
            buffer.add_document(analyze_trace(i, Trace.from_activities(f"t{i}", acts)))
        return buffer.refresh()

    def test_candidates_require_all_terms(self):
        segment = self._segment(["ab", "ac", "bc"])
        assert candidate_documents(segment, ["a", "b"]) == [0]
        assert candidate_documents(segment, ["a"]) == [0, 1]
        assert candidate_documents(segment, ["a", "z"]) == []
        assert candidate_documents(segment, []) == []

    def test_unlimited_slop_greedy(self):
        segment = self._segment(["axbxaxb"])
        spans = span_near(segment, ["a", "b"])
        assert [s.positions for s in spans] == [(0, 2), (4, 6)]

    def test_phrase_slop_zero(self):
        segment = self._segment(["aab"])
        spans = span_near(segment, ["a", "a", "b"], slop=0)
        assert [s.positions for s in spans] == [(0, 1, 2)]

    def test_slop_bounds_width(self):
        segment = self._segment(["axxb", "ab"])
        assert {s.doc_id for s in span_near(segment, ["a", "b"], slop=0)} == {1}
        assert {s.doc_id for s in span_near(segment, ["a", "b"], slop=2)} == {0, 1}

    def test_empty_query_rejected(self):
        with pytest.raises(ValueError):
            span_near(self._segment(["a"]), [])

    @given(
        st.lists(st.sampled_from("abc"), max_size=40),
        st.lists(st.sampled_from("abc"), min_size=1, max_size=3),
    )
    @settings(max_examples=150, deadline=None)
    def test_unlimited_matches_oracle(self, activities, pattern):
        segment = self._segment(["".join(activities)])
        got = [s.positions for s in span_near(segment, pattern)]
        assert got == _brute_force_greedy_spans(list(activities), pattern)


class TestElasticIndex:
    def test_from_log_and_count(self, paper_log):
        index = ElasticIndex.from_log(paper_log)
        assert index.num_documents == 3
        assert index.count(["A", "B"]) == 3
        assert index.contains(["B", "A"]) == ["t1", "t3"]

    def test_timestamps_reported(self, paper_log):
        index = ElasticIndex.from_log(paper_log)
        t2 = [m for m in index.span_search(["A", "B"]) if m.trace_id == "t2"]
        assert t2[0].timestamps == (0, 1)

    def test_incremental_indexing_with_refresh(self):
        index = ElasticIndex()
        index.index_log(EventLog.from_dict({"t1": "ab"}))
        index.refresh()
        assert index.count(["a", "b"]) == 1
        index.index_log(EventLog.from_dict({"t2": "ab"}))
        index.refresh()
        assert index.count(["a", "b"]) == 2

    def test_auto_refresh_on_buffer_size(self):
        index = ElasticIndex(refresh_every=2)
        index.index_log(EventLog.from_dict({"a": "xy", "b": "xy", "c": "xy"}))
        index.refresh()
        assert index.count(["x", "y"]) == 3

    def test_force_merge_keeps_results(self, paper_log):
        index = ElasticIndex(refresh_every=1)
        index.index_log(paper_log)
        before = index.span_search(["A", "B"])
        index.force_merge()
        assert index.span_search(["A", "B"]) == before

    def test_empty_index_queries(self):
        index = ElasticIndex()
        assert index.span_search(["a"]) == []

    def test_invalid_refresh_every(self):
        with pytest.raises(ValueError):
            ElasticIndex(refresh_every=0)

    def test_sc_phrase_agrees_with_suffix_baseline(self, paper_log):
        from repro.baselines.suffix import SuffixArrayMatcher

        index = ElasticIndex.from_log(paper_log)
        matcher = SuffixArrayMatcher(paper_log)
        for pattern in (["A", "A"], ["A", "B"], ["A", "A", "B"], ["C", "B"]):
            es = sorted((m.trace_id, m.timestamps) for m in index.span_search(pattern, slop=0))
            sa = sorted((m.trace_id, m.timestamps) for m in matcher.detect(pattern))
            assert es == sa, pattern
