"""SASE+ Kleene-plus patterns (SC and STNM)."""

from __future__ import annotations

import pytest

from repro.baselines.sase import SaseEngine, SasePattern
from repro.baselines.sase.nfa import Nfa
from repro.core.model import EventLog
from repro.core.policies import Policy


class TestPatternParsing:
    def test_plus_suffix_parsed(self):
        pattern = SasePattern.seq("a", "b+", "c")
        assert pattern.event_types == ("a", "b", "c")
        assert pattern.kleene == (False, True, False)
        assert pattern.has_kleene
        assert "b+" in str(pattern)

    def test_bare_plus_is_a_type(self):
        pattern = SasePattern.seq("+")
        assert pattern.event_types == ("+",)
        assert not pattern.has_kleene

    def test_flag_alignment_enforced(self):
        with pytest.raises(ValueError):
            SasePattern(("a", "b"), kleene=(True,))


class TestStnmKleene:
    def _eval(self, pattern, text):
        nfa = Nfa(SasePattern.seq(*pattern))
        return nfa.evaluate(list(text), list(range(len(text))))

    def test_absorbs_multiple(self):
        assert self._eval(["a", "b+", "c"], "abbbc") == [(0, 1, 2, 3, 4)]

    def test_requires_at_least_one(self):
        assert self._eval(["a", "b+", "c"], "ac") == []

    def test_skips_irrelevant_during_absorption(self):
        # x events are skipped; both b's belong to the group.
        assert self._eval(["a", "b+", "c"], "abxbc") == [(0, 1, 3, 4)]

    def test_absorption_stops_at_next_type(self):
        # The second b comes after c, so it is not absorbed.
        assert self._eval(["a", "b+", "c"], "abcb") == [(0, 1, 2)]

    def test_trailing_kleene_runs_to_end(self):
        assert self._eval(["a", "b+"], "abxb") == [(0, 1, 3)]

    def test_trailing_kleene_is_maximal_munch(self):
        # A trailing + group absorbs every later occurrence, so one match
        # covers the trace instead of two smaller ones.
        matches = self._eval(["a", "b+"], "abab")
        assert matches == [(0, 1, 3)]

    def test_non_overlapping_repeats_with_closing_element(self):
        matches = self._eval(["a", "b+", "c"], "abcabc")
        assert matches == [(0, 1, 2), (3, 4, 5)]

    def test_within_window(self):
        nfa = Nfa(SasePattern.seq("a", "b+", within=1.0))
        assert nfa.evaluate(["a", "b", "b"], [0.0, 0.5, 9.0]) == []
        nfa2 = Nfa(SasePattern.seq("a", "b+", within=10.0))
        assert nfa2.evaluate(["a", "b", "b"], [0.0, 0.5, 9.0]) == [(0.0, 0.5, 9.0)]

    def test_max_matches(self):
        nfa = Nfa(SasePattern.seq("a+"))
        got = nfa.evaluate(list("xaxa"), [0, 1, 2, 3], max_matches=1)
        assert got == [(1, 3)]


class TestScKleene:
    def _eval(self, pattern, text):
        nfa = Nfa(SasePattern.seq(*pattern, strategy=Policy.SC))
        return nfa.evaluate(list(text), list(range(len(text))))

    def test_contiguous_group(self):
        assert self._eval(["a", "b+", "c"], "abbc") == [(0, 1, 2, 3)]

    def test_gap_breaks_group(self):
        assert self._eval(["a", "b+", "c"], "abxbc") == []

    def test_group_must_be_followed_immediately(self):
        assert self._eval(["a", "b+", "c"], "abbxc") == []

    def test_later_start_found(self):
        assert self._eval(["a", "b+"], "xxab") == [(2, 3)]


class TestEngineIntegration:
    def test_kleene_query_over_log(self):
        log = EventLog.from_dict({"t1": "abbc", "t2": "ac", "t3": "abc"})
        engine = SaseEngine(log)
        matches = engine.query(SasePattern.seq("a", "b+", "c"))
        assert {m.trace_id: len(m.timestamps) for m in matches} == {"t1": 4, "t3": 3}

    def test_stam_kleene_unsupported(self):
        log = EventLog.from_dict({"t": "abc"})
        engine = SaseEngine(log)
        with pytest.raises(NotImplementedError):
            engine.query(SasePattern.seq("a+", strategy=Policy.STAM))
