"""SASE CEP engine: selection strategies, windows, full-log evaluation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.sase import SaseEngine, SasePattern
from repro.baselines.sase.nfa import Nfa
from repro.core.model import EventLog
from repro.core.policies import Policy


def _oracle_stnm(activities, pattern):
    """Reference STNM: greedy single-run scan, restart after completion."""
    matches = []
    state = 0
    chain = []
    for i, activity in enumerate(activities):
        if activity == pattern[state]:
            chain.append(i)
            state += 1
            if state == len(pattern):
                matches.append(tuple(chain))
                state = 0
                chain = []
    return matches


class TestPattern:
    def test_seq_constructor(self):
        pattern = SasePattern.seq("a", "b", strategy=Policy.SC, within=5.0)
        assert pattern.event_types == ("a", "b")
        assert len(pattern) == 2
        assert "SEQ(a, b)" in str(pattern)
        assert "WITHIN" in str(pattern)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SasePattern(())

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            SasePattern.seq("a", within=0)


class TestStrictContiguity:
    def test_paper_example(self):
        nfa = Nfa(SasePattern.seq("A", "A", "B", strategy=Policy.SC))
        acts = list("AAABAACB")
        matches = nfa.evaluate(acts, list(range(8)))
        assert matches == [(1, 2, 3)]

    def test_overlapping_sc_matches_allowed(self):
        nfa = Nfa(SasePattern.seq("A", "A", strategy=Policy.SC))
        matches = nfa.evaluate(list("AAA"), [0, 1, 2])
        assert matches == [(0, 1), (1, 2)]

    def test_within_window(self):
        nfa = Nfa(SasePattern.seq("A", "B", strategy=Policy.SC, within=1.0))
        assert nfa.evaluate(["A", "B"], [0.0, 5.0]) == []
        assert nfa.evaluate(["A", "B"], [0.0, 0.5]) == [(0.0, 0.5)]


class TestSkipTillNextMatch:
    def test_paper_example(self):
        nfa = Nfa(SasePattern.seq("A", "A", "B"))
        matches = nfa.evaluate(list("AAABAACB"), list(range(8)))
        assert matches == [(0, 1, 3), (4, 5, 7)]

    @given(
        st.lists(st.sampled_from("AB"), max_size=40),
        st.lists(st.sampled_from("AB"), min_size=1, max_size=3),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_oracle(self, activities, pattern):
        nfa = Nfa(SasePattern.seq(*pattern))
        got = nfa.evaluate(activities, list(range(len(activities))))
        assert got == _oracle_stnm(activities, pattern)

    def test_max_matches(self):
        nfa = Nfa(SasePattern.seq("A"))
        got = nfa.evaluate(list("AAAA"), [0, 1, 2, 3], max_matches=2)
        assert got == [(0,), (1,)]

    def test_window_restarts_run(self):
        nfa = Nfa(SasePattern.seq("A", "B", within=2.0))
        # A@0 .. B@5 exceeds window; the run resets and A@4-B@5 matches.
        matches = nfa.evaluate(["A", "x", "x", "x", "A", "B"], [0, 1, 2, 3, 4, 5])
        assert matches == [(4, 5)]


class TestSkipTillAnyMatch:
    def test_all_embeddings(self):
        nfa = Nfa(SasePattern.seq("A", "B", strategy=Policy.STAM))
        matches = nfa.evaluate(list("AAB"), [0, 1, 2])
        assert sorted(matches) == [(0, 2), (1, 2)]

    def test_missing_symbol_short_circuits(self):
        nfa = Nfa(SasePattern.seq("A", "Z", strategy=Policy.STAM))
        assert nfa.evaluate(list("AAB"), [0, 1, 2]) == []

    def test_window_prunes(self):
        nfa = Nfa(SasePattern.seq("A", "B", strategy=Policy.STAM, within=1.0))
        matches = nfa.evaluate(["A", "B", "B"], [0.0, 0.5, 9.0])
        assert matches == [(0.0, 0.5)]

    def test_max_matches_cap(self):
        nfa = Nfa(SasePattern.seq("A", "B", strategy=Policy.STAM))
        got = nfa.evaluate(list("AAAABBBB"), list(range(8)), max_matches=3)
        assert len(got) == 3


class TestEngine:
    def test_query_across_traces(self, paper_log):
        engine = SaseEngine(paper_log)
        matches = engine.query(["A", "B"])
        by_trace = {}
        for match in matches:
            by_trace.setdefault(match.trace_id, []).append(match.timestamps)
        assert by_trace["t1"] == [(0, 3), (4, 7)]
        assert by_trace["t2"] == [(0, 1)]

    def test_plain_list_promoted(self, paper_log):
        engine = SaseEngine(paper_log)
        assert engine.query(["A", "B"], strategy=Policy.SC)

    def test_contains_early_exit(self, paper_log):
        engine = SaseEngine(paper_log)
        assert engine.contains(["A", "B"]) == ["t1", "t2"]
        assert engine.contains(["Z"]) == []

    def test_global_max_matches(self):
        log = EventLog.from_dict({f"t{i}": "AB" for i in range(10)})
        engine = SaseEngine(log)
        assert len(engine.query(["A", "B"], max_matches=4)) == 4

    def test_sc_query_agrees_with_suffix_baseline(self, paper_log):
        from repro.baselines.suffix import SuffixArrayMatcher

        engine = SaseEngine(paper_log)
        matcher = SuffixArrayMatcher(paper_log)
        for pattern in (["A", "A"], ["A", "B"], ["B", "A"], ["A", "A", "B"]):
            sase = sorted(
                (m.trace_id, m.timestamps)
                for m in engine.query(pattern, strategy=Policy.SC)
            )
            suffix = sorted(
                (m.trace_id, m.timestamps) for m in matcher.detect(pattern)
            )
            assert sase == suffix, pattern

    def test_length2_stnm_agrees_with_our_index(self, paper_log):
        """On length-2 patterns all STNM formulations coincide."""
        from repro.core.engine import SequenceIndex

        engine = SaseEngine(paper_log)
        index = SequenceIndex()
        index.update(paper_log)
        for pattern in (["A", "B"], ["B", "A"], ["A", "A"], ["B", "C"]):
            sase = sorted((m.trace_id, m.timestamps) for m in engine.query(pattern))
            ours = sorted((m.trace_id, m.timestamps) for m in index.detect(pattern))
            assert sase == ours, pattern
