"""Documentation health: intra-repo links resolve, metrics stay documented.

Runs as part of the normal pytest suite, so CI fails when a doc link rots
or a counter is added without a row in ``docs/METRICS.md``.
"""

from __future__ import annotations

import os
import re

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOC_FILES = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "docs/ARCHITECTURE.md",
    "docs/INGEST.md",
    "docs/METRICS.md",
    "docs/OPERATIONS.md",
]

# [text](target) markdown links; images excluded by the (?<!!) guard.
_LINK = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")


def _links(doc: str) -> list[str]:
    with open(os.path.join(REPO_ROOT, doc), encoding="utf-8") as fh:
        return _LINK.findall(fh.read())


@pytest.mark.parametrize("doc", DOC_FILES)
def test_doc_exists(doc):
    assert os.path.isfile(os.path.join(REPO_ROOT, doc)), f"{doc} is missing"


@pytest.mark.parametrize("doc", DOC_FILES)
def test_intra_repo_links_resolve(doc):
    """Every relative markdown link must point at an existing file."""
    broken = []
    for target in _links(doc):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = os.path.normpath(
            os.path.join(REPO_ROOT, os.path.dirname(doc), path)
        )
        if not os.path.exists(resolved):
            broken.append(target)
    assert not broken, f"{doc} has broken relative links: {broken}"


def _metrics_doc() -> str:
    with open(os.path.join(REPO_ROOT, "docs/METRICS.md"), encoding="utf-8") as fh:
        return fh.read()


def test_every_store_counter_documented():
    """Adding a StoreMetrics counter requires a docs/METRICS.md row."""
    from repro.kvstore.lsm import StoreMetrics

    doc = _metrics_doc()
    missing = [
        name for name in StoreMetrics._COUNTERS if f"`{name}`" not in doc
    ]
    assert not missing, (
        f"StoreMetrics counters missing from docs/METRICS.md: {missing}"
    )


def test_every_catalogued_metric_documented():
    """Every exposition name in METRIC_CATALOG needs a docs/METRICS.md row."""
    from repro.obs.registry import METRIC_CATALOG

    doc = _metrics_doc()
    missing = [name for name in METRIC_CATALOG if f"`{name}`" not in doc]
    assert not missing, (
        f"catalogued metrics missing from docs/METRICS.md: {missing}"
    )


def test_every_catalogued_metric_has_type_and_help():
    from repro.obs.registry import METRIC_CATALOG

    for name, (metric_type, help_text) in METRIC_CATALOG.items():
        assert metric_type in ("counter", "gauge"), name
        assert help_text.strip(), f"{name} has empty help text"
        if name.endswith("_total"):
            assert metric_type == "counter", f"{name} must be a counter"
        else:
            assert metric_type == "gauge", f"{name} must be a gauge"


# -- pattern language ---------------------------------------------------------

#: Operator vocabulary of the composite pattern language.  DESIGN.md must
#: document each one, and the golden corpus must exercise each one -- a new
#: operator lands with docs and a golden case or this test fails.
PATTERN_OPERATORS = ("sequence", "alternation", "kleene", "negation", "within")


def test_design_documents_every_pattern_operator():
    with open(os.path.join(REPO_ROOT, "DESIGN.md"), encoding="utf-8") as fh:
        doc = fh.read().lower()
    missing = [op for op in PATTERN_OPERATORS if op not in doc]
    assert not missing, f"DESIGN.md does not mention operators: {missing}"


def test_golden_corpus_covers_every_documented_operator():
    """Every operator named in DESIGN.md's grammar has a golden-corpus case."""
    import json

    with open(
        os.path.join(REPO_ROOT, "tests/data/pattern_corpus.json"),
        encoding="utf-8",
    ) as fh:
        corpus = json.load(fh)
    tagged = {op for case in corpus["cases"] for op in case["operators"]}
    unknown = tagged - set(PATTERN_OPERATORS)
    assert not unknown, f"corpus uses undeclared operator tags: {unknown}"
    missing = set(PATTERN_OPERATORS) - tagged
    assert not missing, f"no golden-corpus case exercises: {missing}"


def test_operations_guide_documents_the_pattern_grammar():
    with open(
        os.path.join(REPO_ROOT, "docs/OPERATIONS.md"), encoding="utf-8"
    ) as fh:
        doc = fh.read()
    assert "WITHIN" in doc, "docs/OPERATIONS.md lacks the pattern grammar"
    assert "diffcheck" in doc, "docs/OPERATIONS.md lacks the diffcheck runbook"


# -- CLI surface --------------------------------------------------------------


def _all_docs() -> str:
    parts = []
    for doc in DOC_FILES:
        with open(os.path.join(REPO_ROOT, doc), encoding="utf-8") as fh:
            parts.append(fh.read())
    return "\n".join(parts)


def test_every_cli_subcommand_documented():
    """Adding a `repro` subcommand requires a `repro <name>` doc mention."""
    from repro.bench.docscheck import known_subcommands

    doc = _all_docs()
    missing = [
        sub for sub in sorted(known_subcommands()) if f"repro {sub}" not in doc
    ]
    assert not missing, f"CLI subcommands missing from the docs: {missing}"


def test_docscheck_is_clean():
    """The docs lint (dead links, stale CLI examples) has no findings."""
    from repro.bench.docscheck import run_docscheck

    assert run_docscheck(REPO_ROOT) == []
