"""ParallelExecutor: order preservation and backend equivalence."""

from __future__ import annotations

import os

import pytest

from repro.executor import ParallelExecutor

BACKENDS = ("serial", "thread", "process")


def _double(x: int) -> int:
    return x * 2


def _explode(x: int) -> list[int]:
    return list(range(x % 4))


def _sum_partition(partition: list[int]) -> list[int]:
    return [sum(partition)]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("balanced", (True, False))
class TestBackends:
    def _executor(self, backend, balanced):
        return ParallelExecutor(backend=backend, max_workers=3, balanced=balanced)

    def test_map_preserves_order(self, backend, balanced):
        executor = self._executor(backend, balanced)
        items = list(range(37))
        assert executor.map(_double, items) == [x * 2 for x in items]

    def test_flat_map_preserves_order(self, backend, balanced):
        executor = self._executor(backend, balanced)
        items = list(range(23))
        expected = [y for x in items for y in _explode(x)]
        assert executor.flat_map(_explode, items) == expected

    def test_empty_input(self, backend, balanced):
        executor = self._executor(backend, balanced)
        assert executor.map(_double, []) == []
        assert executor.flat_map(_explode, []) == []
        assert executor.map_partitions(_sum_partition, []) == []

    def test_single_item(self, backend, balanced):
        executor = self._executor(backend, balanced)
        assert executor.map(_double, [21]) == [42]


class TestMapPartitions:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_partition_sums(self, backend):
        executor = ParallelExecutor(backend=backend, max_workers=4)
        result = executor.map_partitions(_sum_partition, list(range(10)))
        assert sum(result) == sum(range(10))

    def test_serial_runs_one_partition(self):
        executor = ParallelExecutor.serial()
        result = executor.map_partitions(_sum_partition, list(range(10)))
        assert result == [45]


class TestConfiguration:
    def test_invalid_backend(self):
        with pytest.raises(ValueError):
            ParallelExecutor(backend="gpu")

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ParallelExecutor(max_workers=0)

    def test_default_workers_positive(self):
        executor = ParallelExecutor(backend="thread")
        assert executor.max_workers >= 1

    def test_serial_constructor(self):
        executor = ParallelExecutor.serial()
        assert executor.backend == "serial"
        assert executor.max_workers == 1

    def test_parallel_equals_serial_results(self):
        items = list(range(100))
        serial = ParallelExecutor.serial().map(_double, items)
        for backend in ("thread", "process"):
            parallel = ParallelExecutor(backend=backend, max_workers=4).map(
                _double, items
            )
            assert parallel == serial

    def test_worker_count_does_not_change_results(self):
        items = list(range(50))
        results = {
            workers: ParallelExecutor(backend="thread", max_workers=workers).flat_map(
                _explode, items
            )
            for workers in (1, 2, 7)
        }
        assert len({tuple(r) for r in results.values()}) == 1
