"""``ParallelExecutor.gather``: fan-out, deadlines, and pool lifecycle."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.errors import DeadlineExceeded
from repro.executor import ParallelExecutor


@pytest.mark.parametrize("backend", ("serial", "thread"))
class TestGather:
    def test_results_preserve_order(self, backend):
        executor = ParallelExecutor(backend=backend, max_workers=3)
        thunks = [lambda i=i: i * 10 for i in range(7)]
        assert executor.gather(thunks) == [0, 10, 20, 30, 40, 50, 60]

    def test_empty_is_empty(self, backend):
        executor = ParallelExecutor(backend=backend, max_workers=2)
        assert executor.gather([]) == []

    def test_thunk_exception_propagates(self, backend):
        executor = ParallelExecutor(backend=backend, max_workers=2)

        def boom():
            raise RuntimeError("shard exploded")

        with pytest.raises(RuntimeError, match="shard exploded"):
            executor.gather([lambda: 1, boom])

    def test_deadline_in_the_past_raises(self, backend):
        executor = ParallelExecutor(backend=backend, max_workers=2)
        with pytest.raises(DeadlineExceeded):
            executor.gather(
                [lambda: time.sleep(0.2) or 1, lambda: 2],
                deadline=time.monotonic() - 1.0,
            )

    def test_generous_deadline_returns_normally(self, backend):
        executor = ParallelExecutor(backend=backend, max_workers=2)
        result = executor.gather(
            [lambda: 1, lambda: 2], deadline=time.monotonic() + 30.0
        )
        assert result == [1, 2]


def test_deadline_cancels_slow_fanout():
    executor = ParallelExecutor(backend="thread", max_workers=2)
    release = threading.Event()
    started = time.monotonic()
    try:
        with pytest.raises(DeadlineExceeded):
            executor.gather(
                [lambda: release.wait(5.0)],
                deadline=time.monotonic() + 0.1,
            )
        # The caller got its answer at the deadline, not after the thunk.
        assert time.monotonic() - started < 3.0
    finally:
        release.set()


class TestPersistentPool:
    def test_pool_is_reused(self):
        with ParallelExecutor(
            backend="thread", max_workers=2, persistent=True
        ) as executor:

            def occupy_worker():
                # Rendezvous so each round provably runs on BOTH workers;
                # instant thunks can land on one worker and make the
                # round-to-round intersection racy.
                barrier.wait(timeout=5.0)
                return threading.current_thread()

            barrier = threading.Barrier(2)
            names_a = set(executor.gather([occupy_worker] * 2))
            barrier.reset()
            names_b = set(executor.gather([occupy_worker] * 2))
            # Same worker threads serve both rounds: the pool persisted.
            assert names_a == names_b and len(names_a) == 2

    def test_close_is_idempotent_and_final(self):
        executor = ParallelExecutor(
            backend="thread", max_workers=2, persistent=True
        )
        assert executor.gather([lambda: 1]) == [1]
        executor.close()
        executor.close()
        with pytest.raises(RuntimeError):
            executor.gather([lambda: 1])

    def test_non_persistent_close_keeps_working(self):
        executor = ParallelExecutor(backend="thread", max_workers=2)
        assert executor.map(lambda x: x + 1, [1, 2]) == [2, 3]

    def test_serial_gather_checks_deadline_between_thunks(self):
        executor = ParallelExecutor(backend="serial")
        calls = []

        def slow():
            calls.append("slow")
            time.sleep(0.15)
            return 1

        def fast():
            calls.append("fast")
            return 2

        with pytest.raises(DeadlineExceeded):
            executor.gather([slow, fast], deadline=time.monotonic() + 0.05)
        assert calls == ["slow"]
