"""Partitioning helpers: coverage, balance, edge cases."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.executor.partition import partition_items, partition_round_robin


class TestContiguous:
    @given(st.lists(st.integers(), max_size=100), st.integers(1, 12))
    def test_concatenation_preserves_order(self, items, parts):
        partitions = partition_items(items, parts)
        flat = [item for partition in partitions for item in partition]
        assert flat == items

    @given(st.lists(st.integers(), min_size=1, max_size=100), st.integers(1, 12))
    def test_sizes_differ_by_at_most_one(self, items, parts):
        partitions = partition_items(items, parts)
        sizes = [len(p) for p in partitions]
        assert max(sizes) - min(sizes) <= 1
        assert all(size > 0 for size in sizes)

    def test_empty_input(self):
        assert partition_items([], 4) == []

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            partition_items([1], 0)


class TestRoundRobin:
    @given(st.lists(st.integers(), max_size=100), st.integers(1, 12))
    def test_covers_all_items(self, items, parts):
        partitions = partition_round_robin(items, parts)
        flat = sorted(
            item for partition in partitions for item in partition
        )
        assert flat == sorted(items)

    def test_deals_in_turn(self):
        partitions = partition_round_robin([0, 1, 2, 3, 4], 2)
        assert partitions == [[0, 2, 4], [1, 3]]

    def test_drops_empty_partitions(self):
        assert partition_round_robin([1], 5) == [[1]]

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            partition_round_robin([1], -1)
