"""CSV log IO tests."""

from __future__ import annotations

import io

import pytest

from repro.core.model import EventLog, Trace
from repro.logs.csv_log import read_csv_log, write_csv_log


class TestRead:
    def test_basic(self):
        csv_text = "trace_id,activity,timestamp\nt1,A,1.0\nt1,B,2.0\nt2,X,5.0\n"
        log = read_csv_log(io.StringIO(csv_text))
        assert log.trace("t1").activities == ["A", "B"]
        assert log.trace("t2").timestamps == [5.0]

    def test_unordered_rows_sorted_per_trace(self):
        csv_text = "trace_id,activity,timestamp\nt,B,2\nt,A,1\n"
        log = read_csv_log(io.StringIO(csv_text))
        assert log.trace("t").activities == ["A", "B"]

    def test_missing_timestamps_use_positions(self):
        csv_text = "trace_id,activity,timestamp\nt,A,\nt,B,\n"
        log = read_csv_log(io.StringIO(csv_text))
        assert log.trace("t").timestamps == [0, 1]

    def test_extra_columns_become_attributes(self):
        csv_text = "trace_id,activity,timestamp,resource\nt,A,1,alice\n"
        log = read_csv_log(io.StringIO(csv_text))
        # attributes live on the parsed events, checked via from_events path
        assert log.trace("t").activities == ["A"]

    def test_custom_column_names(self):
        csv_text = "case,task,when\nt,A,1\n"
        log = read_csv_log(
            io.StringIO(csv_text),
            trace_column="case",
            activity_column="task",
            timestamp_column="when",
        )
        assert log.trace("t").activities == ["A"]

    def test_missing_required_column(self):
        with pytest.raises(ValueError, match="missing required"):
            read_csv_log(io.StringIO("a,b\n1,2\n"))

    def test_empty_file(self):
        log = read_csv_log(io.StringIO(""))
        assert len(log) == 0


class TestRoundtrip:
    def test_memory_roundtrip(self):
        original = EventLog(
            [
                Trace.from_pairs("t1", [("A", 1.0), ("B", 2.5)]),
                Trace.from_pairs("t2", [("C", 0.25)]),
            ]
        )
        buffer = io.StringIO()
        write_csv_log(original, buffer)
        buffer.seek(0)
        restored = read_csv_log(buffer)
        assert restored.trace("t1").pairs_view() == [("A", 1.0), ("B", 2.5)]
        assert restored.trace("t2").pairs_view() == [("C", 0.25)]

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "log.csv")
        original = EventLog([Trace.from_pairs("t", [("A", 1.0)])])
        write_csv_log(original, path)
        assert read_csv_log(path).trace("t").activities == ["A"]

    def test_activities_with_commas_quoted(self):
        original = EventLog([Trace.from_pairs("t", [("check, then pay", 1.0)])])
        buffer = io.StringIO()
        write_csv_log(original, buffer)
        buffer.seek(0)
        restored = read_csv_log(buffer)
        assert restored.trace("t").activities == ["check, then pay"]
