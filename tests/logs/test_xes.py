"""XES parser/writer tests."""

from __future__ import annotations

import io

import pytest

from repro.core.model import EventLog, Trace
from repro.logs.xes import read_xes, write_xes

SAMPLE = b"""<?xml version="1.0" encoding="UTF-8"?>
<log xes.version="1.0">
  <trace>
    <string key="concept:name" value="case_1"/>
    <event>
      <string key="concept:name" value="register"/>
      <date key="time:timestamp" value="2024-01-01T10:00:00+00:00"/>
    </event>
    <event>
      <string key="concept:name" value="approve"/>
      <date key="time:timestamp" value="2024-01-01T11:30:00+00:00"/>
    </event>
  </trace>
  <trace>
    <string key="concept:name" value="case_2"/>
    <event><string key="concept:name" value="register"/></event>
    <event><string key="concept:name" value="reject"/></event>
  </trace>
</log>
"""

NAMESPACED = SAMPLE.replace(
    b'<log xes.version="1.0">',
    b'<log xes.version="1.0" xmlns="http://www.xes-standard.org/">',
)


class TestRead:
    def test_parses_traces_and_events(self):
        log = read_xes(io.BytesIO(SAMPLE))
        assert sorted(log.trace_ids) == ["case_1", "case_2"]
        case1 = log.trace("case_1")
        assert case1.activities == ["register", "approve"]
        assert case1.timestamps[1] - case1.timestamps[0] == pytest.approx(5400.0)

    def test_missing_timestamps_fall_back_to_positions(self):
        log = read_xes(io.BytesIO(SAMPLE))
        assert log.trace("case_2").timestamps == [0, 1]

    def test_namespaced_document(self):
        log = read_xes(io.BytesIO(NAMESPACED))
        assert sorted(log.trace_ids) == ["case_1", "case_2"]

    def test_zulu_timestamps(self):
        doc = SAMPLE.replace(b"+00:00", b"Z")
        log = read_xes(io.BytesIO(doc))
        assert log.trace("case_1").timestamps[0] > 0

    def test_unnamed_trace_gets_synthetic_id(self):
        doc = b"""<log><trace>
            <event><string key="concept:name" value="x"/></event>
        </trace></log>"""
        log = read_xes(io.BytesIO(doc))
        assert log.trace_ids == ["trace_1"]

    def test_equal_timestamps_strictified(self):
        doc = b"""<log><trace>
          <string key="concept:name" value="c"/>
          <event><string key="concept:name" value="a"/>
                 <date key="time:timestamp" value="2024-01-01T10:00:00Z"/></event>
          <event><string key="concept:name" value="b"/>
                 <date key="time:timestamp" value="2024-01-01T10:00:00Z"/></event>
        </trace></log>"""
        log = read_xes(io.BytesIO(doc))
        stamps = log.trace("c").timestamps
        assert stamps[1] > stamps[0]

    def test_events_without_activity_skipped(self):
        doc = b"""<log><trace>
          <string key="concept:name" value="c"/>
          <event><date key="time:timestamp" value="2024-01-01T10:00:00Z"/></event>
          <event><string key="concept:name" value="real"/></event>
        </trace></log>"""
        log = read_xes(io.BytesIO(doc))
        assert log.trace("c").activities == ["real"]


class TestRoundtrip:
    def test_write_then_read(self):
        original = EventLog(
            [
                Trace.from_pairs("alpha", [("a", 10.0), ("b", 20.5)]),
                Trace.from_pairs("beta", [("c", 5.0)]),
            ]
        )
        buffer = io.BytesIO()
        write_xes(original, buffer)
        buffer.seek(0)
        restored = read_xes(buffer)
        assert sorted(restored.trace_ids) == ["alpha", "beta"]
        alpha = restored.trace("alpha")
        assert alpha.activities == ["a", "b"]
        assert alpha.timestamps == pytest.approx([10.0, 20.5])

    def test_file_path_roundtrip(self, tmp_path):
        path = str(tmp_path / "log.xes")
        original = EventLog([Trace.from_pairs("t", [("x", 1.0)])])
        write_xes(original, path)
        restored = read_xes(path)
        assert restored.trace("t").activities == ["x"]

    def test_unicode_activities(self):
        original = EventLog([Trace.from_pairs("t", [("approuvé ✓", 1.0)])])
        buffer = io.BytesIO()
        write_xes(original, buffer)
        buffer.seek(0)
        assert read_xes(buffer).trace("t").activities == ["approuvé ✓"]
