"""Random and process-model log generators."""

from __future__ import annotations

import random

import pytest

from repro.logs.generator import (
    RandomLogConfig,
    activity_alphabet,
    generate_random_log,
    random_patterns,
)
from repro.logs.process_generator import (
    Activity,
    And,
    Loop,
    ProcessModel,
    Sequence,
    Xor,
    generate_process_log,
    random_process_model,
    simulate,
)


class TestRandomLog:
    def test_deterministic(self):
        config = RandomLogConfig(20, 15, 5, seed=9)
        a, b = generate_random_log(config), generate_random_log(config)
        assert [t.activities for t in a] == [t.activities for t in b]

    def test_respects_bounds(self):
        config = RandomLogConfig(
            num_traces=30,
            max_events_per_trace=12,
            min_events_per_trace=4,
            num_activities=6,
            seed=1,
        )
        log = generate_random_log(config)
        assert len(log) == 30
        assert all(4 <= len(trace) <= 12 for trace in log)
        assert len(log.activities()) <= 6

    def test_timestamp_gaps(self):
        config = RandomLogConfig(5, 10, 3, timestamp_gap_max=10, seed=2)
        log = generate_random_log(config)
        for trace in log:
            gaps = [
                b - a for a, b in zip(trace.timestamps, trace.timestamps[1:])
            ]
            assert all(1 <= gap <= 10 for gap in gaps)

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            RandomLogConfig(-1, 5, 3)
        with pytest.raises(ValueError):
            RandomLogConfig(1, 5, 0)
        with pytest.raises(ValueError):
            RandomLogConfig(1, 2, 3, min_events_per_trace=5)
        with pytest.raises(ValueError):
            RandomLogConfig(1, 2, 3, timestamp_gap_max=0)

    def test_alphabet_names_sortable(self):
        names = activity_alphabet(120)
        assert names == sorted(names)
        assert len(set(names)) == 120


class TestRandomPatterns:
    def test_existing_patterns_are_subsequences(self):
        log = generate_random_log(RandomLogConfig(10, 20, 4, seed=3))
        for pattern in random_patterns(log, 3, 20, seed=4):
            assert len(pattern) == 3
            assert any(
                _is_subsequence(pattern, trace.activities) for trace in log
            )

    def test_nonexisting_mode_uses_alphabet(self):
        log = generate_random_log(RandomLogConfig(5, 10, 4, seed=3))
        patterns = random_patterns(log, 5, 10, seed=1, existing=False)
        alphabet = log.activities()
        assert all(set(p) <= alphabet for p in patterns)

    def test_empty_log_rejected(self):
        from repro.core.model import EventLog

        with pytest.raises(ValueError):
            random_patterns(EventLog(), 2, 1)


def _is_subsequence(pattern, activities):
    it = iter(activities)
    return all(any(a == p for a in it) for p in pattern)


class TestBlocks:
    def test_sequence_plays_in_order(self):
        block = Sequence((Activity("a"), Activity("b")))
        assert block.play(random.Random(0)) == ["a", "b"]

    def test_xor_picks_one_child(self):
        block = Xor((Activity("a"), Activity("b")))
        rng = random.Random(0)
        seen = {tuple(block.play(rng)) for _ in range(50)}
        assert seen == {("a",), ("b",)}

    def test_and_interleaves_all_children(self):
        block = And((Sequence((Activity("a1"), Activity("a2"))), Activity("b")))
        rng = random.Random(1)
        for _ in range(30):
            run = block.play(rng)
            assert sorted(run) == ["a1", "a2", "b"]
            assert run.index("a1") < run.index("a2")  # branch order kept

    def test_loop_bounded(self):
        block = Loop(Activity("x"), repeat_probability=1.0, max_iterations=3)
        run = block.play(random.Random(0))
        assert run == ["x", "x", "x"]

    def test_alphabet_collection(self):
        block = Sequence((Activity("a"), Xor((Activity("b"), Activity("c")))))
        assert sorted(block.alphabet()) == ["a", "b", "c"]


class TestProcessModel:
    def test_model_uses_exact_alphabet(self):
        model = random_process_model(25, seed=4)
        assert len(model.activities) == 25
        assert sorted(set(model.root.alphabet())) == sorted(model.activities)

    def test_simulation_within_alphabet(self):
        model = random_process_model(12, seed=5)
        log = simulate(model, 40, seed=6)
        assert log.activities() <= set(model.activities)
        assert len(log) == 40

    def test_deterministic(self):
        a = generate_process_log(15, 10, seed=7)
        b = generate_process_log(15, 10, seed=7)
        assert [t.activities for t in a] == [t.activities for t in b]

    def test_strictly_increasing_timestamps(self):
        log = generate_process_log(10, 8, seed=8)
        for trace in log:
            assert all(
                b > a for a, b in zip(trace.timestamps, trace.timestamps[1:])
            )

    def test_invalid_activity_count(self):
        with pytest.raises(ValueError):
            random_process_model(0)

    def test_start_end_sandwich(self):
        model = random_process_model(10, seed=9)
        rng = random.Random(0)
        for _ in range(10):
            run = model.play(rng)
            assert run[0] == model.activities[0]
            assert run[-1] == model.activities[-1]

    def test_process_model_dataclass(self):
        model = ProcessModel(root=Sequence((Activity("x"), Activity("y"))))
        assert model.activities == ["x", "y"]
