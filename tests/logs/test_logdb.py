"""Log database and periodic indexing pipeline."""

from __future__ import annotations

import pytest

from repro.core.engine import SequenceIndex
from repro.core.model import Event
from repro.core.policies import Policy
from repro.kvstore import LSMStore
from repro.logs.logdb import IndexingPipeline, LogDatabase


@pytest.fixture
def db(tmp_path):
    return LogDatabase(str(tmp_path / "logdb"))


def _events(trace_id, start, activities):
    return [
        Event(trace_id, activity, start + i) for i, activity in enumerate(activities)
    ]


class TestLogDatabase:
    def test_append_and_iterate(self, db):
        assert db.append(_events("t1", 0, "AB")) == 2
        db.append(_events("t2", 0, "C"))
        events = list(db)
        assert [(e.trace_id, e.activity, e.timestamp) for e in events] == [
            ("t1", "A", 0.0),
            ("t1", "B", 1.0),
            ("t2", "C", 0.0),
        ]

    def test_requires_timestamps(self, db):
        with pytest.raises(ValueError):
            db.append([Event("t", "A", None)])

    def test_checkpoint_tracks_unindexed(self, db):
        db.append(_events("t", 0, "AB"))
        assert len(db.unindexed_events()) == 2
        db.mark_indexed()
        assert db.unindexed_events() == []
        db.append(_events("t", 10, "C"))
        unindexed = db.unindexed_events()
        assert [e.activity for e in unindexed] == ["C"]

    def test_checkpoint_survives_reopen(self, db, tmp_path):
        db.append(_events("t", 0, "AB"))
        db.mark_indexed()
        db.append(_events("t", 10, "C"))
        reopened = LogDatabase(str(tmp_path / "logdb"))
        assert [e.activity for e in reopened.unindexed_events()] == ["C"]

    def test_empty_database(self, db):
        assert list(db) == []
        assert db.unindexed_events() == []
        assert db.size_bytes > 0  # header row


class TestPipeline:
    def test_tick_indexes_and_checkpoints(self, db):
        index = SequenceIndex(policy=Policy.STNM)
        pipeline = IndexingPipeline(db, index)
        db.append(_events("t", 0, "AB"))
        stats = pipeline.run_once()
        assert stats.events_indexed == 2
        assert index.detect(["A", "B"])
        assert pipeline.run_once().events_indexed == 0  # nothing new

    def test_incremental_ticks_equal_batch(self, db):
        index = SequenceIndex(policy=Policy.STNM)
        pipeline = IndexingPipeline(db, index)
        db.append(_events("t", 0, "ABC"))
        pipeline.run_once()
        db.append(_events("t", 10, "AB"))
        pipeline.run_once()
        reference = SequenceIndex(policy=Policy.STNM)
        reference.update(list(db))
        for pair in (("A", "B"), ("B", "C"), ("C", "A")):
            assert index.tables.get_index(pair) == reference.tables.get_index(pair)

    def test_crash_replay_is_idempotent(self, db):
        index = SequenceIndex(policy=Policy.STNM)
        pipeline = IndexingPipeline(db, index)
        db.append(_events("t", 0, "AB"))
        pipeline.run_once()
        # Simulate "indexed but checkpoint write lost": reset checkpoint.
        import os

        os.remove(db._checkpoint_path)
        stats = pipeline.run_once()  # replays the same events
        assert stats.events_indexed == 0
        assert index.tables.get_index(("A", "B")) == [("t", 0.0, 1.0)]

    def test_partition_routing(self, db):
        index = SequenceIndex(policy=Policy.STNM)
        pipeline = IndexingPipeline(
            db, index, partition_fn=lambda e: "early" if e.timestamp < 10 else "late"
        )
        db.append(_events("jan", 0, "AB") + _events("feb", 100, "AB"))
        pipeline.run_once()
        early = index.detect(["A", "B"], partition="early")
        late = index.detect(["A", "B"], partition="late")
        assert {m.trace_id for m in early} == {"jan"}
        assert {m.trace_id for m in late} == {"feb"}

    def test_durable_end_to_end(self, db, tmp_path):
        store_dir = str(tmp_path / "ix")
        with SequenceIndex(LSMStore(store_dir)) as index:
            pipeline = IndexingPipeline(db, index)
            db.append(_events("t", 0, "ABAB"))
            pipeline.run_once()
        with SequenceIndex(LSMStore(store_dir)) as index:
            assert index.count(["A", "B"]) == 2
