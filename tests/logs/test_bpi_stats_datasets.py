"""BPI-like generation, dataset profiling, and the dataset registry."""

from __future__ import annotations

import pytest

from repro.logs.bpi import BPI_PROFILES, generate_bpi_like_log, load_bpi_log
from repro.logs.datasets import DATASETS, SYNTHETIC_SPECS, bench_scale, load_dataset
from repro.logs.stats import (
    Distribution,
    format_distributions,
    format_profile_table,
    profile_log,
)


class TestBpiCalibration:
    @pytest.mark.parametrize("name", sorted(BPI_PROFILES))
    def test_trace_counts_and_alphabet(self, name):
        profile = BPI_PROFILES[name]
        log = load_bpi_log(name, scale=0.1)
        assert len(log) == round(profile.num_traces * 0.1)
        assert len(log.activities()) <= profile.num_activities
        shape = profile_log(log)
        assert profile.min_events <= shape.events_per_trace.minimum
        assert shape.events_per_trace.maximum <= profile.max_events

    def test_mean_length_close_to_published(self):
        profile = BPI_PROFILES["bpi_2013"]
        log = generate_bpi_like_log(profile, seed=0, scale=0.5)
        mean = log.num_events / len(log)
        assert abs(mean - profile.mean_events) / profile.mean_events < 0.35

    def test_deterministic(self):
        a = load_bpi_log("bpi_2020", seed=3, scale=0.05)
        b = load_bpi_log("bpi_2020", seed=3, scale=0.05)
        assert [t.activities for t in a] == [t.activities for t in b]

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            load_bpi_log("bpi_1999")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            generate_bpi_like_log(BPI_PROFILES["bpi_2013"], scale=0)


class TestStats:
    def test_distribution_from_values(self):
        dist = Distribution.from_values([1.0, 2.0, 3.0, 4.0])
        assert dist.minimum == 1.0
        assert dist.maximum == 4.0
        assert dist.mean == 2.5

    def test_distribution_empty(self):
        dist = Distribution.from_values([])
        assert dist.mean == 0.0

    def test_profile_counts(self):
        from repro.core.model import EventLog

        log = EventLog.from_dict({"a": "XYZ", "b": "XX"})
        profile = profile_log(log, name="demo")
        assert profile.name == "demo"
        assert profile.num_traces == 2
        assert profile.num_events == 5
        assert profile.num_activities == 3
        assert profile.activities_per_trace.minimum == 1.0
        assert profile.table4_row() == ("demo", 2, 3)

    def test_formatters(self):
        from repro.core.model import EventLog

        profile = profile_log(EventLog.from_dict({"t": "AB"}), name="demo")
        table = format_profile_table([profile])
        assert "demo" in table and "Traces" in table
        dist = format_distributions([profile])
        assert "events/trace" in dist


class TestRegistry:
    def test_all_names_load(self):
        for name in DATASETS:
            log = load_dataset(name, scale=0.01)
            assert len(log) >= 1
            assert log.name == name

    def test_synthetic_specs_match_table4(self):
        assert SYNTHETIC_SPECS["max_100"].num_traces == 100
        assert SYNTHETIC_SPECS["max_100"].num_activities == 150
        assert SYNTHETIC_SPECS["min_10000"].num_traces == 10000
        assert SYNTHETIC_SPECS["min_10000"].num_activities == 15

    def test_scale_controls_trace_count(self):
        small = load_dataset("max_1000", scale=0.05)
        bigger = load_dataset("max_1000", scale=0.1)
        assert len(small) == 50 and len(bigger) == 100

    def test_deterministic_across_calls(self):
        a = load_dataset("med_5000", scale=0.02)
        b = load_dataset("med_5000", scale=0.02)
        assert [t.activities for t in a] == [t.activities for t in b]

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("nope")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            load_dataset("max_100", scale=-1)

    def test_min_datasets_have_short_traces(self):
        min_log = profile_log(load_dataset("min_10000", scale=0.02))
        max_log = profile_log(load_dataset("max_10000", scale=0.02))
        assert min_log.events_per_trace.mean < max_log.events_per_trace.mean

    def test_bench_scale_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale(0.5) == 0.5
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.25")
        assert bench_scale(0.5) == 0.25
        monkeypatch.setenv("REPRO_BENCH_SCALE", "-1")
        with pytest.raises(ValueError):
            bench_scale()
