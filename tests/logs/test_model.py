"""Event / Trace / EventLog model tests (Definition 2.1)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import TraceOrderError
from repro.core.model import Event, EventLog, Trace


class TestEvent:
    def test_equality_and_hash(self):
        a = Event("t", "A", 1)
        b = Event("t", "A", 1)
        assert a == b and hash(a) == hash(b)
        assert a != Event("t", "B", 1)

    def test_attributes_copied(self):
        attrs = {"k": "v"}
        event = Event("t", "A", 1, attrs)
        attrs["k"] = "changed"
        assert event.attributes == {"k": "v"}

    def test_repr(self):
        assert "A" in repr(Event("t", "A", 1))


class TestTrace:
    def test_sorts_by_timestamp(self):
        trace = Trace("t", [Event("t", "B", 2), Event("t", "A", 1)])
        assert trace.activities == ["A", "B"]
        assert trace.timestamps == [1, 2]

    def test_position_timestamps_when_missing(self):
        trace = Trace.from_activities("t", ["X", "Y", "Z"])
        assert trace.timestamps == [0, 1, 2]

    def test_mixed_missing_timestamps_rejected(self):
        with pytest.raises(TraceOrderError):
            Trace("t", [Event("t", "A", 1), Event("t", "B", None)])

    def test_duplicate_timestamps_rejected(self):
        with pytest.raises(TraceOrderError):
            Trace("t", [Event("t", "A", 1), Event("t", "B", 1)])

    def test_wrong_trace_id_rejected(self):
        with pytest.raises(TraceOrderError):
            Trace("t", [Event("other", "A", 1)])

    def test_from_pairs(self):
        trace = Trace.from_pairs("t", [("A", 1), ("B", 5)])
        assert trace.pairs_view() == [("A", 1), ("B", 5)]

    def test_iteration_and_indexing(self):
        trace = Trace.from_pairs("t", [("A", 1), ("B", 2)])
        assert len(trace) == 2
        assert list(trace) == [Event("t", "A", 1), Event("t", "B", 2)]
        assert trace[1] == Event("t", "B", 2)

    def test_alphabet(self):
        trace = Trace.from_activities("t", ["A", "B", "A"])
        assert trace.alphabet() == {"A", "B"}

    def test_empty_trace(self):
        trace = Trace("t")
        assert len(trace) == 0
        assert trace.alphabet() == set()

    def test_equality(self):
        assert Trace.from_activities("t", "AB") == Trace.from_activities("t", "AB")
        assert Trace.from_activities("t", "AB") != Trace.from_activities("u", "AB")

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=30, unique=True))
    def test_any_unique_timestamps_accepted(self, stamps):
        events = [Event("t", "A", ts) for ts in stamps]
        trace = Trace("t", events)
        assert trace.timestamps == sorted(stamps)


class TestEventLog:
    def test_from_events_groups_and_sorts(self):
        events = [
            Event("t2", "X", 1),
            Event("t1", "B", 2),
            Event("t1", "A", 1),
        ]
        log = EventLog.from_events(events)
        assert len(log) == 2
        assert log.trace("t1").activities == ["A", "B"]

    def test_from_dict(self):
        log = EventLog.from_dict({"t": ["A", "B"]})
        assert log.trace("t").timestamps == [0, 1]

    def test_duplicate_trace_rejected(self):
        log = EventLog([Trace.from_activities("t", "A")])
        with pytest.raises(ValueError):
            log.add_trace(Trace.from_activities("t", "B"))
        with pytest.raises(ValueError):
            EventLog([Trace.from_activities("x", "A"), Trace.from_activities("x", "B")])

    def test_aggregates(self):
        log = EventLog.from_dict({"t1": "ABC", "t2": "AB"})
        assert log.num_events == 5
        assert log.activities() == {"A", "B", "C"}
        assert sorted(log.trace_ids) == ["t1", "t2"]
        assert "t1" in log and "t9" not in log

    def test_events_iterator(self):
        log = EventLog.from_dict({"t": "AB"})
        assert [e.activity for e in log.events()] == ["A", "B"]

    def test_repr(self):
        log = EventLog.from_dict({"t": "AB"}, name="demo")
        assert "demo" in repr(log)
