"""FaultSchedule: deterministic derivation, matching and halting."""

from __future__ import annotations

import subprocess
import sys

from repro.faults import (
    CRASH,
    ENOSPC,
    TORN_WRITE,
    Fault,
    FaultSchedule,
)
from repro.faults.schedule import CRASH_KINDS, CORRUPTING_KINDS


class TestFault:
    def test_matches_op_and_path_substring(self):
        fault = Fault(ENOSPC, "write", path_part=".sst")
        assert fault.matches("write", "/db/sst-000001.sst")
        assert not fault.matches("write", "/db/wal.log")
        assert not fault.matches("fsync", "/db/sst-000001.sst")

    def test_path_exclude(self):
        fault = Fault(ENOSPC, "write", path_exclude="MANIFEST")
        assert fault.matches("write", "/db/wal.log")
        assert not fault.matches("write", "/db/MANIFEST.tmp")


class TestTake:
    def test_fires_on_nth_matching_op(self):
        schedule = FaultSchedule([Fault(ENOSPC, "write", nth=3)])
        assert schedule.take("write", "a") is None
        assert schedule.take("fsync", "a") is None  # wrong op: not counted
        assert schedule.take("write", "b") is None
        fault = schedule.take("write", "c")
        assert fault is not None and fault.kind == ENOSPC
        assert fault.fired_at == ("write", "c")
        assert schedule.fired

    def test_one_shot(self):
        schedule = FaultSchedule([Fault(ENOSPC, "write", nth=1)])
        assert schedule.take("write") is not None
        assert schedule.take("write") is None

    def test_crash_kind_halts_schedule(self):
        schedule = FaultSchedule(
            [Fault(CRASH, "fsync", nth=1), Fault(ENOSPC, "write", nth=1)]
        )
        assert schedule.take("fsync") is not None
        assert schedule.halted
        # The simulated process is dead: nothing further fires.
        assert schedule.take("write") is None

    def test_survivable_kind_does_not_halt(self):
        schedule = FaultSchedule(
            [Fault(ENOSPC, "write", nth=1), Fault(CRASH, "fsync", nth=1)]
        )
        assert schedule.take("write") is not None
        assert not schedule.halted
        assert schedule.take("fsync") is not None

    def test_op_counts_are_diagnostic(self):
        schedule = FaultSchedule()
        schedule.take("write")
        schedule.take("write")
        schedule.take("rename")
        assert schedule.op_counts == {"write": 2, "rename": 1}


class TestFromSeed:
    def test_same_seed_same_schedule(self):
        a = FaultSchedule.from_seed(42)._faults[0]
        b = FaultSchedule.from_seed(42)._faults[0]
        assert (a.kind, a.op, a.nth, a.arg) == (b.kind, b.op, b.nth, b.arg)

    def test_seeds_cover_multiple_kinds(self):
        kinds = {FaultSchedule.from_seed(seed)._faults[0].kind for seed in range(64)}
        assert TORN_WRITE in kinds
        assert len(kinds) >= 4

    def test_bit_flips_never_target_the_manifest(self):
        for seed in range(200):
            fault = FaultSchedule.from_seed(seed)._faults[0]
            if fault.kind == "bit_flip":
                assert fault.path_exclude == "MANIFEST"

    def test_derivation_is_stable_across_processes(self):
        # Tuple hashing is PYTHONHASHSEED-randomized; the string seeding
        # used here must not be.  Spawn a fresh interpreter and compare.
        code = (
            "from repro.faults import FaultSchedule\n"
            "f = FaultSchedule.from_seed(7)._faults[0]\n"
            "print(f.kind, f.op, f.nth, f.arg)\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "12345"},
        ).stdout.strip()
        local = FaultSchedule.from_seed(7)._faults[0]
        assert out == f"{local.kind} {local.op} {local.nth} {local.arg}"

    def test_kind_classifications_are_disjoint(self):
        assert not (CRASH_KINDS & CORRUPTING_KINDS)
