"""Crash-recovery harness: fixed tier-1 seeds plus the wide opt-in sweep."""

from __future__ import annotations

import pytest

from repro.faults import (
    CORRUPT,
    CRASH_AFTER_RENAME,
    CRASH_BEFORE_RENAME,
    TORN_WRITE,
    TRUNCATE_CRASH,
    CrashRecoveryFailure,
    Fault,
    FaultSchedule,
    FaultyIO,
    SimulatedCrash,
    run_seed,
)
from repro.faults.harness import (
    _Oracle,
    ABSENT,
    WorkloadOp,
    generate_workload,
    simulate_crash,
)
from repro.kvstore import LSMStore, LeveledConfig

# Fixed seeds exercised on every tier-1 run; chosen to cover each fault
# kind (see test_fixed_seeds_cover_fault_kinds, which pins the mapping).
TIER1_SEEDS = (0, 1, 2, 3, 4, 5, 6, 9, 12, 16, 18, 21, 23, 24, 42, 77, 101, 137, 161, 199)


class TestWorkload:
    def test_deterministic(self):
        a = [repr(op) for op in generate_workload(5)]
        b = [repr(op) for op in generate_workload(5)]
        assert a == b

    def test_mixes_op_kinds(self):
        kinds = {op.kind for op in generate_workload(3, ops=400)}
        assert kinds == {"put", "merge", "delete", "flush", "compact"}


class TestOracle:
    def test_ack_advances_single_branch(self):
        oracle = _Oracle()
        oracle.ack(WorkloadOp("put", "kv", 1, "a"))
        oracle.ack(WorkloadOp("put", "kv", 1, "b"))
        assert oracle.possible[("kv", 1)] == ["b"]

    def test_indeterminate_forks_branches(self):
        oracle = _Oracle()
        oracle.ack(WorkloadOp("put", "kv", 1, "a"))
        oracle.indeterminate(WorkloadOp("delete", "kv", 1))
        assert sorted(oracle.possible[("kv", 1)], key=repr) == sorted(
            ["a", ABSENT], key=repr
        )

    def test_acked_merge_advances_both_branches(self):
        # The case the possible-values design exists for: an indeterminate
        # delta followed by an acked one must allow [d1, d2] and [d2].
        oracle = _Oracle()
        oracle.indeterminate(WorkloadOp("merge", "log", 1, ["d1"]))
        oracle.ack(WorkloadOp("merge", "log", 1, ["d2"]))
        branches = {tuple(v) for v in oracle.possible[("log", 1)]}
        assert branches == {("d1", "d2"), ("d2",)}


class TestFixedSeeds:
    """Small deterministic subset that runs on every tier-1 invocation."""

    @pytest.mark.parametrize("seed", TIER1_SEEDS)
    def test_seed_upholds_durability_contract(self, seed, tmp_path):
        summary = run_seed(seed, path=str(tmp_path / "db"))
        assert summary["fired"], "fault never fired: widen the workload"

    @pytest.mark.parametrize("seed", TIER1_SEEDS[:8])
    def test_seed_upholds_contract_with_compression(self, seed, tmp_path):
        # Same contract with block compression on: injected bit flips now
        # land inside compressed v2 blocks and must still be *detected*
        # (per-block CRC over the stored bytes), never decoded into
        # plausible-looking garbage.
        summary = run_seed(seed, path=str(tmp_path / "db"), compression="zlib")
        assert summary["fired"], "fault never fired: widen the workload"

    @pytest.mark.parametrize("seed", TIER1_SEEDS[:10])
    def test_seed_upholds_contract_leveled(self, seed, tmp_path):
        # Same durability contract with the leveled strategy driving the
        # store: cascading promotions, trivial moves and mid-round manifest
        # rewrites all sit inside the fault window now.
        summary = run_seed(seed, path=str(tmp_path / "db"), compaction="leveled")
        assert summary["fired"], "fault never fired: widen the workload"
        kinds = {
            FaultSchedule.from_seed(seed)._faults[0].kind for seed in TIER1_SEEDS
        }
        assert len(kinds) >= 6  # near-full coverage of the 7 generated kinds

    def test_same_seed_reproduces_identical_summary(self, tmp_path):
        a = run_seed(3, path=str(tmp_path / "a"))
        b = run_seed(3, path=str(tmp_path / "b"))
        assert a == b

    def test_failure_message_embeds_reproducer(self):
        failure = CrashRecoveryFailure(1234, "boom")
        assert "python -m repro faults --seed 1234" in str(failure)
        assert failure.seed == 1234


class TestCompactionFaultPoints:
    """The killed-compaction scenarios, ported from the retired hook."""

    @staticmethod
    def _populated(path: str, io=None) -> LSMStore:
        store = LSMStore(
            path, auto_compact=False, compaction_min_tables=2, io=io
        )
        store.create_table("t", merge_operator="list_append")
        for batch in range(4):
            for i in range(25):
                store.merge("t", i % 5, [batch * 100 + i])
            store.flush()
        return store

    def test_truncate_crash_at_pre_swap_recovers(self, tmp_path):
        path = str(tmp_path / "db")
        schedule = FaultSchedule(
            [Fault(TRUNCATE_CRASH, "point:compaction.pre_swap", nth=1)]
        )
        store = self._populated(path, io=FaultyIO(schedule))
        before = {k: v for k, v in store.scan("t")}
        with pytest.raises(SimulatedCrash):
            store.compact()
        store._wal._file.close()
        for reader in store._sstables:
            reader._file.close()

        # The orphan half-written output is outside the manifest; reopening
        # serves the intact pre-compaction tables.
        reopened = LSMStore(path)
        assert {k: v for k, v in reopened.scan("t")} == before
        reopened.verify()
        reopened.close()

    def test_corrupt_output_at_pre_swap_aborts_swap(self, tmp_path):
        path = str(tmp_path / "db")
        schedule = FaultSchedule(
            [Fault(CORRUPT, "point:compaction.pre_swap", nth=1, arg=0.4)]
        )
        store = self._populated(path, io=FaultyIO(schedule))
        before = {k: v for k, v in store.scan("t")}

        assert store.compact() is False  # pre-swap verify rejects the output
        assert store.metrics.compaction_aborts == 1
        assert store.metrics.compactions == 0
        assert {k: v for k, v in store.scan("t")} == before
        store.verify()
        store.close()


class TestLeveledManifestCrashWindow:
    """Crashes aimed at the MANIFEST rewrite inside a leveled round.

    A leveled promotion commits by rewriting the manifest (tmp write +
    rename) *after* its outputs are verified and *before* its inputs are
    deleted, so a crash anywhere in that window must leave either the old
    layout (inputs intact, outputs orphaned) or the new one (outputs
    live, inputs orphaned) -- both fully readable.
    """

    CFG = LeveledConfig(l0_compact_tables=2, base_level_bytes=4096, fanout=2)

    @classmethod
    def _populated(cls, path: str) -> dict:
        store = LSMStore(
            path,
            auto_compact=False,
            compaction="leveled",
            leveled=cls.CFG,
            memtable_flush_bytes=1024,
        )
        store.create_table("t", merge_operator="list_append")
        for batch in range(4):
            for i in range(25):
                store.merge("t", i % 10, [batch * 100 + i])
            store.flush()
        before = {k: v for k, v in store.scan("t")}
        store.close()
        return before

    def _crash_round(self, tmp_path, fault: Fault) -> tuple[str, dict]:
        path = str(tmp_path / "db")
        before = self._populated(path)
        store = LSMStore(
            path,
            auto_compact=False,
            compaction="leveled",
            leveled=self.CFG,
            io=FaultyIO(FaultSchedule([fault])),
        )
        with pytest.raises(SimulatedCrash):
            while store.compact():
                pass
        simulate_crash(store)
        return path, before

    @pytest.mark.parametrize(
        "fault",
        [
            Fault(CRASH_BEFORE_RENAME, "rename", nth=1, path_part="MANIFEST"),
            Fault(CRASH_AFTER_RENAME, "rename", nth=1, path_part="MANIFEST"),
            Fault(TORN_WRITE, "write", nth=1, path_part="MANIFEST", arg=0.5),
        ],
        ids=["before-rename", "after-rename", "torn-tmp-write"],
    )
    def test_crash_around_manifest_rewrite_recovers(self, tmp_path, fault):
        path, before = self._crash_round(tmp_path, fault)
        reopened = LSMStore(
            path, auto_compact=False, compaction="leveled", leveled=self.CFG
        )
        try:
            assert {k: v for k, v in reopened.scan("t")} == before
            reopened.verify()
            # The survivor layout is sound enough for further rounds.
            while reopened.compact():
                pass
            assert {k: v for k, v in reopened.scan("t")} == before
        finally:
            reopened.close()

    def test_crash_after_rename_orphans_inputs_not_outputs(self, tmp_path):
        fault = Fault(CRASH_AFTER_RENAME, "rename", nth=1, path_part="MANIFEST")
        path, before = self._crash_round(tmp_path, fault)
        # The new manifest is committed: reopening must serve the merged
        # outputs and ignore the not-yet-deleted input tables.
        reopened = LSMStore(
            path, auto_compact=False, compaction="leveled", leveled=self.CFG
        )
        try:
            import json as _json
            import os as _os

            with open(_os.path.join(path, "MANIFEST"), encoding="utf-8") as fh:
                manifest = _json.load(fh)
            listed = {e["file"] for e in manifest["sstables"]}
            on_disk = {
                f for f in _os.listdir(path) if f.endswith(".sst")
            }
            assert listed <= on_disk
            assert {k: v for k, v in reopened.scan("t")} == before
        finally:
            reopened.close()


class TestDirectoryFsyncFaults:
    """The rename-commit directory fsync added to ``SSTableWriter.finish``."""

    def test_crash_at_directory_fsync_recovers(self, tmp_path):
        # Kill the process at the first directory fsync -- i.e. right after
        # the SSTable rename commits.  Acknowledged writes must still be
        # recoverable (from the table if the dentry survived, else from the
        # retained WAL segment).
        path = str(tmp_path / "db")
        schedule = FaultSchedule([Fault("crash", "fsync_dir", nth=1)])
        store = LSMStore(path, io=FaultyIO(schedule))
        store.create_table("t", merge_operator="list_append")
        for i in range(10):
            store.merge("t", i % 3, [i])
        with pytest.raises(SimulatedCrash):
            store.flush()
        store._wal._file.close()
        for reader in store._sstables:
            reader._file.close()

        reopened = LSMStore(path)
        recovered = {k[0]: v for k, v in reopened.scan("t")}
        assert recovered == {0: [0, 3, 6, 9], 1: [1, 4, 7], 2: [2, 5, 8]}
        reopened.verify()
        reopened.close()

    def test_failed_directory_fsync_is_survivable(self, tmp_path):
        # EIO from the directory fsync behaves like a failed file fsync:
        # the flush is unacknowledged and retried, the store stays usable.
        path = str(tmp_path / "db")
        schedule = FaultSchedule([Fault("fail_fsync", "fsync_dir", nth=1)])
        store = LSMStore(path, io=FaultyIO(schedule))
        store.create_table("t", merge_operator="list_append")
        store.merge("t", 1, ["a"])
        with pytest.raises(OSError):
            store.flush()
        store.merge("t", 1, ["b"])
        store.flush()  # retried handoff drains, then the new data flushes
        assert store.get("t", 1) == ["a", "b"]
        store.verify()
        store.close()


@pytest.mark.faults
class TestSeedSweep:
    """Wide sweep (``pytest -m faults``); failures print their reproducer."""

    SWEEP = 200

    def test_seed_sweep(self, tmp_path):
        failures = []
        for seed in range(self.SWEEP):
            try:
                run_seed(seed, path=str(tmp_path / f"seed-{seed}"))
            except CrashRecoveryFailure as exc:
                failures.append(str(exc))
        if failures:
            pytest.fail(
                f"{len(failures)}/{self.SWEEP} seeds violated the durability "
                "contract:\n" + "\n".join(failures)
            )

    def test_seed_sweep_leveled(self, tmp_path):
        # Full sweep under the leveled strategy: every fault kind against
        # cascading promotions, trivial moves and manifest rewrites.
        # Reproduce one seed with:
        #   python -m repro faults --seed N --compaction leveled
        failures = []
        for seed in range(self.SWEEP):
            try:
                run_seed(
                    seed,
                    path=str(tmp_path / f"seed-{seed}"),
                    compaction="leveled",
                )
            except CrashRecoveryFailure as exc:
                failures.append(str(exc))
        if failures:
            pytest.fail(
                f"{len(failures)}/{self.SWEEP} leveled seeds violated the "
                "durability contract:\n" + "\n".join(failures)
            )

    def test_seed_sweep_compressed(self, tmp_path):
        # Full sweep with zlib block compression: every injected bit flip
        # inside a compressed block must be detected, none laundered
        # through compaction under a fresh CRC.
        failures = []
        for seed in range(self.SWEEP):
            try:
                run_seed(
                    seed,
                    path=str(tmp_path / f"seed-{seed}"),
                    compression="zlib",
                )
            except CrashRecoveryFailure as exc:
                failures.append(str(exc))
        if failures:
            pytest.fail(
                f"{len(failures)}/{self.SWEEP} compressed seeds violated the "
                "durability contract:\n" + "\n".join(failures)
            )
