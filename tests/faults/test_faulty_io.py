"""FaultyIO: each fault kind produces exactly its documented effect."""

from __future__ import annotations

import errno
import os

import pytest

from repro.faults import (
    BIT_FLIP,
    CORRUPT,
    CRASH,
    CRASH_AFTER_RENAME,
    CRASH_BEFORE_RENAME,
    ENOSPC,
    FAIL_FSYNC,
    TORN_WRITE,
    TRUNCATE_CRASH,
    Fault,
    FaultSchedule,
    FaultyIO,
    SimulatedCrash,
    faults_injected_total,
)


def _io(*faults: Fault) -> FaultyIO:
    return FaultyIO(FaultSchedule(list(faults)))


class TestWriteFaults:
    def test_torn_write_keeps_prefix_then_crashes(self, tmp_path):
        path = str(tmp_path / "f")
        io = _io(Fault(TORN_WRITE, "write", nth=1, arg=0.5))
        fh = io.open(path, "wb")
        with pytest.raises(SimulatedCrash):
            fh.write(b"0123456789")
        fh._file.close()
        assert os.path.getsize(path) == 5  # exactly the torn prefix

    def test_enospc_writes_nothing_and_is_an_oserror(self, tmp_path):
        path = str(tmp_path / "f")
        io = _io(Fault(ENOSPC, "write", nth=1))
        fh = io.open(path, "wb")
        with pytest.raises(OSError) as exc_info:
            fh.write(b"data")
        assert exc_info.value.errno == errno.ENOSPC
        fh.close()
        assert os.path.getsize(path) == 0

    def test_bit_flip_changes_exactly_one_bit_silently(self, tmp_path):
        path = str(tmp_path / "f")
        io = _io(Fault(BIT_FLIP, "write", nth=1, arg=0.3))
        fh = io.open(path, "wb")
        fh.write(b"\x00" * 16)  # silent: no exception
        fh.close()
        data = open(path, "rb").read()
        assert len(data) == 16
        flipped_bits = sum(bin(byte).count("1") for byte in data)
        assert flipped_bits == 1

    def test_unfaulted_writes_pass_through(self, tmp_path):
        path = str(tmp_path / "f")
        io = _io(Fault(ENOSPC, "write", nth=5))
        fh = io.open(path, "wb")
        fh.write(b"abc")
        fh.close()
        assert open(path, "rb").read() == b"abc"


class TestFsyncFaults:
    def test_fail_fsync_raises_eio(self, tmp_path):
        path = str(tmp_path / "f")
        io = _io(Fault(FAIL_FSYNC, "fsync", nth=1))
        fh = io.open(path, "wb")
        fh.write(b"abc")
        with pytest.raises(OSError) as exc_info:
            io.fsync(fh)
        assert exc_info.value.errno == errno.EIO
        fh.close()

    def test_crash_at_fsync(self, tmp_path):
        path = str(tmp_path / "f")
        io = _io(Fault(CRASH, "fsync", nth=1))
        fh = io.open(path, "wb")
        with pytest.raises(SimulatedCrash):
            io.fsync(fh)
        fh.close()


class TestRenameFaults:
    def test_crash_before_rename_leaves_source(self, tmp_path):
        src, dst = str(tmp_path / "src"), str(tmp_path / "dst")
        open(src, "wb").write(b"x")
        io = _io(Fault(CRASH_BEFORE_RENAME, "rename", nth=1))
        with pytest.raises(SimulatedCrash):
            io.replace(src, dst)
        assert os.path.exists(src) and not os.path.exists(dst)

    def test_crash_after_rename_completes_it(self, tmp_path):
        src, dst = str(tmp_path / "src"), str(tmp_path / "dst")
        open(src, "wb").write(b"x")
        io = _io(Fault(CRASH_AFTER_RENAME, "rename", nth=1))
        with pytest.raises(SimulatedCrash):
            io.replace(src, dst)
        assert os.path.exists(dst) and not os.path.exists(src)


class TestNamedPoints:
    def test_truncate_crash_halves_the_file(self, tmp_path):
        path = str(tmp_path / "f")
        open(path, "wb").write(b"0" * 100)
        io = _io(Fault(TRUNCATE_CRASH, "point:compaction.pre_swap", nth=1))
        with pytest.raises(SimulatedCrash):
            io.fault_point("compaction.pre_swap", path)
        assert os.path.getsize(path) == 50

    def test_corrupt_overwrites_silently(self, tmp_path):
        path = str(tmp_path / "f")
        open(path, "wb").write(b"\x00" * 64)
        io = _io(Fault(CORRUPT, "point:compaction.pre_swap", nth=1, arg=0.5))
        io.fault_point("compaction.pre_swap", path)  # no exception
        data = open(path, "rb").read()
        assert len(data) == 64
        assert b"\xde\xad\xbe\xef" in data

    def test_unscheduled_point_is_a_noop(self, tmp_path):
        path = str(tmp_path / "f")
        open(path, "wb").write(b"x")
        _io().fault_point("compaction.pre_swap", path)
        assert open(path, "rb").read() == b"x"


class TestMetrics:
    def test_injections_bump_the_process_counter(self, tmp_path):
        before = faults_injected_total()
        io = _io(Fault(ENOSPC, "write", nth=1))
        fh = io.open(str(tmp_path / "f"), "wb")
        with pytest.raises(OSError):
            fh.write(b"x")
        fh.close()
        assert faults_injected_total() == before + 1

    def test_registry_exposes_the_counter(self):
        from repro.obs.registry import REGISTRY

        rendered = REGISTRY.render()
        assert "repro_faults_injected_total" in rendered
