"""Ingest crash-replay: fixed tier-1 seeds plus the wide opt-in sweep.

Each seed kills the tailing ingester at a seeded batch boundary
(``pre_apply`` or ``pre_checkpoint``), replays from the durable
checkpoint, and requires the recovered index to be logically identical to
a clean one-shot batch build (``repro.ingest.convergence``).
"""

from __future__ import annotations

import pytest

from repro.faults import run_ingest_replay
from repro.faults.ingest import generate_feed_events

# Fixed seeds exercised on every tier-1 run; chosen to cover both kill
# phases, single and sharded stores, and a named partition (the coverage
# test below pins that mapping so the harness can't drift quiet).
TIER1_SEEDS = (0, 1, 2, 3, 5, 12)


class TestFeedGeneration:
    def test_deterministic(self):
        a = [repr(e) for e in generate_feed_events(7)]
        b = [repr(e) for e in generate_feed_events(7)]
        assert a == b

    def test_per_trace_timestamps_strictly_increase(self):
        last: dict[str, float] = {}
        for event in generate_feed_events(3):
            if event.trace_id in last:
                assert event.timestamp > last[event.trace_id]
            last[event.trace_id] = event.timestamp

    def test_timestamps_are_integral(self):
        # Integer timestamps keep Count-table duration sums exact across
        # batch groupings, which the snapshot comparison relies on.
        assert all(
            e.timestamp == int(e.timestamp) for e in generate_feed_events(11)
        )


class TestFixedSeeds:
    @pytest.mark.parametrize("seed", TIER1_SEEDS)
    def test_replay_converges(self, seed, tmp_path):
        summary = run_ingest_replay(seed, path=str(tmp_path))
        # A pre-checkpoint kill leaves one applied-but-uncheckpointed
        # batch, so the replay must dedup it; a pre-apply kill replays
        # nothing already indexed.
        if summary["phase"] == "pre_checkpoint":
            assert summary["deduped"] > 0
        else:
            assert summary["deduped"] == 0
        assert summary["replayed"] > 0

    def test_fixed_seeds_cover_the_config_space(self, tmp_path):
        summaries = [
            run_ingest_replay(seed, path=str(tmp_path / str(seed)))
            for seed in TIER1_SEEDS
        ]
        assert {s["phase"] for s in summaries} == {
            "pre_apply",
            "pre_checkpoint",
        }
        assert {s["shards"] for s in summaries} == {1, 2}
        assert "" in {s["partition"] for s in summaries}
        assert "audit" in {s["partition"] for s in summaries}


@pytest.mark.faults
class TestSweep:
    @pytest.mark.parametrize("seed", range(60))
    def test_seed_converges(self, seed, tmp_path):
        run_ingest_replay(seed, path=str(tmp_path))
