"""Tracer behaviour: nesting, aggregation, and the disabled fast path."""

from __future__ import annotations

import gc
import sys
import threading

from repro.obs.trace import (
    NULL_TRACER,
    Tracer,
    activate,
    current_tracer,
)


class TestSpanNesting:
    def test_spans_record_in_opening_order(self):
        tracer = Tracer()
        with activate(tracer):
            with tracer.span("outer"):
                with tracer.span("first"):
                    pass
                with tracer.span("second"):
                    with tracer.span("inner"):
                        pass
        assert [s.name for s in tracer.spans] == [
            "outer",
            "first",
            "second",
            "inner",
        ]

    def test_depth_and_parent_links(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("mid") as mid:
                with tracer.span("leaf") as leaf:
                    pass
        assert (outer.depth, mid.depth, leaf.depth) == (0, 1, 2)
        assert outer.parent_index == -1
        assert mid.parent_index == outer.index
        assert leaf.parent_index == mid.index

    def test_children_returns_direct_children_only(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a"):
                with tracer.span("a1"):
                    pass
            with tracer.span("b"):
                pass
        assert [s.name for s in tracer.children(root)] == ["a", "b"]

    def test_sibling_spans_after_nested_block_attach_to_root(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("deep"):
                with tracer.span("deeper"):
                    pass
            with tracer.span("late"):
                pass
        late = tracer.spans[-1]
        assert late.name == "late"
        assert late.parent_index == root.index

    def test_wall_and_cpu_times_non_negative(self):
        tracer = Tracer()
        with tracer.span("timed") as span:
            sum(range(1000))
        assert span.wall_s >= 0
        assert span.cpu_s >= 0

    def test_counters_accumulate(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            span.add("keys", 3)
            span.add("keys", 2)
            span.add("hits")
        assert span.counters == {"keys": 5, "hits": 1}

    def test_tags_from_open_and_tag_call(self):
        tracer = Tracer()
        with tracer.span("s", backend="lsm") as span:
            span.tag(order="left_to_right")
        assert span.tags == {"backend": "lsm", "order": "left_to_right"}


class TestAggregation:
    def test_summary_aggregates_per_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("hot") as span:
                span.add("keys", 2)
        names = {row[0]: row for row in tracer.summary()}
        assert names["hot"][1] == 3  # calls
        assert names["hot"][4] == {"keys": 6}

    def test_max_spans_caps_tree_but_not_aggregates(self):
        tracer = Tracer(max_spans=2)
        for _ in range(5):
            with tracer.span("s"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3
        assert tracer.summary()[0][1] == 5

    def test_format_summary_and_tree_render(self):
        tracer = Tracer()
        with tracer.span("root") as span:
            span.add("n", 7)
            with tracer.span("leaf"):
                pass
        summary = tracer.format_summary()
        assert "root" in summary and "n=7" in summary
        tree = tracer.format_tree()
        assert tree.splitlines()[0].startswith("root")
        assert tree.splitlines()[1].startswith("  leaf")


class TestAmbientTracer:
    def test_default_is_null_tracer(self):
        assert current_tracer() is NULL_TRACER

    def test_activate_installs_and_restores(self):
        tracer = Tracer()
        with activate(tracer):
            assert current_tracer() is tracer
            with current_tracer().span("visible"):
                pass
        assert current_tracer() is NULL_TRACER
        assert [s.name for s in tracer.spans] == ["visible"]

    def test_activation_is_per_thread(self):
        tracer = Tracer()
        seen: list[object] = []

        def probe():
            seen.append(current_tracer())

        with activate(tracer):
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert seen == [NULL_TRACER]


class TestDisabledMode:
    def test_null_span_is_a_shared_singleton(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")

    def test_null_span_operations_are_noops(self):
        span = NULL_TRACER.span("anything")
        with span:
            span.add("keys", 10)
            span.tag(order="x")
        assert span.enabled is False

    def test_disabled_hot_path_does_not_allocate(self):
        """The pattern used on every hot path must not allocate when off.

        ``sys.getallocatedblocks`` counts live allocated blocks.  A pass of
        the measurement harness has a small constant block overhead (the
        loop machinery itself), so the assertion is *scale independence*:
        running the disabled-path pattern 10x more times must not move the
        delta -- i.e. zero net allocations per call.
        """

        def hot_path():
            span = current_tracer().span("lsm.multi_get")
            with span:
                if span.enabled:
                    span.add("keys", 1)

        def measure(iterations: int) -> int:
            gc.collect()
            before = sys.getallocatedblocks()
            for _ in range(iterations):
                hot_path()
            return sys.getallocatedblocks() - before

        assert current_tracer() is NULL_TRACER
        for _ in range(100):  # warm up method/code caches
            hot_path()
        small = min(measure(1_000) for _ in range(3))
        large = min(measure(10_000) for _ in range(3))
        assert large - small <= 2
