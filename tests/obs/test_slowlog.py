"""Slow-query log threshold, ring bound, and engine integration."""

from __future__ import annotations

import logging

import pytest

from repro.core.engine import SequenceIndex
from repro.core.model import Event
from repro.obs.slowlog import SlowQueryLog


def _events(traces: int = 3) -> list[Event]:
    return [
        Event(trace_id=f"t{t}", activity=act, timestamp=float(i))
        for t in range(traces)
        for i, act in enumerate(["a", "b", "c"])
    ]


class TestSlowQueryLog:
    def test_records_only_at_or_above_threshold(self):
        log = SlowQueryLog(threshold_s=0.010)
        assert log.observe("query.detect", "fast", 0.009) is False
        assert log.observe("query.detect", "at", 0.010) is True
        assert log.observe("query.detect", "slow", 0.5) is True
        assert [e.detail for e in log.entries] == ["at", "slow"]
        assert log.stats() == {"observed": 3, "slow": 2, "retained": 2}

    def test_zero_threshold_records_everything(self):
        log = SlowQueryLog(threshold_s=0.0)
        assert log.observe("q", "d", 0.0) is True

    def test_ring_keeps_most_recent(self):
        log = SlowQueryLog(threshold_s=0.0, capacity=2)
        for i in range(5):
            log.observe("q", f"d{i}", 1.0)
        assert [e.detail for e in log.entries] == ["d3", "d4"]
        assert log.stats()["slow"] == 5

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_s=-1.0)
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_s=0.0, capacity=0)

    def test_logs_warning(self, caplog):
        log = SlowQueryLog(threshold_s=0.0)
        with caplog.at_level(logging.WARNING, logger="repro.slowlog"):
            log.observe("query.detect", "pattern=['a']", 0.123)
        assert "slow query" in caplog.text
        assert "123.0ms" in caplog.text

    def test_clear(self):
        log = SlowQueryLog(threshold_s=0.0)
        log.observe("q", "d", 1.0)
        log.clear()
        assert log.entries == []


class TestEngineIntegration:
    def test_threshold_zero_catches_every_query(self):
        with SequenceIndex(slow_query_threshold=0.0) as index:
            index.update(_events())
            index.detect(["a", "b", "c"])
            index.count(["a", "b"])
            entries = index.slow_queries()
        kinds = [e.query for e in entries]
        assert "query.detect" in kinds
        assert "query.count" in kinds

    def test_high_threshold_catches_nothing(self):
        with SequenceIndex(slow_query_threshold=100.0) as index:
            index.update(_events())
            index.detect(["a", "b", "c"])
            assert index.slow_queries() == []

    def test_disabled_by_default(self):
        with SequenceIndex() as index:
            index.update(_events())
            index.detect(["a", "b", "c"])
            assert index.slow_query_log is None
            assert index.slow_queries() == []

    def test_env_var_configures_threshold(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "0")
        with SequenceIndex() as index:
            index.update(_events())
            index.detect(["a", "b", "c"])
            assert index.slow_query_log is not None
            assert len(index.slow_queries()) >= 1

    def test_cache_hits_also_observed(self):
        with SequenceIndex(slow_query_threshold=0.0) as index:
            index.update(_events())
            index.detect(["a", "b", "c"])
            index.detect(["a", "b", "c"])  # query-cache hit
            assert index.slow_query_log.stats()["observed"] >= 2
