"""Metrics registry: registration lifecycle and exposition format."""

from __future__ import annotations

import gc

from repro.kvstore import InMemoryStore, LSMStore
from repro.obs.registry import METRIC_CATALOG, REGISTRY, MetricsRegistry, store_samples


class TestExpositionFormat:
    def test_golden_exposition(self):
        """Pin the exact text format: HELP/TYPE headers, sorted labels."""
        registry = MetricsRegistry()
        registry.register(
            {"store": "/data/ix", "backend": "lsm"},
            lambda: {"repro_store_gets_total": 42, "repro_store_sstables": 3},
        )
        assert registry.render() == (
            "# HELP repro_store_gets_total Point reads served "
            "(each multi_get key counts once).\n"
            "# TYPE repro_store_gets_total counter\n"
            'repro_store_gets_total{backend="lsm",store="/data/ix"} 42\n'
            "# HELP repro_store_sstables Live SSTables on disk.\n"
            "# TYPE repro_store_sstables gauge\n"
            'repro_store_sstables{backend="lsm",store="/data/ix"} 3\n'
        )

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.register(
            {"store": 'a"b\\c\nd'}, lambda: {"repro_store_gets_total": 1}
        )
        assert '{store="a\\"b\\\\c\\nd"}' in registry.render()

    def test_multiple_sources_sorted_by_labels(self):
        registry = MetricsRegistry()
        registry.register({"store": "b"}, lambda: {"repro_store_gets_total": 2})
        registry.register({"store": "a"}, lambda: {"repro_store_gets_total": 1})
        body = registry.render()
        assert body.index('store="a"') < body.index('store="b"')

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""

    def test_float_values_render_compactly(self):
        registry = MetricsRegistry()
        registry.register({}, lambda: {"repro_store_gets_total": 2.0})
        assert "repro_store_gets_total 2\n" in registry.render()


class TestLifecycle:
    def test_unregister_removes_source(self):
        registry = MetricsRegistry()
        handle = registry.register({}, lambda: {"repro_store_gets_total": 1})
        registry.unregister(handle)
        assert registry.render() == ""

    def test_dead_bound_method_pruned(self):
        class Source:
            def collect(self):
                return {"repro_store_gets_total": 1}

        registry = MetricsRegistry()
        source = Source()
        registry.register({}, source.collect)
        assert "repro_store_gets_total" in registry.render()
        del source
        gc.collect()
        assert registry.render() == ""

    def test_raising_collector_dropped(self):
        registry = MetricsRegistry()

        def bad():
            raise RuntimeError("closed")

        registry.register({}, bad)
        registry.register({}, lambda: {"repro_store_gets_total": 1})
        assert "repro_store_gets_total 1" in registry.render()
        assert len(registry.collect()["repro_store_gets_total"]) == 1


class TestStoreIntegration:
    def test_lsm_store_registers_and_unregisters(self, tmp_path):
        path = str(tmp_path / "db")
        with LSMStore(path) as store:
            store.create_table("t")
            store.put("t", "a", 1)
            store.get("t", "a")
            body = REGISTRY.render()
            assert f'store="{path}"' in body
            assert "repro_store_gets_total" in body
        assert f'store="{path}"' not in REGISTRY.render()

    def test_memory_store_registers_and_unregisters(self):
        store = InMemoryStore()
        name = store.obs_name
        try:
            assert f'store="{name}"' in REGISTRY.render()
        finally:
            store.close()
        assert f'store="{name}"' not in REGISTRY.render()

    def test_store_samples_covers_all_counters(self):
        from repro.kvstore.lsm import StoreMetrics

        snapshot = StoreMetrics().snapshot()
        samples = store_samples(
            snapshot,
            sstables=1,
            tables=2,
            cache_stats={"entries": 1, "weight": 10, "evictions": 0},
        )
        for name in samples:
            assert name in METRIC_CATALOG, f"{name} missing from METRIC_CATALOG"

    def test_engine_samples_catalogued(self):
        from repro.core.engine import SequenceIndex

        index = SequenceIndex(slow_query_threshold=10.0)
        try:
            for name in index._collect_obs_metrics():
                assert name in METRIC_CATALOG, f"{name} missing from METRIC_CATALOG"
        finally:
            index.close()
