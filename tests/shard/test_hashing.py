"""The shard hash must be stable across processes and interpreter runs.

A salted ``hash()`` would route a trace to a different shard every process
restart, silently splitting one trace's pairs across shards and breaking
the disjointness invariant every merge step relies on.  These tests pin
the function to CRC-32 over UTF-8 bytes with known values, and prove
process independence by recomputing the placements in subprocesses started
with *different* ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import json
import subprocess
import sys
import zlib
from pathlib import Path

import pytest

from repro.shard import HASH_NAME, shard_for_trace

_REPO_ROOT = Path(__file__).resolve().parents[2]

_IDS = [
    "",
    "t1",
    "trace-1",
    "trace_9999",
    "Ümlaut-träce",
    "трасса",
    "a" * 300,
    "case-2021-02-17/child[3]",
]


def test_hash_name_is_crc32():
    assert HASH_NAME == "crc32"


def test_matches_crc32_of_utf8_bytes():
    for trace_id in _IDS:
        for shards in (1, 2, 3, 4, 7, 16):
            expected = zlib.crc32(trace_id.encode("utf-8")) % shards
            assert shard_for_trace(trace_id, shards) == expected


def test_known_values_pinned():
    # Frozen constants: a change here is a resharding event, not a refactor.
    assert shard_for_trace("t1", 4) == zlib.crc32(b"t1") % 4
    assert zlib.crc32(b"t1") == 0x5B54AE37
    assert shard_for_trace("trace-1", 4) == 2
    assert shard_for_trace("trace-2", 4) == 0


def test_single_shard_takes_everything():
    assert all(shard_for_trace(tid, 1) == 0 for tid in _IDS)


def test_distribution_covers_all_shards():
    ids = [f"trace-{i}" for i in range(512)]
    placements = {shard_for_trace(tid, 4) for tid in ids}
    assert placements == {0, 1, 2, 3}


@pytest.mark.parametrize("hashseed", ["1", "2", "random"])
def test_stable_across_interpreter_runs(hashseed):
    """Fresh interpreters with different string-hash salts agree exactly."""
    script = (
        "import json, sys\n"
        "from repro.shard import shard_for_trace\n"
        "ids = json.loads(sys.stdin.read())\n"
        "print(json.dumps([shard_for_trace(t, 5) for t in ids]))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        input=json.dumps(_IDS),
        capture_output=True,
        text=True,
        check=True,
        env={
            "PYTHONPATH": str(_REPO_ROOT / "src"),
            "PYTHONHASHSEED": hashseed,
        },
        cwd=str(_REPO_ROOT),
    )
    remote = json.loads(out.stdout)
    assert remote == [shard_for_trace(tid, 5) for tid in _IDS]


def test_never_uses_builtin_hash():
    """``hash()`` placements diverge across salted runs; ours must not.

    If someone swaps crc32 for ``hash()``, the subprocess test above fails;
    this companion documents *why* by showing builtin hashes genuinely
    differ between two salted interpreters.
    """
    script = "print(hash('trace-1'))"
    runs = {
        subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONHASHSEED": seed},
        ).stdout.strip()
        for seed in ("1", "2")
    }
    assert len(runs) == 2
