"""The SHARDS.json manifest: creation, detection, and reopen safety.

The manifest is what makes a sharded store self-describing -- reopening
with a different shard count would route traces to the wrong shard, so
the mismatch must be refused, and on-disk round trips must preserve the
full query surface.
"""

from __future__ import annotations

import json

import pytest

from repro.core.model import EventLog
from repro.kvstore import LSMStore
from repro.shard import (
    MANIFEST_NAME,
    ShardedSequenceIndex,
    is_sharded_store,
    read_manifest,
    shard_paths,
    write_manifest,
)


def _open(root, num_shards=None):
    return ShardedSequenceIndex.open(
        root, lambda path: LSMStore(path), num_shards=num_shards
    )


def test_write_read_roundtrip(tmp_path):
    root = tmp_path / "sx"
    write_manifest(root, 4)
    assert is_sharded_store(root)
    manifest = read_manifest(root)
    assert manifest["num_shards"] == 4
    assert manifest["hash"] == "crc32"


def test_plain_directory_is_not_sharded(tmp_path):
    assert not is_sharded_store(tmp_path)
    with LSMStore(str(tmp_path / "ix")) as store:
        store.create_table("seq")
        store.put("seq", "k", {"v": 1})
    assert not is_sharded_store(tmp_path / "ix")


def test_shard_paths_are_stable(tmp_path):
    paths = shard_paths(tmp_path, 3)
    assert [p.name for p in paths] == ["shard-00", "shard-01", "shard-02"]


def test_open_persists_and_reopens(tmp_path):
    root = tmp_path / "sx"
    log = EventLog.from_dict(
        {"t1": list("ABAB"), "t2": list("BAC"), "t3": list("AB")}
    )
    with _open(root, num_shards=3) as index:
        index.update(log)
        expected = [
            (m.trace_id, m.timestamps) for m in index.detect(["A", "B"])
        ]
        assert expected
    # Reopen without a shard count: the manifest supplies it.
    with _open(root) as index:
        assert index.num_shards == 3
        got = [(m.trace_id, m.timestamps) for m in index.detect(["A", "B"])]
        assert got == expected


def test_reopen_with_wrong_count_is_refused(tmp_path):
    root = tmp_path / "sx"
    with _open(root, num_shards=2):
        pass
    with pytest.raises(ValueError, match="resharding"):
        _open(root, num_shards=4)


def test_new_store_requires_count(tmp_path):
    with pytest.raises(ValueError, match="num_shards"):
        _open(tmp_path / "fresh")


def test_corrupt_manifest_is_refused(tmp_path):
    root = tmp_path / "sx"
    write_manifest(root, 2)
    manifest_path = root / MANIFEST_NAME
    payload = json.loads(manifest_path.read_text())
    payload["hash"] = "md5"
    manifest_path.write_text(json.dumps(payload))
    with pytest.raises(ValueError):
        read_manifest(root)
