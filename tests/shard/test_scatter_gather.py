"""Scatter-gather correctness: the sharded index is byte-identical to the
single-store engine.

Because traces are disjoint across shards (one trace's pairs always
colocate), every merged result must equal what one engine over the union
of the data returns -- same matches, same order, same counts.  The tests
drive both engines over the golden corpus, over 25 fixed difftest seeds,
and under concurrent writers, asserting equality on every query surface
(``detect``/``count``/``contains``/composite/``statistics``/introspection).
"""

from __future__ import annotations

import json
import random
import threading
from pathlib import Path

import pytest

from repro.core.engine import SequenceIndex
from repro.core.model import Event, EventLog, Trace
from repro.core.policies import Policy
from repro.difftest import random_log, random_pattern
from repro.logs.csv_log import read_csv_log
from repro.shard import ShardedSequenceIndex

DATA = Path(__file__).resolve().parents[1] / "data"
CORPUS = json.loads((DATA / "pattern_corpus.json").read_text())


def _matches(engine, pattern, **kwargs):
    return [
        (m.trace_id, m.timestamps) for m in engine.detect(pattern, **kwargs)
    ]


def _make_pair(num_shards, policy=Policy.STNM):
    single = SequenceIndex(policy=policy)
    sharded = ShardedSequenceIndex(
        [SequenceIndex(policy=policy) for _ in range(num_shards)]
    )
    return single, sharded


@pytest.fixture(params=[1, 2, 4])
def engines(request):
    single, sharded = _make_pair(request.param)
    yield single, sharded
    single.close()
    sharded.close()


@pytest.fixture
def golden_engines(engines):
    single, sharded = engines
    log = read_csv_log(str(DATA / "golden_log.csv"))
    single.update(log)
    sharded.update(log)
    return single, sharded


class TestGoldenCorpus:
    def test_composite_cases_identical_and_correct(self, golden_engines):
        single, sharded = golden_engines
        for case in CORPUS["cases"]:
            pattern = case["pattern"]
            expected = {
                (trace_id, tuple(stamps))
                for trace_id, spans in case["expected"].items()
                for stamps in spans
            }
            got_single = _matches(single, pattern)
            got_sharded = _matches(sharded, pattern)
            assert got_sharded == got_single, pattern
            assert set(got_sharded) == expected, pattern
            assert sharded.count(pattern) == single.count(pattern)
            assert sharded.contains(pattern) == single.contains(pattern)

    def test_plain_queries_identical(self, golden_engines):
        single, sharded = golden_engines
        cases = [
            (["A", "B"], {}),
            (["A", "B", "C"], {}),
            (["A"], {}),
            (["A", "B"], {"within": 3.0}),
            (["A", "B"], {"max_matches": 2}),
            (["A", "A", "B"], {"policy": Policy.STAM}),
            (["A", "A", "B"], {"policy": Policy.STAM, "within": 4.0}),
            (["Z", "B"], {}),  # unknown activity: empty everywhere
        ]
        for pattern, kwargs in cases:
            assert _matches(sharded, pattern, **kwargs) == _matches(
                single, pattern, **kwargs
            ), (pattern, kwargs)
        assert sharded.count(["A", "B"]) == single.count(["A", "B"])
        assert sharded.count(["A", "B"], within=3.0) == single.count(
            ["A", "B"], within=3.0
        )
        assert sharded.contains(["A", "B"]) == single.contains(["A", "B"])

    def test_statistics_and_introspection_identical(self, golden_engines):
        single, sharded = golden_engines
        ours, theirs = sharded.statistics(["A", "B", "C"]), single.statistics(
            ["A", "B", "C"]
        )
        assert ours.pairs == theirs.pairs
        assert ours.max_completions == theirs.max_completions
        assert sharded.trace_ids() == single.trace_ids()
        assert sharded.activities() == single.activities()
        assert sharded.top_pairs(5) == single.top_pairs(5)
        for trace_id in single.trace_ids():
            assert sharded.get_trace(trace_id) == single.get_trace(trace_id)


def _to_event_log(case_log):
    return EventLog(
        Trace(tid, (Event(tid, act, ts) for act, ts in events))
        for tid, events in case_log.items()
    )


@pytest.mark.parametrize("seed", range(25))
def test_difftest_seeds_identical(seed):
    """The differential harness's generators, sharded vs single-store."""
    rng = random.Random(seed)
    log = _to_event_log(random_log(rng))
    pattern = random_pattern(rng)
    single, sharded = _make_pair(3)
    try:
        single.update(log)
        sharded.update(log)
        assert _matches(sharded, pattern) == _matches(single, pattern)
        assert sharded.count(pattern) == single.count(pattern)
        assert sharded.contains(pattern) == single.contains(pattern)
        # A plain pattern over the same alphabet exercises the chain join.
        plain = ["A", "B"]
        assert _matches(sharded, plain) == _matches(single, plain)
    finally:
        single.close()
        sharded.close()


@pytest.mark.parametrize("seed", range(5))
def test_identical_under_concurrent_writers(seed):
    """Concurrent ``update()`` batches land exactly like serial ones.

    Four writer threads race disjoint batches into the sharded index while
    a reader hammers queries (results may be any prefix state -- only
    crash-freedom is asserted mid-flight).  After the writers join, every
    query surface must equal a single-store engine that applied the same
    batches serially.
    """
    rng = random.Random(1000 + seed)
    batches = []
    for b in range(8):
        events = []
        for tid in range(rng.randint(1, 6)):
            trace_id = f"b{b}-t{tid}"
            ts = 0.0
            for _ in range(rng.randint(1, 10)):
                events.append(Event(trace_id, rng.choice("ABCD"), ts))
                ts += rng.randint(1, 4)
        batches.append(events)

    single, sharded = _make_pair(4)
    try:
        for batch in batches:
            single.update(batch)

        errors = []
        done = threading.Event()

        def write(worker):
            try:
                for batch in batches[worker::4]:
                    sharded.update(batch)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def read():
            while not done.is_set():
                try:
                    sharded.detect(["A", "B"])
                    sharded.count(["B", "C"])
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)
                    return

        writers = [
            threading.Thread(target=write, args=(i,)) for i in range(4)
        ]
        reader = threading.Thread(target=read)
        reader.start()
        for thread in writers:
            thread.start()
        for thread in writers:
            thread.join()
        done.set()
        reader.join()
        assert not errors

        assert _matches(sharded, ["A", "B"]) == _matches(single, ["A", "B"])
        assert _matches(sharded, "SEQ(A, (B|C)) WITHIN 6") == _matches(
            single, "SEQ(A, (B|C)) WITHIN 6"
        )
        assert sharded.count(["A", "B", "C"]) == single.count(["A", "B", "C"])
        assert sharded.contains(["A", "B"]) == single.contains(["A", "B"])
        assert sharded.trace_ids() == single.trace_ids()
    finally:
        single.close()
        sharded.close()


class TestCoordinator:
    def test_incremental_updates_keep_equivalence(self):
        single, sharded = _make_pair(3)
        try:
            first = EventLog.from_dict({"t1": list("ABAB"), "t2": list("BA")})
            second = EventLog(
                [
                    Trace.from_pairs("t1", [("A", 10.0), ("B", 11.0)]),
                    Trace.from_pairs("t3", [("A", 0.0), ("A", 1.0), ("B", 2.0)]),
                ]
            )
            for engine in (single, sharded):
                engine.update(first)
            assert _matches(sharded, ["A", "B"]) == _matches(single, ["A", "B"])
            for engine in (single, sharded):
                engine.update(second)
            assert _matches(sharded, ["A", "B"]) == _matches(single, ["A", "B"])
            assert sharded.count(["A", "B"]) == single.count(["A", "B"])
        finally:
            single.close()
            sharded.close()

    def test_query_cache_invalidates_per_shard(self):
        single, sharded = _make_pair(2)
        try:
            log = EventLog.from_dict({"t1": list("AB"), "t2": list("AB")})
            single.update(log)
            sharded.update(log)
            before = _matches(sharded, ["A", "B"])
            assert before == _matches(single, ["A", "B"])
            extra = EventLog(
                [Trace.from_pairs("t1", [("A", 10.0), ("B", 11.0)])]
            )
            single.update(extra)
            sharded.update(extra)
            assert _matches(sharded, ["A", "B"]) == _matches(single, ["A", "B"])
            assert _matches(sharded, ["A", "B"]) != before
        finally:
            single.close()
            sharded.close()

    def test_continuations_unsupported(self):
        single, sharded = _make_pair(2)
        try:
            with pytest.raises(NotImplementedError):
                sharded.continuations(["A", "B"])
            with pytest.raises(NotImplementedError):
                sharded.detect_with_prefixes(["A", "B"])
        finally:
            single.close()
            sharded.close()

    def test_storage_stats_aggregates(self):
        single, sharded = _make_pair(3)
        try:
            sharded.update(EventLog.from_dict({"t1": list("AB")}))
            stats = sharded.storage_stats()
            assert stats["num_shards"] == 3
            assert len(stats["shards"]) == 3
            assert set(stats["totals"]) >= {
                "sstables",
                "records",
                "data_bytes",
                "raw_data_bytes",
                "file_bytes",
                "compression_ratio",
            }
        finally:
            single.close()
            sharded.close()
