"""End-to-end integration: all systems over a generated process log."""

from __future__ import annotations

import pytest

from repro.baselines import ElasticIndex, SaseEngine, SuffixArrayMatcher
from repro.core.engine import SequenceIndex
from repro.core.policies import Policy
from repro.executor import ParallelExecutor
from repro.kvstore import LSMStore
from repro.logs.generator import random_patterns
from repro.logs.process_generator import generate_process_log


@pytest.fixture(scope="module")
def process_log():
    return generate_process_log(num_traces=120, num_activities=15, seed=42)


@pytest.fixture(scope="module")
def stnm_index(process_log):
    index = SequenceIndex(policy=Policy.STNM)
    index.update(process_log)
    return index


@pytest.fixture(scope="module")
def sc_index(process_log):
    index = SequenceIndex(policy=Policy.SC)
    index.update(process_log)
    return index


class TestCrossSystemAgreement:
    def test_sc_trace_sets_match_suffix_and_sase(self, process_log, sc_index):
        matcher = SuffixArrayMatcher(process_log)
        sase = SaseEngine(process_log)
        for pattern in random_patterns(process_log, 2, 15, seed=1):
            ours = set(sc_index.contains(pattern))
            suffix = set(matcher.contains(pattern))
            cep = set(sase.contains(pattern, strategy=Policy.SC))
            assert ours == suffix == cep, pattern

    def test_sc_match_positions_match_suffix(self, process_log, sc_index):
        matcher = SuffixArrayMatcher(process_log)
        for pattern in random_patterns(process_log, 3, 10, seed=2):
            ours = sorted(
                (m.trace_id, m.timestamps) for m in sc_index.detect(pattern)
            )
            suffix = sorted(
                (m.trace_id, m.timestamps) for m in matcher.detect(pattern)
            )
            assert ours == suffix, pattern

    def test_length2_stnm_everyone_agrees(self, process_log, stnm_index):
        elastic = ElasticIndex.from_log(process_log)
        sase = SaseEngine(process_log)
        for pattern in random_patterns(process_log, 2, 15, seed=3):
            ours = sorted(
                (m.trace_id, m.timestamps) for m in stnm_index.detect(pattern)
            )
            spans = sorted(
                (m.trace_id, m.timestamps) for m in elastic.span_search(pattern)
            )
            cep = sorted((m.trace_id, m.timestamps) for m in sase.query(pattern))
            assert ours == spans == cep, pattern

    def test_long_stnm_ours_within_elastic_trace_sets(self, process_log, stnm_index):
        """Our chained detections only fire in traces the span query finds."""
        elastic = ElasticIndex.from_log(process_log)
        for pattern in random_patterns(process_log, 4, 10, seed=4):
            ours = set(stnm_index.contains(pattern))
            spans = {m.trace_id for m in elastic.span_search(pattern)}
            assert ours <= spans, pattern

    def test_stam_superset_of_stnm_chaining(self, process_log, stnm_index):
        for pattern in random_patterns(process_log, 3, 10, seed=5):
            chained = set(stnm_index.contains(pattern))
            stam = {
                m.trace_id
                for m in stnm_index.detect(
                    pattern, policy=Policy.STAM, max_matches=50_000
                )
            }
            assert chained <= stam, pattern


class TestDurableEndToEnd:
    def test_lsm_backed_index_full_cycle(self, tmp_path, process_log):
        path = str(tmp_path / "ix")
        executor = ParallelExecutor(backend="thread", max_workers=4)
        patterns = random_patterns(process_log, 3, 5, seed=6)
        with SequenceIndex(
            LSMStore(path, memtable_flush_bytes=64 * 1024), executor=executor
        ) as index:
            index.update(process_log)
            expected = {tuple(p): index.detect(p) for p in patterns}
            stats = index.statistics(patterns[0])
            continuations = index.continuations(patterns[0][:2], mode="hybrid", top_k=3)
        with SequenceIndex(LSMStore(path)) as index:
            for pattern in patterns:
                assert index.detect(pattern) == expected[tuple(pattern)]
            assert index.statistics(patterns[0]).pairs == stats.pairs
            assert (
                index.continuations(patterns[0][:2], mode="hybrid", top_k=3)
                == continuations
            )

    def test_memory_and_lsm_backends_agree(self, tmp_path, process_log):
        memory_index = SequenceIndex(policy=Policy.STNM)
        memory_index.update(process_log)
        with SequenceIndex(LSMStore(str(tmp_path / "ix2"))) as durable_index:
            durable_index.update(process_log)
            for pattern in random_patterns(process_log, 3, 10, seed=7):
                assert durable_index.detect(pattern) == memory_index.detect(pattern)
