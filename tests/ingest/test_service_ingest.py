"""Remote ingest: the ServiceSink path and server-side replay dedup."""

from __future__ import annotations

import pytest

from repro.core.engine import SequenceIndex
from repro.core.policies import Policy
from repro.ingest import EngineSink, FeedWriter, ServiceSink, TailIngester
from repro.service import SequenceService, ServiceClient
from repro.shard import ShardedSequenceIndex

from tests.ingest.test_ingester import _ab_events


@pytest.fixture(params=[1, 2], ids=["single", "sharded"])
def service(request):
    if request.param == 1:
        engine = SequenceIndex(policy=Policy.STNM)
    else:
        engine = ShardedSequenceIndex(
            [SequenceIndex(policy=Policy.STNM) for _ in range(2)]
        )
    svc = SequenceService(engine, port=0)
    svc.start()
    yield svc
    svc.shutdown()
    engine.close()


def _feed(tmp_path, events):
    path = str(tmp_path / "feed.jsonl")
    with FeedWriter(path) as writer:
        writer.append(events)
    return path


class TestServiceSink:
    def test_remote_ingest_is_queryable(self, service, tmp_path):
        host, port = service.address
        feed = _feed(
            tmp_path, _ab_events(6) + _ab_events(4, trace="t2")
        )
        with ServiceClient(host, port) as client:
            with TailIngester(
                feed,
                ServiceSink(client),
                str(tmp_path / "cp"),
                batch_events=4,
            ) as ingester:
                stats = ingester.drain()
            assert stats.events_applied == 10
            assert stats.events_deduped == 0
            assert len(client.detect(["A", "B"])) == 5

    def test_server_side_dedup_makes_replay_idempotent(self, service, tmp_path):
        # A fresh checkpoint replays the whole feed over the wire; the
        # server's indexed-tail filter (dedup=True) drops every event, so
        # the convergence guarantee survives the network hop.
        host, port = service.address
        feed = _feed(tmp_path, _ab_events(8))
        with ServiceClient(host, port) as client:
            with TailIngester(
                feed, ServiceSink(client), str(tmp_path / "cp1")
            ) as ingester:
                ingester.drain()
            before = len(client.detect(["A", "B"]))
            with TailIngester(
                feed, ServiceSink(client), str(tmp_path / "cp2")
            ) as replayer:
                stats = replayer.drain()
            assert stats.events_applied == 0
            assert stats.events_deduped == 8
            assert len(client.detect(["A", "B"])) == before

    def test_dedup_flag_counts_in_the_response(self, service, tmp_path):
        host, port = service.address
        with ServiceClient(host, port) as client:
            batch = [("t9", "A", 1.0), ("t9", "B", 2.0)]
            first = client.ingest(batch, dedup=True)
            again = client.ingest(batch, dedup=True)
        assert first["events_indexed"] == 2
        assert again["events_indexed"] == 0
        assert again["events_deduped"] == 2


class TestLocalRemoteEquivalence:
    def test_same_feed_same_matches(self, tmp_path):
        events = _ab_events(10) + _ab_events(6, trace="t2")
        feed = _feed(tmp_path, sorted(events, key=lambda e: e.timestamp))
        with SequenceIndex(policy=Policy.STNM) as local:
            with TailIngester(
                feed, EngineSink(local), str(tmp_path / "cp-local")
            ) as ingester:
                ingester.drain()
            expected = len(local.detect(["A", "B"]))

        engine = SequenceIndex(policy=Policy.STNM)
        svc = SequenceService(engine, port=0)
        svc.start()
        try:
            host, port = svc.address
            with ServiceClient(host, port) as client:
                with TailIngester(
                    feed, ServiceSink(client), str(tmp_path / "cp-remote")
                ) as ingester:
                    ingester.drain()
                assert len(client.detect(["A", "B"])) == expected
        finally:
            svc.shutdown()
            engine.close()
