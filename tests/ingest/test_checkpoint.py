"""Checkpoint durability: defaults, round trips, atomic replace, versioning."""

from __future__ import annotations

import json
import os

import pytest

from repro.ingest import Checkpoint, load_checkpoint, store_checkpoint


def test_missing_file_means_start_of_feed(tmp_path):
    assert load_checkpoint(str(tmp_path / "absent")) == Checkpoint()


def test_round_trip(tmp_path):
    path = str(tmp_path / "cp")
    checkpoint = Checkpoint(offset=1234, batches=7, events=301)
    store_checkpoint(path, checkpoint)
    assert load_checkpoint(path) == checkpoint


def test_overwrite_leaves_no_temp_file(tmp_path):
    path = str(tmp_path / "cp")
    store_checkpoint(path, Checkpoint(offset=1))
    store_checkpoint(path, Checkpoint(offset=2))
    assert load_checkpoint(path).offset == 2
    assert os.listdir(tmp_path) == ["cp"]


def test_unknown_version_is_refused(tmp_path):
    path = str(tmp_path / "cp")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"version": 99, "offset": 10}, fh)
    with pytest.raises(ValueError, match="unsupported"):
        load_checkpoint(path)
