"""The micro-batch tail loop: dedup, live visibility, metrics, convergence."""

from __future__ import annotations

import os
import time

import pytest

from repro.core.engine import SequenceIndex
from repro.core.model import Event
from repro.core.policies import Policy
from repro.ingest import (
    EngineSink,
    FeedEvent,
    FeedWriter,
    TailIngester,
    drop_indexed,
    index_snapshot,
    load_checkpoint,
)
from repro.kvstore import LSMStore
from repro.obs.registry import REGISTRY
from repro.shard import ShardedSequenceIndex


def _ab_events(n, trace="t1"):
    """n alternating A/B events on one trace: n // 2 completions of (A, B)."""
    return [
        Event(trace, "AB"[i % 2], float(i + 1)) for i in range(n)
    ]


def _write_feed(path, events, stamp=True):
    with FeedWriter(path) as writer:
        writer.append(events, stamp=stamp)


class TestDropIndexed:
    def test_unknown_traces_pass_through(self):
        fresh, dropped = drop_indexed(_ab_events(4), lambda trace: None)
        assert len(fresh) == 4 and dropped == 0

    def test_at_or_before_tail_is_dropped(self):
        events = _ab_events(4)  # timestamps 1..4
        fresh, dropped = drop_indexed(events, lambda trace: 2.0)
        assert [e.timestamp for e in fresh] == [3.0, 4.0]
        assert dropped == 2

    def test_tail_advances_within_the_batch(self):
        # Two events with equal timestamps on one trace: the first advances
        # the in-memory tail, so the second is dropped as a duplicate.
        events = [Event("t1", "A", 5.0), Event("t1", "A", 5.0)]
        fresh, dropped = drop_indexed(events, lambda trace: None)
        assert len(fresh) == 1 and dropped == 1

    def test_tail_read_once_per_trace(self):
        calls = []

        def tail_of(trace):
            calls.append(trace)
            return None

        drop_indexed(_ab_events(6) + _ab_events(6, trace="t2"), tail_of)
        assert sorted(calls) == ["t1", "t2"]


def _ab_feed_events(n, trace="t1"):
    return [
        FeedEvent(trace, "AB"[i % 2], float(i + 1)) for i in range(n)
    ]


class TestEngineSink:
    def test_replayed_batch_is_a_no_op(self):
        with SequenceIndex(policy=Policy.STNM) as engine:
            sink = EngineSink(engine)
            events = _ab_feed_events(6)
            assert sink.apply(events) == (6, 0)
            before = len(engine.detect(["A", "B"]))
            assert sink.apply(events) == (0, 6)  # full replay: all deduped
            assert len(engine.detect(["A", "B"])) == before

    def test_straddling_batch_keeps_its_fresh_suffix(self):
        with SequenceIndex(policy=Policy.STNM) as engine:
            sink = EngineSink(engine)
            events = _ab_feed_events(8)
            sink.apply(events[:4])
            assert sink.apply(events) == (4, 4)
            assert len(engine.detect(["A", "B"])) == 4


class TestTailIngester:
    def test_drain_indexes_the_feed(self, tmp_path):
        feed = str(tmp_path / "feed.jsonl")
        checkpoint = str(tmp_path / "cp")
        _write_feed(feed, _ab_events(10))
        with SequenceIndex(LSMStore(str(tmp_path / "ix"))) as engine:
            with TailIngester(
                feed, EngineSink(engine), checkpoint, batch_events=3
            ) as ingester:
                stats = ingester.drain()
            assert stats.events_applied == 10
            assert stats.events_deduped == 0
            assert stats.lag_bytes == 0
            assert stats.batches == 4  # ceil(10 / 3)
            assert len(engine.detect(["A", "B"])) == 5
        assert load_checkpoint(checkpoint).offset == stats.offset

    def test_live_visibility_without_restart(self, tmp_path):
        feed = str(tmp_path / "feed.jsonl")
        with SequenceIndex(policy=Policy.STNM) as engine:
            with TailIngester(
                feed, EngineSink(engine), str(tmp_path / "cp")
            ) as ingester:
                _write_feed(feed, _ab_events(4))
                ingester.drain()
                assert len(engine.detect(["A", "B"])) == 2
                # The feed grows; the same engine instance sees the new
                # events after the next drain -- no reopen, no rebuild.
                with FeedWriter(feed) as writer:
                    writer.append(
                        [Event("t1", "A", 10.0), Event("t1", "B", 11.0)]
                    )
                ingester.drain()
                assert len(engine.detect(["A", "B"])) == 3

    def test_checkpoint_resume_reads_nothing_twice(self, tmp_path):
        feed = str(tmp_path / "feed.jsonl")
        checkpoint = str(tmp_path / "cp")
        _write_feed(feed, _ab_events(6))
        with SequenceIndex(policy=Policy.STNM) as engine:
            with TailIngester(
                feed, EngineSink(engine), checkpoint
            ) as ingester:
                ingester.drain()
            with TailIngester(
                feed, EngineSink(engine), checkpoint
            ) as ingester:
                stats = ingester.drain()
            assert stats.events_read == 0
            assert stats.events_applied == 0

    def test_lost_checkpoint_replay_converges(self, tmp_path):
        # The checkpoint is gone but the index survived: the whole feed
        # replays and every event is deduplicated against the indexed
        # tails, leaving the index logically unchanged.
        feed = str(tmp_path / "feed.jsonl")
        _write_feed(feed, _ab_events(8))
        with SequenceIndex(LSMStore(str(tmp_path / "ix"))) as engine:
            with TailIngester(
                feed, EngineSink(engine), str(tmp_path / "cp1")
            ) as ingester:
                ingester.drain()
            before = index_snapshot(engine)
            with TailIngester(
                feed, EngineSink(engine), str(tmp_path / "cp2")
            ) as ingester:
                stats = ingester.drain()
            assert stats.events_read == 8
            assert stats.events_applied == 0
            assert stats.events_deduped == 8
            assert index_snapshot(engine) == before

    def test_background_follow_tails_a_growing_feed(self, tmp_path):
        feed = str(tmp_path / "feed.jsonl")
        with SequenceIndex(policy=Policy.STNM) as engine:
            ingester = TailIngester(
                feed,
                EngineSink(engine),
                str(tmp_path / "cp"),
                poll_interval_s=0.005,
            )
            try:
                ingester.start()
                with FeedWriter(feed) as writer:
                    for i in range(4):
                        writer.append(
                            [Event("t1", "AB"[i % 2], float(i + 1))]
                        )
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    if ingester.stats().events_applied == 4:
                        break
                    time.sleep(0.01)
                stats = ingester.stop()
                assert stats.events_applied == 4
                assert len(engine.detect(["A", "B"])) == 2
            finally:
                ingester.close()

    def test_rejects_nonpositive_batch_size(self, tmp_path):
        with pytest.raises(ValueError):
            TailIngester(
                str(tmp_path / "f"), None, str(tmp_path / "cp"), batch_events=0
            )


class TestMetrics:
    def test_ingester_exports_progress_and_freshness(self, tmp_path):
        feed = str(tmp_path / "feed.jsonl")
        _write_feed(feed, _ab_events(6))
        with SequenceIndex(policy=Policy.STNM) as engine:
            ingester = TailIngester(
                feed, EngineSink(engine), str(tmp_path / "cp"), name="t-ing"
            )
            try:
                ingester.drain()
                rendered = REGISTRY.render()
                assert 'repro_ingest_events_total{ingest="t-ing"} 6' in rendered
                assert 'repro_ingest_lag_bytes{ingest="t-ing"} 0' in rendered
                assert "repro_ingest_freshness_events_total" in rendered
                assert "repro_ingest_freshness_p99_seconds" in rendered
            finally:
                ingester.close()
            assert "t-ing" not in REGISTRY.render()

    def test_freshness_counts_only_stamped_events(self, tmp_path):
        feed = str(tmp_path / "feed.jsonl")
        _write_feed(feed, _ab_events(4), stamp=False)
        with SequenceIndex(policy=Policy.STNM) as engine:
            with TailIngester(
                feed, EngineSink(engine), str(tmp_path / "cp")
            ) as ingester:
                stats = ingester.drain()
                assert stats.events_applied == 4
                samples = ingester.freshness.samples()
                assert samples["repro_ingest_freshness_events_total"] == 0

    def test_replayed_batches_do_not_pollute_freshness(self, tmp_path):
        feed = str(tmp_path / "feed.jsonl")
        _write_feed(feed, _ab_events(4))
        with SequenceIndex(policy=Policy.STNM) as engine:
            with TailIngester(
                feed, EngineSink(engine), str(tmp_path / "cp1")
            ) as ingester:
                ingester.drain()
            # Replay through a fresh checkpoint: all events dedup, and the
            # (stale) stamps must not be re-observed as freshness.
            with TailIngester(
                feed, EngineSink(engine), str(tmp_path / "cp2")
            ) as replayer:
                replayer.drain()
                samples = replayer.freshness.samples()
                assert samples["repro_ingest_freshness_events_total"] == 0


class TestSharded:
    def test_sharded_ingest_matches_clean_single_store_build(self, tmp_path):
        events = _ab_events(10) + _ab_events(8, trace="t2")
        feed = str(tmp_path / "feed.jsonl")
        _write_feed(feed, sorted(events, key=lambda e: e.timestamp))
        sharded = ShardedSequenceIndex.open(
            str(tmp_path / "shx"), LSMStore, num_shards=2
        )
        try:
            with TailIngester(
                feed, EngineSink(sharded), str(tmp_path / "cp"), batch_events=4
            ) as ingester:
                stats = ingester.drain()
            assert stats.events_applied == 18
            streamed = index_snapshot(sharded)
        finally:
            sharded.close()
        with SequenceIndex(LSMStore(str(tmp_path / "ix"))) as clean:
            clean.update(events)
            assert streamed == index_snapshot(clean)
