"""Feed format: complete-line reads, torn tails, offsets, tail repair."""

from __future__ import annotations

import pytest

from repro.core.model import Event
from repro.ingest import FeedFormatError, FeedWriter, feed_size, read_feed


def _events(n, trace="t1", start=1):
    return [Event(trace, f"a{i}", float(start + i)) for i in range(n)]


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = str(tmp_path / "feed.jsonl")
        with FeedWriter(path) as writer:
            assert writer.append(_events(5)) == 5
        events, offset = read_feed(path)
        assert [(e.trace_id, e.activity, e.timestamp) for e in events] == [
            ("t1", f"a{i}", float(i + 1)) for i in range(5)
        ]
        assert offset == feed_size(path)
        assert all(e.appended_at is not None for e in events)

    def test_no_stamp_reads_as_unstamped(self, tmp_path):
        path = str(tmp_path / "feed.jsonl")
        with FeedWriter(path) as writer:
            writer.append(_events(2), stamp=False)
        events, _ = read_feed(path)
        assert all(e.appended_at is None for e in events)

    def test_offset_resume_and_max_events(self, tmp_path):
        path = str(tmp_path / "feed.jsonl")
        with FeedWriter(path) as writer:
            writer.append(_events(5))
        first, offset = read_feed(path, 0, max_events=2)
        rest, end = read_feed(path, offset)
        assert [e.activity for e in first] == ["a0", "a1"]
        assert [e.activity for e in rest] == ["a2", "a3", "a4"]
        assert end == feed_size(path)

    def test_missing_feed_reads_empty(self, tmp_path):
        events, offset = read_feed(str(tmp_path / "absent.jsonl"), 7)
        assert events == [] and offset == 7

    def test_to_event_drops_the_stamp(self, tmp_path):
        path = str(tmp_path / "feed.jsonl")
        with FeedWriter(path) as writer:
            writer.append(_events(1))
        (feed_event,), _ = read_feed(path)
        event = feed_event.to_event()
        assert (event.trace_id, event.activity, event.timestamp) == (
            "t1",
            "a0",
            1.0,
        )


class TestTornTails:
    def test_torn_tail_is_not_consumed(self, tmp_path):
        path = str(tmp_path / "feed.jsonl")
        with FeedWriter(path) as writer:
            writer.append(_events(2))
        boundary = feed_size(path)
        with open(path, "ab") as fh:
            fh.write(b'{"trace":"t1","activity"')  # no trailing newline
        events, offset = read_feed(path)
        assert len(events) == 2
        assert offset == boundary  # stops exactly at the torn line

    def test_torn_tail_consumed_once_newline_lands(self, tmp_path):
        path = str(tmp_path / "feed.jsonl")
        with FeedWriter(path) as writer:
            writer.append(_events(1))
        _, offset = read_feed(path)
        with open(path, "ab") as fh:
            fh.write(b'{"trace":"t1","activity":"late",')
        assert read_feed(path, offset) == ([], offset)
        with open(path, "ab") as fh:
            fh.write(b'"ts":9.0}\n')
        events, _ = read_feed(path, offset)
        assert [e.activity for e in events] == ["late"]

    def test_writer_truncates_a_dead_producers_torn_tail(self, tmp_path):
        path = str(tmp_path / "feed.jsonl")
        with FeedWriter(path) as writer:
            writer.append(_events(2))
        with open(path, "ab") as fh:
            fh.write(b'{"trace":"t1"')  # producer died mid-write
        with FeedWriter(path) as writer:
            writer.append(_events(1, start=10))
        events, _ = read_feed(path)
        assert [e.timestamp for e in events] == [1.0, 2.0, 10.0]

    def test_blank_lines_advance_without_events(self, tmp_path):
        path = str(tmp_path / "feed.jsonl")
        with FeedWriter(path) as writer:
            writer.append(_events(1))
        with open(path, "ab") as fh:
            fh.write(b"\n\n")
        with FeedWriter(path) as writer:
            writer.append(_events(1, start=5))
        events, offset = read_feed(path)
        assert [e.timestamp for e in events] == [1.0, 5.0]
        assert offset == feed_size(path)


class TestErrors:
    def test_garbage_line_raises_with_offset(self, tmp_path):
        path = str(tmp_path / "feed.jsonl")
        with open(path, "wb") as fh:
            fh.write(b"not json at all\n")
        with pytest.raises(FeedFormatError, match="byte 0"):
            read_feed(path)

    def test_missing_field_raises(self, tmp_path):
        path = str(tmp_path / "feed.jsonl")
        with open(path, "wb") as fh:
            fh.write(b'{"trace":"t1","ts":1.0}\n')
        with pytest.raises(FeedFormatError):
            read_feed(path)

    def test_negative_offset_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            read_feed(str(tmp_path / "feed.jsonl"), -1)

    def test_timestampless_event_rejected_at_append(self, tmp_path):
        path = str(tmp_path / "feed.jsonl")
        with FeedWriter(path) as writer:
            with pytest.raises(ValueError, match="timestamps"):
                writer.append([Event("t1", "a", None)])
