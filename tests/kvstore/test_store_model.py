"""Property-based equivalence: LSM store == dict model == InMemoryStore.

A stateful hypothesis test drives random operation sequences (puts, merges,
deletes, flushes, compactions, compactions *killed* between writing their
output and the manifest swap, reopen-from-disk) against the durable store
and a plain dictionary model, checking full agreement after every step.
The killed-compaction rule interleaving with reopen property-tests
recovery-during-compaction: a half-written SSTable the manifest never
references must be ignored and the pre-compaction tables stay authoritative.
"""

from __future__ import annotations

import os
import tempfile

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.kvstore import InMemoryStore, LSMStore
from repro.kvstore.merge import ListAppendMerge

KEYS = st.sampled_from(["a", "b", "c", ("pair", 1), ("pair", 2), 42])
VALUES = st.one_of(
    st.integers(-100, 100),
    st.text(max_size=8),
    st.lists(st.integers(0, 9), max_size=4),
)
DELTAS = st.lists(st.integers(0, 9), min_size=1, max_size=4)

_OP = ListAppendMerge()


class StoreModelMachine(RuleBasedStateMachine):
    """Random ops against LSMStore + InMemoryStore + a dict model."""

    @initialize()
    def setup(self) -> None:
        self.dir = tempfile.mkdtemp(prefix="lsm-model-")
        # Tiny flush threshold and aggressive compaction exercise the full
        # write path constantly, not just the memtable.
        self.lsm = LSMStore(self.dir, memtable_flush_bytes=256, compaction_min_tables=2)
        self.mem = InMemoryStore()
        for store in (self.lsm, self.mem):
            store.create_table("plain")
            store.create_table("idx", merge_operator="list_append")
        self.model_plain: dict = {}
        self.model_idx: dict = {}

    def teardown(self) -> None:
        self.lsm.close()
        self.mem.close()

    @rule(key=KEYS, value=VALUES)
    def put(self, key, value):
        self.lsm.put("plain", key, value)
        self.mem.put("plain", key, value)
        self.model_plain[_norm(key)] = value

    @rule(key=KEYS)
    def delete(self, key):
        self.lsm.delete("plain", key)
        self.mem.delete("plain", key)
        self.model_plain.pop(_norm(key), None)

    @rule(key=KEYS, delta=DELTAS)
    def merge(self, key, delta):
        self.lsm.merge("idx", key, delta)
        self.mem.merge("idx", key, delta)
        base = self.model_idx.get(_norm(key))
        self.model_idx[_norm(key)] = _OP.full_merge(base, [list(delta)])

    @rule(key=KEYS)
    def delete_merged(self, key):
        self.lsm.delete("idx", key)
        self.mem.delete("idx", key)
        self.model_idx.pop(_norm(key), None)

    @rule()
    def flush(self):
        self.lsm.flush()

    @rule()
    def compact(self):
        self.lsm.compact()

    @rule()
    def killed_compaction(self):
        """Kill a major compaction after its output file, before the swap.

        The truncated orphan SSTable is exactly what a crash in the
        background worker's vulnerable window leaves behind; every later
        rule (reads, scans, reopen) must be oblivious to it.
        """

        def kill(path: str) -> None:
            with open(path, "r+b") as fh:
                fh.truncate(os.path.getsize(path) // 2)
            raise _KilledCompaction

        self.lsm.flush()
        self.lsm.compaction_pre_swap_hook = kill
        try:
            self.lsm.compact_all()
        except _KilledCompaction:
            pass
        finally:
            self.lsm.compaction_pre_swap_hook = None

    @rule()
    def verify_integrity(self):
        # Live tables must always pass a scrub, orphans notwithstanding.
        self.lsm.verify()

    @rule()
    def reopen(self):
        self.lsm.close()
        self.lsm = LSMStore(
            self.dir, memtable_flush_bytes=256, compaction_min_tables=2
        )

    @rule(key=KEYS)
    def check_point_reads(self, key):
        expect_plain = self.model_plain.get(_norm(key))
        expect_idx = self.model_idx.get(_norm(key))
        for store in (self.lsm, self.mem):
            assert store.get("plain", key) == expect_plain
            assert store.get("idx", key) == expect_idx

    @rule(keys=st.lists(KEYS, min_size=1, max_size=8))
    def check_multi_get(self, keys):
        # multi_get must be indistinguishable from a loop of gets, for any
        # batch -- duplicates included -- at every point of the lifecycle
        # (across memtables, SSTables, post-flush, post-compaction, reopen).
        for table in ("plain", "idx"):
            for store in (self.lsm, self.mem):
                expected = [store.get(table, key, "absent") for key in keys]
                assert store.multi_get(table, keys, "absent") == expected

    @rule(low=KEYS, high=KEYS)
    def check_range_scans(self, low, high):
        from repro.kvstore.encoding import encode_key

        low_enc = encode_key(_norm(low))
        expected = {
            key: value
            for key, value in self.model_plain.items()
            if encode_key(key) >= low_enc and encode_key(key) < encode_key(_norm(high))
        }
        for store in (self.lsm, self.mem):
            got = {k: v for k, v in store.scan_range("plain", low, high)}
            assert got == expected

    @invariant()
    def scans_agree_with_model(self):
        model_plain = dict(self.model_plain)
        model_idx = dict(self.model_idx)
        for store in (self.lsm, self.mem):
            assert {k: v for k, v in store.scan("plain")} == model_plain
            assert {k: v for k, v in store.scan("idx")} == model_idx


class _KilledCompaction(RuntimeError):
    """Raised by the fault-injection hook to simulate a mid-compaction kill."""


def _norm(key):
    return key if isinstance(key, tuple) else (key,)


TestStoreModel = StoreModelMachine.TestCase
TestStoreModel.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
