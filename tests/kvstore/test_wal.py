"""Write-ahead log: append/replay, torn tails, corruption detection."""

from __future__ import annotations

import pytest

from repro.kvstore.api import CorruptionError
from repro.kvstore.wal import (
    KIND_DELETE,
    KIND_MERGE,
    KIND_PUT,
    WalRecord,
    WriteAheadLog,
)


@pytest.fixture
def wal_path(tmp_path):
    return str(tmp_path / "wal.log")


class TestAppendReplay:
    def test_roundtrip(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append(1, KIND_PUT, b"k1", b"v1")
        wal.append(2, KIND_MERGE, b"k2", b"v2")
        wal.append(3, KIND_DELETE, b"k1", b"")
        wal.close()
        records = list(WriteAheadLog.replay(wal_path))
        assert [(r.seqno, r.kind, r.key, r.value) for r in records] == [
            (1, KIND_PUT, b"k1", b"v1"),
            (2, KIND_MERGE, b"k2", b"v2"),
            (3, KIND_DELETE, b"k1", b""),
        ]

    def test_replay_missing_file_is_empty(self, tmp_path):
        assert list(WriteAheadLog.replay(str(tmp_path / "absent"))) == []

    def test_empty_values_and_keys(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append(1, KIND_PUT, b"", b"")
        wal.close()
        (record,) = WriteAheadLog.replay(wal_path)
        assert record.key == b"" and record.value == b""

    def test_truncate_discards_records(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append(1, KIND_PUT, b"k", b"v")
        wal.truncate()
        wal.append(2, KIND_PUT, b"k2", b"v2")
        wal.close()
        records = list(WriteAheadLog.replay(wal_path))
        assert [r.seqno for r in records] == [2]

    def test_append_after_reopen(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append(1, KIND_PUT, b"a", b"1")
        wal.close()
        wal = WriteAheadLog(wal_path)
        wal.append(2, KIND_PUT, b"b", b"2")
        wal.close()
        assert [r.seqno for r in WriteAheadLog.replay(wal_path)] == [1, 2]


class TestCrashTolerance:
    def _write_two(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append(1, KIND_PUT, b"k1", b"v1")
        wal.append(2, KIND_PUT, b"k2", b"v2")
        wal.close()

    def test_torn_tail_is_ignored(self, wal_path):
        self._write_two(wal_path)
        with open(wal_path, "rb") as fh:
            data = fh.read()
        with open(wal_path, "wb") as fh:
            fh.write(data[:-3])  # crash mid-frame
        records = list(WriteAheadLog.replay(wal_path))
        assert [r.seqno for r in records] == [1]

    def test_torn_header_is_ignored(self, wal_path):
        self._write_two(wal_path)
        with open(wal_path, "ab") as fh:
            fh.write(b"\x00\x01")  # partial next frame header
        assert [r.seqno for r in WriteAheadLog.replay(wal_path)] == [1, 2]

    def test_corrupt_middle_raises(self, wal_path):
        self._write_two(wal_path)
        with open(wal_path, "r+b") as fh:
            fh.seek(12)  # inside the first record's payload
            fh.write(b"\xff")
        with pytest.raises(CorruptionError):
            list(WriteAheadLog.replay(wal_path))

    def test_corrupt_final_frame_treated_as_torn(self, wal_path):
        self._write_two(wal_path)
        with open(wal_path, "r+b") as fh:
            fh.seek(-1, 2)
            fh.write(b"\xff")
        # Final-frame corruption cannot be distinguished from a torn write.
        assert [r.seqno for r in WriteAheadLog.replay(wal_path)] == [1]


def test_record_repr():
    record = WalRecord(5, KIND_PUT, b"key", b"val")
    assert "5" in repr(record)
