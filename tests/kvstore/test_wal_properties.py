"""Property-based WAL framing tests (hypothesis).

The durability contract of the frame format: replaying a WAL that was cut
off at *any* byte offset either yields every record whose frame fits
before the cut, or stops cleanly at the torn tail -- never an unhandled
exception and never a partially reconstructed record.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.kvstore.api import CorruptionError
from repro.kvstore.wal import KIND_DELETE, KIND_MERGE, KIND_PUT, WriteAheadLog

_records = st.lists(
    st.tuples(
        st.sampled_from((KIND_PUT, KIND_DELETE, KIND_MERGE)),
        st.binary(min_size=0, max_size=64),
        st.binary(min_size=0, max_size=128),
    ),
    min_size=1,
    max_size=12,
)


def _write_wal(path: str, records) -> None:
    wal = WriteAheadLog(path)
    for seqno, (kind, key, value) in enumerate(records, start=1):
        wal.append(seqno, kind, key, value)
    wal.close()


class TestRoundTrip:
    @given(records=_records)
    @settings(max_examples=60, deadline=None)
    def test_intact_log_replays_every_record(self, tmp_path_factory, records):
        path = str(tmp_path_factory.mktemp("wal") / "wal.log")
        _write_wal(path, records)
        replayed = list(WriteAheadLog.replay(path))
        assert [(r.kind, r.key, r.value) for r in replayed] == records
        assert [r.seqno for r in replayed] == list(range(1, len(records) + 1))

    @given(records=_records, data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_truncation_never_yields_a_partial_record(
        self, tmp_path_factory, records, data
    ):
        path = str(tmp_path_factory.mktemp("wal") / "wal.log")
        _write_wal(path, records)
        size = os.path.getsize(path)
        cut = data.draw(st.integers(min_value=0, max_value=size), label="cut")
        with open(path, "r+b") as fh:
            fh.truncate(cut)
        replayed = list(WriteAheadLog.replay(path))  # must not raise
        # Every replayed record is an exact prefix of what was written.
        assert len(replayed) <= len(records)
        for record, (kind, key, value) in zip(replayed, records):
            assert (record.kind, record.key, record.value) == (kind, key, value)
        # Only whole trailing records may be lost, and only if bytes were cut.
        if cut == size:
            assert len(replayed) == len(records)

    @given(records=_records, data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_mid_file_corruption_is_typed_never_partial(
        self, tmp_path_factory, records, data
    ):
        """Flipping any byte either raises CorruptionError, truncates the
        replay, or (flips confined to a frame's slack-free fields) is
        detected -- an unhandled struct.error/IndexError is a failure."""
        path = str(tmp_path_factory.mktemp("wal") / "wal.log")
        _write_wal(path, records)
        size = os.path.getsize(path)
        offset = data.draw(st.integers(min_value=0, max_value=size - 1), label="offset")
        with open(path, "r+b") as fh:
            fh.seek(offset)
            original = fh.read(1)
            fh.seek(offset)
            fh.write(bytes((original[0] ^ 0xFF,)))
        try:
            replayed = list(WriteAheadLog.replay(path))
        except CorruptionError:
            return  # typed detection: the contract held
        # Undetected flip: every surviving record must still be one that
        # was actually written, byte-for-byte (CRC guarantees this for the
        # payload; a flipped length field must not smear records together).
        written = {(k, key, v) for k, key, v in records}
        for record in replayed:
            assert (record.kind, record.key, record.value) in written


class TestReplayEdgeCases:
    def test_missing_file_replays_empty(self, tmp_path):
        assert list(WriteAheadLog.replay(str(tmp_path / "absent.log"))) == []

    def test_empty_file_replays_empty(self, tmp_path):
        path = str(tmp_path / "wal.log")
        open(path, "wb").close()
        assert list(WriteAheadLog.replay(path)) == []

    def test_corrupt_final_frame_is_a_torn_tail(self, tmp_path):
        path = str(tmp_path / "wal.log")
        _write_wal(path, [(KIND_PUT, b"k", b"v"), (KIND_PUT, b"k2", b"v2")])
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.seek(size - 1)
            fh.write(b"\xff")
        replayed = list(WriteAheadLog.replay(path))
        assert [r.key for r in replayed] == [b"k"]

    def test_corrupt_mid_frame_raises(self, tmp_path):
        path = str(tmp_path / "wal.log")
        _write_wal(path, [(KIND_PUT, b"key-one", b"v" * 30), (KIND_PUT, b"k2", b"v2")])
        with open(path, "r+b") as fh:
            fh.seek(12)  # inside the first record's payload
            fh.write(b"\xff\xff")
        with pytest.raises(CorruptionError):
            list(WriteAheadLog.replay(path))
