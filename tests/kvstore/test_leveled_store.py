"""Leveled-store behaviour at the store level.

Three contracts live here:

* **Lazy reopen** -- reopening a store reads only the manifest and each
  SSTable footer; no data block or index/bloom section is touched until
  the first read needs it (regression-guarded by the ``block_reads`` and
  ``lazy_meta_loads`` counters).
* **Strategy interop** -- a store written under one compaction strategy
  reopens byte-identically under the other, with no migration step.
* **Manifest versioning** -- v1 manifests (plain filename lists) still
  load, and unsound level layouts demote safely to L0.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.kvstore import LSMStore, LeveledConfig

SMALL = LeveledConfig(
    l0_compact_tables=2, base_level_bytes=4_096, fanout=2, max_output_bytes=2_048
)


def _fill(store: LSMStore, rows: int = 150) -> dict[str, str]:
    store.create_table("t")
    expected = {}
    for i in range(rows):
        key = f"k{i % 60:04d}"
        value = f"v{i}-" + "x" * 40
        store.put("t", key, value)
        expected[key] = value
        if i % 25 == 24:
            store.flush()
    store.flush()
    return expected


def _leveled_store(path: str, rows: int = 150):
    store = LSMStore(
        path,
        memtable_flush_bytes=1_024,
        compaction="leveled",
        leveled=SMALL,
        auto_compact=False,
    )
    expected = _fill(store, rows)
    while store.compact():
        pass
    return store, expected


def _check(store: LSMStore, expected: dict[str, str]) -> None:
    assert {k: store.get("t", k) for k in expected} == expected


class TestLazyReopen:
    def test_reopen_reads_no_blocks_until_first_get(self, tmp_path):
        path = str(tmp_path / "db")
        store, expected = _leveled_store(path)
        assert store.sstable_count > 1
        store.close()

        reopened = LSMStore(path, compaction="leveled", leveled=SMALL, auto_compact=False)
        try:
            # Reopen is manifest + footers only: zero data blocks read,
            # zero index/bloom sections materialised.
            assert reopened.metrics.block_reads == 0
            assert reopened.metrics.lazy_meta_loads == 0
            # Stats come from the manifest/footer too -- still no reads.
            reopened.level_stats()
            reopened.storage_stats()
            assert reopened.metrics.block_reads == 0
            assert reopened.metrics.lazy_meta_loads == 0

            key = next(iter(expected))
            assert reopened.get("t", key) == expected[key]
            assert reopened.metrics.block_reads >= 1
            assert reopened.metrics.lazy_meta_loads >= 1
            # Only the tables the read actually consulted paid the load.
            assert reopened.metrics.lazy_meta_loads <= reopened.sstable_count
            _check(reopened, expected)
        finally:
            reopened.close()

    def test_eager_open_materialises_meta_upfront(self, tmp_path):
        path = str(tmp_path / "db")
        store, expected = _leveled_store(path)
        store.close()

        eager = LSMStore(path, lazy_open=False, auto_compact=False)
        try:
            assert all(r._meta_loaded for r in eager._sstables)
            assert eager.metrics.lazy_meta_loads == 0  # counts lazy loads only
            _check(eager, expected)
        finally:
            eager.close()

    def test_lazy_and_eager_reads_identical(self, tmp_path):
        path = str(tmp_path / "db")
        store, expected = _leveled_store(path)
        store.close()

        lazy = LSMStore(path, auto_compact=False)
        eager = LSMStore(path, lazy_open=False, auto_compact=False)
        try:
            assert not any(r._meta_loaded for r in lazy._sstables)
            for key in expected:
                assert lazy.get("t", key) == eager.get("t", key)
            assert [k for k, _ in lazy.scan("t")] == [k for k, _ in eager.scan("t")]
            lazy.verify()  # scrub forces every meta load and checks CRCs
        finally:
            lazy.close()
            eager.close()


def _dir_snapshot(path: str) -> dict[str, int]:
    return {
        name: os.path.getsize(os.path.join(path, name))
        for name in sorted(os.listdir(path))
        if name.endswith(".sst")
    }


class TestStrategyInterop:
    def test_size_tiered_store_opens_under_leveled_without_migration(self, tmp_path):
        path = str(tmp_path / "db")
        store = LSMStore(path, memtable_flush_bytes=1_024, auto_compact=False)
        expected = _fill(store)
        store.close()
        before = _dir_snapshot(path)

        leveled = LSMStore(
            path, compaction="leveled", leveled=SMALL, auto_compact=False
        )
        try:
            # Opening is not a migration: no SSTable is rewritten.
            assert _dir_snapshot(path) == before
            _check(leveled, expected)
            # The existing tables are all-L0 flat order; leveled rounds
            # then build the levels in place without changing reads.
            while leveled.compact():
                pass
            assert max(r.level for r in leveled._sstables) >= 1
            _check(leveled, expected)
            leveled.verify()
        finally:
            leveled.close()

    def test_leveled_store_opens_under_size_tiered(self, tmp_path):
        path = str(tmp_path / "db")
        store, expected = _leveled_store(path)
        assert max(r.level for r in store._sstables) >= 1
        store.close()

        tiered = LSMStore(path, auto_compact=False)  # default size-tiered
        try:
            _check(tiered, expected)
            tiered.verify()
            # Size-tiered rounds may merge the deep runs; reads survive.
            while tiered.compact():
                pass
            _check(tiered, expected)
        finally:
            tiered.close()

    def test_manifest_v1_entries_load_at_level_zero(self, tmp_path):
        path = str(tmp_path / "db")
        store, expected = _leveled_store(path)
        store.close()

        manifest_path = os.path.join(path, "MANIFEST")
        with open(manifest_path, encoding="utf-8") as fh:
            manifest = json.load(fh)
        # Downgrade to the v1 shape: a bare list of filenames.
        manifest["sstables"] = [e["file"] for e in manifest["sstables"]]
        manifest.pop("version", None)
        manifest.pop("compaction", None)
        with open(manifest_path, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh)

        reopened = LSMStore(path, compaction="leveled", leveled=SMALL, auto_compact=False)
        try:
            assert all(r.level == 0 for r in reopened._sstables)
            _check(reopened, expected)
            # The next manifest write upgrades the entries to v2 dicts.
            reopened.flush()
            reopened.put("t", "fresh", "row")
            reopened.flush()
        finally:
            reopened.close()
        with open(manifest_path, encoding="utf-8") as fh:
            upgraded = json.load(fh)
        assert upgraded["version"] == 2
        assert all(isinstance(e, dict) for e in upgraded["sstables"])

    def test_unsound_level_layout_demotes_to_l0(self, tmp_path):
        path = str(tmp_path / "db")
        store, expected = _leveled_store(path)
        assert max(r.level for r in store._sstables) >= 1
        store.close()

        manifest_path = os.path.join(path, "MANIFEST")
        with open(manifest_path, encoding="utf-8") as fh:
            manifest = json.load(fh)
        # Scramble: give the *newest* (last) entry the deepest level,
        # breaking the deepest-first flat-order invariant.
        manifest["sstables"][-1]["level"] = 99
        with open(manifest_path, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh)

        reopened = LSMStore(path, compaction="leveled", leveled=SMALL, auto_compact=False)
        try:
            # All-L0 is the only always-safe reading of a broken layout.
            assert all(r.level == 0 for r in reopened._sstables)
            _check(reopened, expected)
            reopened.verify()
            # The leveled planner rebuilds the levels from scratch.
            while reopened.compact():
                pass
            _check(reopened, expected)
        finally:
            reopened.close()


class TestLeveledLayout:
    def test_levels_disjoint_and_manifest_persists_layout(self, tmp_path):
        path = str(tmp_path / "db")
        store, expected = _leveled_store(path, rows=300)
        by_level: dict[int, list] = {}
        for reader in store._sstables:
            by_level.setdefault(reader.level, []).append(reader)
        assert max(by_level) >= 1
        for level, tables in by_level.items():
            if level == 0:
                continue
            tables.sort(key=lambda r: r.min_key)
            for a, b in zip(tables, tables[1:]):
                assert a.max_key < b.min_key
        layout = sorted(
            (os.path.basename(r.path), r.level) for r in store._sstables
        )
        store.close()

        reopened = LSMStore(path, compaction="leveled", leveled=SMALL, auto_compact=False)
        try:
            assert (
                sorted(
                    (os.path.basename(r.path), r.level)
                    for r in reopened._sstables
                )
                == layout
            )
            _check(reopened, expected)
        finally:
            reopened.close()

    def test_trivial_move_rewrites_no_bytes(self, tmp_path):
        path = str(tmp_path / "db")
        store, _ = _leveled_store(path, rows=300)
        try:
            # The cascade on disjoint deeper runs must have used at least
            # one manifest-only move; every move rewrote zero bytes.
            if store.metrics.compaction_moves == 0:
                pytest.skip("workload produced no trivial move")
            assert store.metrics.compaction_moves >= 1
        finally:
            store.close()

    def test_compact_all_finalizes_single_deep_run(self, tmp_path):
        path = str(tmp_path / "db")
        store, expected = _leveled_store(path)
        store.delete("t", next(iter(expected)))
        deleted = next(iter(expected))
        expected.pop(deleted)
        store.compact_all()
        levels = {r.level for r in store._sstables}
        assert len(levels) == 1  # one key-disjoint run at a single level
        _check(store, expected)
        assert store.get("t", deleted) is None
        # finalize dropped the tombstone: no record for the deleted key.
        store.close()
