"""SSTable v2: block compression, per-block CRC detection, mmap serving."""

from __future__ import annotations

import os

import pytest

from repro.faults import FaultSchedule, FaultyIO
from repro.kvstore import LSMStore
from repro.kvstore.api import CorruptSSTableError
from repro.kvstore.lsm import StoreMetrics
from repro.kvstore.sstable import (
    INDEX_INTERVAL,
    MAGIC,
    SSTableReader,
    SSTableWriter,
    write_sstable,
)
from repro.kvstore.wal import KIND_PUT


def _records(count, value_size=64):
    # Repetitive values so zlib has something to chew on.
    return [
        (f"key-{i:05d}".encode(), KIND_PUT, (f"val-{i % 7}-" * 8)[:value_size].encode())
        for i in range(count)
    ]


class TestCompressedRoundTrip:
    @pytest.mark.parametrize("count", [0, 1, INDEX_INTERVAL, 200])
    def test_zlib_roundtrip(self, tmp_path, count):
        records = _records(count)
        reader = write_sstable(str(tmp_path / "t.sst"), records, compression="zlib")
        assert reader.format_version == 2
        assert list(reader) == records
        for key, kind, value in records[:: max(1, count // 10)]:
            assert reader.get(key) == (kind, value)
        reader.verify()
        reader.close()

    def test_zstd_roundtrip(self, tmp_path):
        pytest.importorskip("zstandard")
        records = _records(200)
        reader = write_sstable(str(tmp_path / "t.sst"), records, compression="zstd")
        assert reader.format_version == 2
        assert list(reader) == records
        reader.verify()
        reader.close()

    def test_zstd_unavailable_fails_fast(self, tmp_path):
        try:
            import zstandard  # noqa: F401
        except ImportError:
            pass
        else:
            pytest.skip("zstandard installed; the gate cannot fire")
        with pytest.raises(ValueError, match="zstd"):
            SSTableWriter(str(tmp_path / "t.sst"), compression="zstd")

    def test_no_compression_stays_v1(self, tmp_path):
        reader = write_sstable(str(tmp_path / "t.sst"), _records(50))
        assert reader.format_version == 1
        assert reader.raw_data_bytes == reader.data_bytes
        reader.close()

    def test_compression_shrinks_data_section(self, tmp_path):
        records = _records(500)
        plain = write_sstable(str(tmp_path / "p.sst"), records)
        packed = write_sstable(str(tmp_path / "c.sst"), records, compression="zlib")
        assert packed.data_bytes * 2 < plain.data_bytes
        assert packed.raw_data_bytes == plain.data_bytes
        plain.close()
        packed.close()

    def test_incompressible_blocks_stored_verbatim(self, tmp_path):
        records = [
            (f"k{i:04d}".encode(), KIND_PUT, os.urandom(4096)) for i in range(8)
        ]
        writer = SSTableWriter(str(tmp_path / "t.sst"), compression="zlib")
        for key, kind, value in records:
            writer.add(key, kind, value)
        reader = writer.finish()
        assert writer.compressed_blocks == 0  # nothing shrank
        assert list(reader) == records
        reader.verify()
        reader.close()


class TestCorruptCompressedBlock:
    def _flip(self, path, offset):
        with open(path, "r+b") as fh:
            fh.seek(offset)
            byte = fh.read(1)
            fh.seek(offset)
            fh.write(bytes([byte[0] ^ 0x40]))

    def test_flipped_block_byte_is_detected_never_wrong_data(self, tmp_path):
        path = str(tmp_path / "t.sst")
        records = _records(200)
        write_sstable(path, records, compression="zlib").close()
        # Flip a byte inside the first compressed payload (past the magic
        # and the 13-byte block header).
        self._flip(path, len(MAGIC) + 13 + 5)
        reader = SSTableReader(path)  # open succeeds: metadata is intact
        with pytest.raises(CorruptSSTableError):
            list(reader)
        with pytest.raises(CorruptSSTableError):
            reader.verify()
        reader.close()

    def test_flipped_block_header_is_detected(self, tmp_path):
        path = str(tmp_path / "t.sst")
        write_sstable(path, _records(200), compression="zlib").close()
        self._flip(path, len(MAGIC) + 2)  # raw_len field of block 0
        reader = SSTableReader(path)
        with pytest.raises(CorruptSSTableError):
            list(reader)
        reader.close()


class TestMmapReads:
    def test_mmap_serves_reads_and_counts_hits(self, tmp_path):
        path = str(tmp_path / "t.sst")
        records = _records(200)
        write_sstable(path, records, compression="zlib").close()
        metrics = StoreMetrics()
        reader = SSTableReader(path, use_mmap=True, metrics=metrics)
        assert reader.mmap_active
        assert list(reader) == records
        for key, kind, value in records[::20]:
            assert reader.get(key) == (kind, value)
        reader.verify()
        assert metrics.snapshot()["mmap_block_hits"] > 0
        reader.close()
        assert not reader.mmap_active

    def test_mmap_works_for_v1_files(self, tmp_path):
        path = str(tmp_path / "t.sst")
        records = _records(100)
        write_sstable(path, records).close()
        reader = SSTableReader(path, use_mmap=True)
        assert reader.mmap_active and reader.format_version == 1
        assert list(reader) == records
        reader.close()

    def test_faulty_io_disables_mmap(self, tmp_path):
        # Under an active fault schedule reads must stay shim-visible, so
        # the mmap fast path (which bypasses FaultyIO) is gated off.
        path = str(tmp_path / "t.sst")
        write_sstable(path, _records(50)).close()
        reader = SSTableReader(path, io=FaultyIO(FaultSchedule([])), use_mmap=True)
        assert not reader.mmap_active
        assert reader.get(b"key-00001") is not None
        reader.close()

    def test_bloom_survives_close(self, tmp_path):
        # The mmap'd bloom is copied to the heap on close; no BufferError.
        path = str(tmp_path / "t.sst")
        write_sstable(path, _records(50), compression="zlib").close()
        reader = SSTableReader(path, use_mmap=True)
        reader.close()
        reader.close()  # idempotent


class TestStoreFormatInterop:
    """Tier-1 guard: stores written with compression on reopen with it off
    (and vice versa) -- the reader dispatches per file on the magic."""

    @staticmethod
    def _populate(store):
        store.create_table("t", merge_operator="list_append")
        for i in range(300):
            store.merge("t", i % 20, [i])
        store.flush()

    def test_compressed_store_reopens_uncompressed(self, tmp_path):
        path = str(tmp_path / "db")
        with LSMStore(path, compression="zlib") as store:
            self._populate(store)
            expected = {k: v for k, v in store.scan("t")}
            assert store.metrics.snapshot()["compressed_blocks"] > 0
        with LSMStore(path) as reopened:  # default: compression off
            assert {k: v for k, v in reopened.scan("t")} == expected
            reopened.verify()

    def test_uncompressed_store_reopens_compressed(self, tmp_path):
        path = str(tmp_path / "db")
        with LSMStore(path) as store:
            self._populate(store)
            expected = {k: v for k, v in store.scan("t")}
        with LSMStore(path, compression="zlib", mmap=True) as reopened:
            assert {k: v for k, v in reopened.scan("t")} == expected
            # New writes in the reopened store compress; old tables still read.
            reopened.merge("t", 999, ["new"])
            reopened.flush()
            assert reopened.get("t", 999) == ["new"]
            reopened.verify()

    def test_mmap_store_roundtrip(self, tmp_path):
        path = str(tmp_path / "db")
        with LSMStore(path, compression="zlib", mmap=True) as store:
            self._populate(store)
            assert store.get("t", 5) == list(range(5, 300, 20))
            assert store.metrics.snapshot()["mmap_block_hits"] > 0
            stats = store.storage_stats()
            assert stats["compression_ratio"] > 1.0
            assert all(entry["mmap"] for entry in stats["sstables"])
