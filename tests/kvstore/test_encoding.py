"""Key/value codec tests: roundtrips and the order-preservation contract."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kvstore.encoding import (
    KeyEncodingError,
    ValueEncodingError,
    decode_key,
    decode_value,
    encode_key,
    encode_value,
)

# -- strategies ----------------------------------------------------------------

key_part = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=30),
    st.binary(max_size=30),
)
keys = st.tuples() | st.lists(key_part, max_size=5).map(tuple)

value_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**100), max_value=2**100),
    st.floats(allow_nan=False),
    st.text(max_size=50),
    st.binary(max_size=50),
)
values = st.recursive(
    value_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.lists(children, max_size=5).map(tuple),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
    ),
    max_leaves=20,
)


# -- key codec -----------------------------------------------------------------


class TestKeyRoundtrip:
    @given(keys)
    def test_roundtrip(self, key):
        assert decode_key(encode_key(key)) == key

    def test_explicit_examples(self):
        samples = [
            (),
            (0,),
            (-1,),
            (2**63 - 1,),
            (-(2**63),),
            ("",),
            ("a\x00b",),
            (b"\x00\xff",),
            (None, True, False),
            (1.5, -2.5, 0.0),
            ("trace", 42, 3.25),
        ]
        for key in samples:
            assert decode_key(encode_key(key)) == key

    def test_rejects_unsupported_type(self):
        with pytest.raises(KeyEncodingError):
            encode_key(([1, 2],))

    def test_rejects_oversized_int(self):
        with pytest.raises(KeyEncodingError):
            encode_key((2**70,))


class _OrderKey:
    """Total order over heterogeneous key parts matching the codec's design."""

    _RANK = {type(None): 0, bool: 1, int: 2, float: 3, str: 4, bytes: 5}

    def __init__(self, part):
        self.part = part

    def _rank(self):
        if self.part is None:
            return 0
        if isinstance(self.part, bool):
            return 1
        if isinstance(self.part, int):
            return 2
        if isinstance(self.part, float):
            return 3
        if isinstance(self.part, str):
            return 4
        return 5

    def __lt__(self, other):
        a, b = self._rank(), other._rank()
        if a != b:
            return a < b
        if self.part is None:
            return False
        return self.part < other.part


class TestKeyOrdering:
    @given(st.lists(st.integers(min_value=-(2**63), max_value=2**63 - 1), min_size=2, max_size=50))
    def test_int_order(self, ints):
        encoded = [encode_key((i,)) for i in sorted(ints)]
        assert encoded == sorted(encoded)

    @given(st.lists(st.text(max_size=20), min_size=2, max_size=50))
    def test_str_order(self, strings):
        encoded = [encode_key((s,)) for s in sorted(strings)]
        assert encoded == sorted(encoded)

    @given(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False),
            min_size=2,
            max_size=50,
        )
    )
    def test_float_order(self, floats):
        encoded = [encode_key((f,)) for f in sorted(floats)]
        assert encoded == sorted(encoded)

    @given(st.lists(st.binary(max_size=20), min_size=2, max_size=50))
    def test_bytes_order(self, blobs):
        encoded = [encode_key((b,)) for b in sorted(blobs)]
        assert encoded == sorted(encoded)

    @given(st.text(max_size=15), st.text(max_size=15), st.text(max_size=15))
    def test_tuple_prefix_composability(self, a, b, c):
        """encode(x + y) == encode(x) + encode(y): prefix scans rely on it."""
        assert encode_key((a, b, c)) == encode_key((a,)) + encode_key((b, c))

    def test_prefix_sorts_before_extension(self):
        assert encode_key(("ab",)) < encode_key(("ab", "c"))
        assert encode_key(("ab",)) < encode_key(("abc",))


class TestKeyDecodingErrors:
    def test_truncated_int(self):
        buf = encode_key((1000,))[:-1]
        with pytest.raises(KeyEncodingError):
            decode_key(buf)

    def test_unknown_tag(self):
        with pytest.raises(KeyEncodingError):
            decode_key(b"\xfe")

    def test_unterminated_string(self):
        with pytest.raises(KeyEncodingError):
            decode_key(bytes([0x30]) + b"abc")


# -- value codec -------------------------------------------------------------------


class TestValueRoundtrip:
    @given(values)
    def test_roundtrip(self, value):
        decoded = decode_value(encode_value(value))
        assert decoded == value
        assert type(decoded) is type(value) or isinstance(value, bytearray)

    def test_tuple_list_distinction(self):
        assert decode_value(encode_value((1, 2))) == (1, 2)
        assert decode_value(encode_value([1, 2])) == [1, 2]
        assert isinstance(decode_value(encode_value((1, 2))), tuple)
        assert isinstance(decode_value(encode_value([1, 2])), list)

    def test_big_integers(self):
        for value in (2**64, -(2**64), 10**30, -(10**30)):
            assert decode_value(encode_value(value)) == value

    def test_nested_structures(self):
        value = {"idx": [("t1", 1, 2), ("t2", 3, 4)], "meta": {"n": 2}}
        assert decode_value(encode_value(value)) == value

    def test_nan_roundtrip(self):
        decoded = decode_value(encode_value(float("nan")))
        assert math.isnan(decoded)

    def test_rejects_unsupported(self):
        with pytest.raises(ValueEncodingError):
            encode_value(object())

    def test_trailing_bytes_rejected(self):
        with pytest.raises(ValueEncodingError):
            decode_value(encode_value(1) + b"\x00")

    def test_truncated_rejected(self):
        buf = encode_value("hello world")
        with pytest.raises((ValueEncodingError, UnicodeDecodeError, Exception)):
            decode_value(buf[:-3])
