"""Range scans on both store backends."""

from __future__ import annotations

import pytest


@pytest.fixture
def populated(any_store):
    any_store.create_table("t")
    for i in range(10):
        any_store.put("t", i, i * 10)
    any_store.create_table("pairs")
    for a in "abc":
        for b in "xy":
            any_store.put("pairs", (a, b), a + b)
    return any_store


class TestScanRange:
    def test_closed_open_interval(self, populated):
        got = list(populated.scan_range("t", start=3, stop=7))
        assert got == [((3,), 30), ((4,), 40), ((5,), 50), ((6,), 60)]

    def test_open_bounds(self, populated):
        assert len(list(populated.scan_range("t"))) == 10
        assert [k for k, _ in populated.scan_range("t", start=8)] == [(8,), (9,)]
        assert [k for k, _ in populated.scan_range("t", stop=2)] == [(0,), (1,)]

    def test_empty_interval(self, populated):
        assert list(populated.scan_range("t", start=5, stop=5)) == []
        assert list(populated.scan_range("t", start=100)) == []

    def test_tuple_bounds(self, populated):
        got = [k for k, _ in populated.scan_range("pairs", start=("b",), stop=("c",))]
        assert got == [("b", "x"), ("b", "y")]

    def test_partial_tuple_bound(self, populated):
        got = [k for k, _ in populated.scan_range("pairs", start=("b", "y"))]
        assert got == [("b", "y"), ("c", "x"), ("c", "y")]

    def test_does_not_leak_other_tables(self, populated):
        # Values from "t" (int keys) must never appear in "pairs" scans.
        keys = [k for k, _ in populated.scan_range("pairs")]
        assert all(isinstance(k[0], str) for k in keys)


class TestScanRangeAcrossLevels:
    def test_spans_memtable_and_sstables(self, lsm_store):
        lsm_store.create_table("t")
        lsm_store.put("t", 1, "old")
        lsm_store.flush()
        lsm_store.put("t", 2, "new")
        got = list(lsm_store.scan_range("t", start=1, stop=3))
        assert got == [((1,), "old"), ((2,), "new")]

    def test_deleted_keys_skipped(self, lsm_store):
        lsm_store.create_table("t")
        for i in range(5):
            lsm_store.put("t", i, i)
        lsm_store.flush()
        lsm_store.delete("t", 2)
        got = [k for k, _ in lsm_store.scan_range("t", start=1, stop=4)]
        assert got == [(1,), (3,)]
