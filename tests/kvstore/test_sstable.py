"""SSTable format: writes, point reads, range iteration, corruption."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore.api import CorruptionError
from repro.kvstore.sstable import INDEX_INTERVAL, SSTableWriter, write_sstable
from repro.kvstore.wal import KIND_MERGE, KIND_PUT


def _records(count):
    return [(f"key-{i:05d}".encode(), KIND_PUT, f"val-{i}".encode()) for i in range(count)]


class TestWriteRead:
    @pytest.mark.parametrize("count", [0, 1, INDEX_INTERVAL - 1, INDEX_INTERVAL, 100])
    def test_roundtrip_all_records(self, tmp_path, count):
        records = _records(count)
        reader = write_sstable(str(tmp_path / "t.sst"), records)
        assert reader.record_count == count
        assert list(reader) == records
        reader.close()

    def test_point_get(self, tmp_path):
        records = _records(100)
        reader = write_sstable(str(tmp_path / "t.sst"), records)
        for key, kind, value in records[:: max(1, len(records) // 10)]:
            assert reader.get(key) == (kind, value)
        assert reader.get(b"key-99999") is None
        assert reader.get(b"aaa") is None  # before first key
        assert reader.get(b"zzz") is None  # past last key
        reader.close()

    def test_record_kinds_preserved(self, tmp_path):
        records = [(b"a", KIND_MERGE, b"delta"), (b"b", KIND_PUT, b"full")]
        reader = write_sstable(str(tmp_path / "t.sst"), records)
        assert reader.get(b"a") == (KIND_MERGE, b"delta")
        assert reader.get(b"b") == (KIND_PUT, b"full")
        reader.close()

    def test_iter_from_key(self, tmp_path):
        records = _records(60)
        reader = write_sstable(str(tmp_path / "t.sst"), records)
        got = list(reader.iter_from_key(b"key-00030"))
        assert got == records[30:]
        assert list(reader.iter_from_key(b"zzz")) == []
        assert list(reader.iter_from_key(b"")) == records
        reader.close()

    def test_reopen_from_disk(self, tmp_path):
        from repro.kvstore.sstable import SSTableReader

        path = str(tmp_path / "t.sst")
        records = _records(40)
        write_sstable(path, records).close()
        reader = SSTableReader(path)
        assert list(reader) == records
        reader.close()

    @given(
        st.dictionaries(
            st.binary(min_size=1, max_size=12), st.binary(max_size=20), max_size=60
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_random_keys(self, tmp_path_factory, data):
        path = str(tmp_path_factory.mktemp("sst") / "t.sst")
        records = [(key, KIND_PUT, data[key]) for key in sorted(data)]
        reader = write_sstable(path, records)
        assert list(reader) == records
        for key, _, value in records:
            assert reader.get(key) == (KIND_PUT, value)
        reader.close()


class TestWriterContract:
    def test_rejects_out_of_order_keys(self, tmp_path):
        writer = SSTableWriter(str(tmp_path / "t.sst"))
        writer.add(b"b", KIND_PUT, b"1")
        with pytest.raises(ValueError):
            writer.add(b"a", KIND_PUT, b"2")
        writer.abort()

    def test_rejects_duplicate_keys(self, tmp_path):
        writer = SSTableWriter(str(tmp_path / "t.sst"))
        writer.add(b"a", KIND_PUT, b"1")
        with pytest.raises(ValueError):
            writer.add(b"a", KIND_PUT, b"2")
        writer.abort()

    def test_abort_leaves_no_file(self, tmp_path):
        path = tmp_path / "t.sst"
        writer = SSTableWriter(str(path))
        writer.add(b"a", KIND_PUT, b"1")
        writer.abort()
        assert not path.exists()
        assert not (tmp_path / "t.sst.tmp").exists()


class TestCorruptionDetection:
    def _valid(self, tmp_path):
        path = str(tmp_path / "t.sst")
        write_sstable(path, _records(30)).close()
        return path

    def test_truncated_file(self, tmp_path):
        from repro.kvstore.sstable import SSTableReader

        path = self._valid(tmp_path)
        with open(path, "r+b") as fh:
            fh.truncate(20)
        with pytest.raises(CorruptionError):
            SSTableReader(path)

    def test_flipped_metadata_bit(self, tmp_path):
        from repro.kvstore.sstable import SSTableReader

        path = self._valid(tmp_path)
        with open(path, "r+b") as fh:
            fh.seek(-40, 2)
            fh.write(b"\xff\xff")
        with pytest.raises(CorruptionError):
            SSTableReader(path)

    def test_missing_end_magic(self, tmp_path):
        from repro.kvstore.sstable import SSTableReader

        path = self._valid(tmp_path)
        with open(path, "r+b") as fh:
            fh.seek(-1, 2)
            fh.write(b"X")
        with pytest.raises(CorruptionError):
            SSTableReader(path)
