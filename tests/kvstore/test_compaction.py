"""Compaction: run planning and multi-table record resolution."""

from __future__ import annotations

import pytest

from repro.kvstore.compaction import merge_records, plan_size_tiered
from repro.kvstore.encoding import decode_value, encode_value
from repro.kvstore.merge import ListAppendMerge
from repro.kvstore.sstable import write_sstable
from repro.kvstore.wal import KIND_DELETE, KIND_MERGE, KIND_PUT

OP = ListAppendMerge()


class TestPlanning:
    def test_no_plan_below_minimum(self):
        assert plan_size_tiered([100, 100], min_tables=4) is None

    def test_uniform_sizes_compact_everything(self):
        plan = plan_size_tiered([100, 110, 95, 100], min_tables=4)
        assert plan is not None
        assert (plan.start, plan.stop) == (0, 4)
        assert plan.includes_oldest

    def test_big_old_table_excluded(self):
        # One huge settled table followed by similar small ones: the run
        # must cover the small tables only.
        plan = plan_size_tiered([10_000, 100, 110, 95, 100], min_tables=4)
        assert plan is not None
        assert plan.start == 1 and plan.stop == 5
        assert not plan.includes_oldest

    def test_dissimilar_sizes_do_not_group(self):
        assert plan_size_tiered([1, 10, 100, 1000], min_tables=4) is None

    def test_run_is_contiguous_and_first(self):
        plan = plan_size_tiered([50, 55, 45, 50, 5000, 40], min_tables=3)
        assert (plan.start, plan.stop) == (0, 4)


def _table(tmp_path, name, records):
    return write_sstable(str(tmp_path / name), records)


class TestMergeRecords:
    def test_newest_put_wins(self, tmp_path):
        old = _table(tmp_path, "old.sst", [(b"k", KIND_PUT, encode_value([1]))])
        new = _table(tmp_path, "new.sst", [(b"k", KIND_PUT, encode_value([2]))])
        out = list(merge_records([old, new], lambda key: OP, finalize=True))
        assert out == [(KIND_PUT, b"k", encode_value([2]))]

    def test_merge_deltas_fold_into_base(self, tmp_path):
        old = _table(tmp_path, "old.sst", [(b"k", KIND_PUT, encode_value([1]))])
        new = _table(tmp_path, "new.sst", [(b"k", KIND_MERGE, encode_value([2, 3]))])
        ((kind, key, value),) = merge_records([old, new], lambda k: OP, finalize=False)
        assert kind == KIND_PUT and decode_value(value) == [1, 2, 3]

    def test_baseless_deltas_stay_merge_without_finalize(self, tmp_path):
        a = _table(tmp_path, "a.sst", [(b"k", KIND_MERGE, encode_value([1]))])
        b = _table(tmp_path, "b.sst", [(b"k", KIND_MERGE, encode_value([2]))])
        ((kind, _, value),) = merge_records([a, b], lambda k: OP, finalize=False)
        assert kind == KIND_MERGE and decode_value(value) == [1, 2]

    def test_baseless_deltas_finalize_to_put(self, tmp_path):
        a = _table(tmp_path, "a.sst", [(b"k", KIND_MERGE, encode_value([1]))])
        b = _table(tmp_path, "b.sst", [(b"k", KIND_MERGE, encode_value([2]))])
        ((kind, _, value),) = merge_records([a, b], lambda k: OP, finalize=True)
        assert kind == KIND_PUT and decode_value(value) == [1, 2]

    def test_tombstone_dropped_when_finalizing(self, tmp_path):
        old = _table(tmp_path, "old.sst", [(b"k", KIND_PUT, encode_value([1]))])
        new = _table(tmp_path, "new.sst", [(b"k", KIND_DELETE, b"")])
        assert list(merge_records([old, new], lambda k: OP, finalize=True)) == []

    def test_tombstone_kept_without_finalize(self, tmp_path):
        old = _table(tmp_path, "old.sst", [(b"k", KIND_PUT, encode_value([1]))])
        new = _table(tmp_path, "new.sst", [(b"k", KIND_DELETE, b"")])
        out = list(merge_records([old, new], lambda k: OP, finalize=False))
        assert out == [(KIND_DELETE, b"k", b"")]

    def test_delete_cuts_off_older_history(self, tmp_path):
        a = _table(tmp_path, "a.sst", [(b"k", KIND_PUT, encode_value([1]))])
        b = _table(tmp_path, "b.sst", [(b"k", KIND_DELETE, b"")])
        c = _table(tmp_path, "c.sst", [(b"k", KIND_MERGE, encode_value([9]))])
        ((kind, _, value),) = merge_records([a, b, c], lambda k: OP, finalize=True)
        assert kind == KIND_PUT and decode_value(value) == [9]

    def test_disjoint_keys_pass_through_sorted(self, tmp_path):
        a = _table(tmp_path, "a.sst", [(b"a", KIND_PUT, encode_value(1))])
        b = _table(tmp_path, "b.sst", [(b"c", KIND_PUT, encode_value(3))])
        c = _table(tmp_path, "c.sst", [(b"b", KIND_PUT, encode_value(2))])
        out = list(merge_records([a, b, c], lambda k: OP, finalize=True))
        assert [key for _, key, _ in out] == [b"a", b"b", b"c"]

    def test_merge_without_operator_raises(self, tmp_path):
        a = _table(tmp_path, "a.sst", [(b"k", KIND_MERGE, encode_value([1]))])
        with pytest.raises(ValueError):
            list(merge_records([a], lambda k: None, finalize=True))
