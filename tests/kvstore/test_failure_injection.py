"""Failure injection: the store must fail loudly, not corrupt silently."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.kvstore import LSMStore
from repro.kvstore.api import CorruptionError


def _populated(path):
    store = LSMStore(path, auto_compact=False)
    store.create_table("t", merge_operator="list_append")
    for i in range(50):
        store.merge("t", i % 5, [i])
    store.flush()
    store.close()


class TestMissingFiles:
    def test_missing_sstable_fails_on_open(self, tmp_path):
        path = str(tmp_path / "db")
        _populated(path)
        sst = next(f for f in os.listdir(path) if f.endswith(".sst"))
        os.remove(os.path.join(path, sst))
        with pytest.raises(FileNotFoundError):
            LSMStore(path)

    def test_missing_wal_is_fine(self, tmp_path):
        path = str(tmp_path / "db")
        _populated(path)
        wal = os.path.join(path, "wal.log")
        if os.path.exists(wal):
            os.remove(wal)
        store = LSMStore(path)
        assert store.get("t", 0) is not None
        store.close()

    def test_fresh_directory_bootstraps(self, tmp_path):
        store = LSMStore(str(tmp_path / "new"))
        store.create_table("t")
        store.put("t", "k", 1)
        assert store.get("t", "k") == 1
        store.close()


class TestCorruptedFiles:
    def test_corrupt_sstable_footer_detected_on_open(self, tmp_path):
        path = str(tmp_path / "db")
        _populated(path)
        sst = next(f for f in os.listdir(path) if f.endswith(".sst"))
        full = os.path.join(path, sst)
        with open(full, "r+b") as fh:
            fh.seek(-20, 2)  # inside the footer's record-count field
            fh.write(b"\x00" * 4)
        # An eager open checks the meta CRC (which covers the footer
        # fields) immediately.
        with pytest.raises(CorruptionError):
            LSMStore(path, lazy_open=False)
        # The default lazy open defers that check; the first scrub (or
        # read) must still surface it as a typed corruption error.
        store = LSMStore(path)
        try:
            with pytest.raises(CorruptionError):
                store.verify()
        finally:
            store.close()

    def test_corrupt_data_section_detected_by_scrub(self, tmp_path):
        path = str(tmp_path / "db")
        _populated(path)
        sst = next(f for f in os.listdir(path) if f.endswith(".sst"))
        full = os.path.join(path, sst)
        with open(full, "r+b") as fh:
            fh.seek(10)  # inside the first data record
            fh.write(b"\xde\xad")
        store = LSMStore(path)  # metadata intact: open succeeds
        with pytest.raises(CorruptionError):
            store.verify()
        store.close()

    def test_verify_passes_on_healthy_store(self, tmp_path):
        path = str(tmp_path / "db")
        _populated(path)
        store = LSMStore(path)
        store.verify()
        store.close()

    def test_corrupt_manifest_raises_json_error(self, tmp_path):
        path = str(tmp_path / "db")
        _populated(path)
        with open(os.path.join(path, "MANIFEST"), "w") as fh:
            fh.write("{not json")
        with pytest.raises(json.JSONDecodeError):
            LSMStore(path)

    def test_wal_mid_corruption_detected(self, tmp_path):
        path = str(tmp_path / "db")
        store = LSMStore(path)
        store.create_table("t")
        for i in range(20):
            store.put("t", i, "x" * 50)
        # Crash without flush: records live only in the WAL.
        store._wal.close()
        for reader in store._sstables:
            reader.close()
        wal = os.path.join(path, "wal.log")
        size = os.path.getsize(wal)
        with open(wal, "r+b") as fh:
            fh.seek(size // 2)
            fh.write(b"\xff\xff\xff\xff")
        with pytest.raises(CorruptionError):
            LSMStore(path)

    def test_torn_wal_tail_recovers_prefix(self, tmp_path):
        path = str(tmp_path / "db")
        store = LSMStore(path)
        store.create_table("t")
        store.put("t", "complete", 1)
        store.put("t", "torn", 2)
        store._wal.close()
        for reader in store._sstables:
            reader.close()
        wal = os.path.join(path, "wal.log")
        with open(wal, "r+b") as fh:
            fh.truncate(os.path.getsize(wal) - 3)
        recovered = LSMStore(path)
        assert recovered.get("t", "complete") == 1
        assert recovered.get("t", "torn") is None
        recovered.close()

    def test_orphan_tmp_files_ignored(self, tmp_path):
        path = str(tmp_path / "db")
        _populated(path)
        # A crash mid-flush can leave a .tmp SSTable; opening must ignore it.
        with open(os.path.join(path, "sst-999999.sst.tmp"), "wb") as fh:
            fh.write(b"partial garbage")
        store = LSMStore(path)
        assert store.get("t", 0) is not None
        store.close()


class TestFlushFaults:
    """A failed SSTable build must never lose acknowledged writes."""

    @staticmethod
    def _fail_next_finish(monkeypatch, times: int = 1):
        """Patch SSTableWriter.finish to raise OSError for ``times`` calls."""
        from repro.kvstore import lsm as lsm_module

        real_finish = lsm_module.SSTableWriter.finish
        remaining = {"n": times}

        def failing_finish(self, *args, **kwargs):
            if remaining["n"] > 0:
                remaining["n"] -= 1
                raise OSError(28, "simulated ENOSPC")
            return real_finish(self, *args, **kwargs)

        monkeypatch.setattr(lsm_module.SSTableWriter, "finish", failing_finish)

    def test_failed_flush_keeps_data_readable_and_retries(
        self, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "db")
        store = LSMStore(path, auto_compact=False)
        store.create_table("t")
        store.put("t", "a", 1)

        self._fail_next_finish(monkeypatch)
        with pytest.raises(OSError):
            store.flush()

        # The sealed memtable stays readable; new writes land normally.
        assert store.get("t", "a") == 1
        store.put("t", "b", 2)
        assert store.get("t", "b") == 2

        # The next flush retries the pending memtable, then the new one.
        store.flush()
        assert store.sstable_count == 2
        assert store.get("t", "a") == 1
        assert store.get("t", "b") == 2
        store.close()

        reopened = LSMStore(path)
        assert reopened.get("t", "a") == 1
        assert reopened.get("t", "b") == 2
        reopened.close()

    def test_crash_after_failed_flush_replays_wal(self, tmp_path, monkeypatch):
        path = str(tmp_path / "db")
        store = LSMStore(path, auto_compact=False)
        store.create_table("t")
        store.put("t", "a", 1)

        self._fail_next_finish(monkeypatch)
        with pytest.raises(OSError):
            store.flush()
        store.put("t", "b", 2)  # lands in the post-seal WAL

        # Crash without a successful flush: the frozen segment backing the
        # sealed memtable must still be on disk for replay.
        store._wal.close()
        for reader in store._sstables:
            reader.close()
        monkeypatch.undo()

        reopened = LSMStore(path)
        assert reopened.get("t", "a") == 1
        assert reopened.get("t", "b") == 2
        reopened.close()


def _multi_table_store(path, **kwargs) -> LSMStore:
    """A store with several similarly-sized SSTables, ripe for compaction."""
    store = LSMStore(path, auto_compact=False, compaction_min_tables=2, **kwargs)
    store.create_table("t", merge_operator="list_append")
    for batch in range(4):
        for i in range(25):
            store.merge("t", i % 5, [batch * 100 + i])
        store.flush()
    return store


class TestCompactionFaults:
    """Faults injected between compaction output and the manifest swap."""

    def test_corrupt_compaction_output_aborts_swap(self, tmp_path):
        store = _multi_table_store(str(tmp_path / "db"))
        before_tables = store.sstable_count
        before_values = {key: value for key, value in store.scan("t")}

        def corrupt(path: str) -> None:
            with open(path, "r+b") as fh:
                fh.seek(12)  # inside the first data record
                fh.write(b"\xde\xad\xbe\xef")

        store.compaction_pre_swap_hook = corrupt
        assert store.compact() is False  # verify() flags it, swap refused
        store.compaction_pre_swap_hook = None

        assert store.metrics.compaction_aborts == 1
        assert store.metrics.compactions == 0
        # Reads fall back to the intact pre-compaction tables.
        assert store.sstable_count == before_tables
        assert {key: value for key, value in store.scan("t")} == before_values
        store.verify()
        store.close()

    def test_killed_compaction_recovers_on_reopen(self, tmp_path):
        path = str(tmp_path / "db")
        store = _multi_table_store(path)
        before_values = {key: value for key, value in store.scan("t")}

        class Killed(RuntimeError):
            pass

        def kill(sst_path: str) -> None:
            with open(sst_path, "r+b") as fh:
                fh.truncate(os.path.getsize(sst_path) // 2)
            raise Killed

        store.compaction_pre_swap_hook = kill
        with pytest.raises(Killed):
            store.compact()
        store.close()

        # The orphan half-written table is on disk but outside the manifest.
        assert any(f.endswith(".sst") for f in os.listdir(path))
        reopened = LSMStore(path)
        assert {key: value for key, value in reopened.scan("t")} == before_values
        reopened.verify()
        reopened.close()

class TestCloseIdempotency:
    """close() must be repeatable and must release handles even mid-fault."""

    def test_double_close_is_a_noop(self, tmp_path):
        store = LSMStore(str(tmp_path / "db"))
        store.create_table("t")
        store.put("t", "k", 1)
        store.close()
        store.close()  # second close: quiet no-op

    def test_close_after_failed_flush_releases_and_reraises(
        self, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "db")
        store = LSMStore(path, auto_compact=False)
        store.create_table("t")
        store.put("t", "a", 1)

        TestFlushFaults._fail_next_finish(monkeypatch)
        with pytest.raises(OSError):
            store.close()
        monkeypatch.undo()

        # The store ended closed with every handle released, so the same
        # directory can be reopened in-process and replays the WAL.
        assert store._closed
        assert store._wal._file.closed
        assert all(reader._file.closed for reader in store._sstables)
        store.close()  # and a retry is a no-op, not a second failure

        reopened = LSMStore(path)
        assert reopened.get("t", "a") == 1
        reopened.close()

    def test_close_under_injected_fault_schedule(self, tmp_path):
        from repro.faults import ENOSPC, Fault, FaultSchedule, FaultyIO

        path = str(tmp_path / "db")
        schedule = FaultSchedule([Fault(ENOSPC, "write", nth=1, path_part=".sst")])
        store = LSMStore(path, auto_compact=False, io=FaultyIO(schedule))
        store.create_table("t")
        store.put("t", "a", 1)

        with pytest.raises(OSError):
            store.close()  # close-time flush hits the injected ENOSPC
        assert store._closed
        store.close()

        reopened = LSMStore(path)
        assert reopened.get("t", "a") == 1
        reopened.close()

    def test_concurrent_close_races_cleanly(self, tmp_path):
        import threading

        store = LSMStore(str(tmp_path / "db"))
        store.create_table("t")
        for i in range(100):
            store.put("t", i, i)
        errors = []

        def close_once():
            try:
                store.close()
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        threads = [threading.Thread(target=close_once) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert store._closed


class TestBackgroundCompactionFaults:
    def test_background_compaction_survives_corrupt_output(self, tmp_path):
        store = _multi_table_store(
            str(tmp_path / "db2"), background_compaction=True
        )
        before_values = {key: value for key, value in store.scan("t")}

        def corrupt(path: str) -> None:
            with open(path, "r+b") as fh:
                fh.seek(12)
                fh.write(b"\xde\xad\xbe\xef")

        store.compaction_pre_swap_hook = corrupt
        store._compactor.trigger()
        deadline = time.time() + 5.0
        while store.metrics.compaction_aborts == 0 and time.time() < deadline:
            time.sleep(0.01)
        store.compaction_pre_swap_hook = None

        assert store.metrics.compaction_aborts >= 1
        assert {key: value for key, value in store.scan("t")} == before_values
        store.verify()
        store.close()
