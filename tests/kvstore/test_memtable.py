"""Memtable semantics: base/delta folding, resolution, size accounting."""

from __future__ import annotations

import pytest

from repro.kvstore.encoding import encode_value
from repro.kvstore.memtable import (
    BASE_ABSENT,
    BASE_DELETE,
    BASE_PUT,
    TOMBSTONE,
    Memtable,
)
from repro.kvstore.merge import ListAppendMerge
from repro.kvstore.wal import KIND_DELETE, KIND_MERGE, KIND_PUT

OP = ListAppendMerge()


class TestApply:
    def test_put_then_get(self):
        table = Memtable()
        table.apply(KIND_PUT, b"k", encode_value([1]))
        resolved, value = table.resolve(b"k", OP)
        assert resolved and value == [1]

    def test_put_overwrites(self):
        table = Memtable()
        table.apply(KIND_PUT, b"k", encode_value([1]))
        table.apply(KIND_PUT, b"k", encode_value([2]))
        assert table.resolve(b"k", OP) == (True, [2])

    def test_delete_resolves_to_tombstone(self):
        table = Memtable()
        table.apply(KIND_PUT, b"k", encode_value([1]))
        table.apply(KIND_DELETE, b"k", b"")
        resolved, value = table.resolve(b"k", OP)
        assert resolved and value is TOMBSTONE

    def test_merge_on_put_base(self):
        table = Memtable()
        table.apply(KIND_PUT, b"k", encode_value([1]))
        table.apply(KIND_MERGE, b"k", encode_value([2, 3]))
        assert table.resolve(b"k", OP) == (True, [1, 2, 3])

    def test_merge_on_delete_base(self):
        table = Memtable()
        table.apply(KIND_DELETE, b"k", b"")
        table.apply(KIND_MERGE, b"k", encode_value([7]))
        assert table.resolve(b"k", OP) == (True, [7])

    def test_bare_merge_is_not_self_contained(self):
        table = Memtable()
        table.apply(KIND_MERGE, b"k", encode_value([1]))
        resolved, _ = table.resolve(b"k", OP)
        assert not resolved
        entry = table.lookup(b"k")
        assert entry.base_kind == BASE_ABSENT
        assert len(entry.deltas) == 1

    def test_missing_key(self):
        table = Memtable()
        assert table.resolve(b"nope", OP) == (False, None)
        assert table.lookup(b"nope") is None

    def test_merge_without_operator_raises(self):
        table = Memtable()
        table.apply(KIND_PUT, b"k", encode_value(1))
        table.apply(KIND_MERGE, b"k", encode_value([1]))
        with pytest.raises(ValueError):
            table.resolve(b"k", None)

    def test_unknown_kind_rejected(self):
        table = Memtable()
        with pytest.raises(ValueError):
            table.apply(99, b"k", b"")


class TestAccounting:
    def test_size_grows_and_clears(self):
        table = Memtable()
        assert table.approximate_bytes == 0
        table.apply(KIND_PUT, b"key", encode_value("x" * 100))
        assert table.approximate_bytes > 100
        table.clear()
        assert table.approximate_bytes == 0
        assert len(table) == 0

    def test_overwrite_does_not_leak_bytes(self):
        table = Memtable()
        table.apply(KIND_PUT, b"k", encode_value("x" * 1000))
        table.apply(KIND_PUT, b"k", encode_value("y"))
        assert table.approximate_bytes < 100

    def test_delete_shrinks(self):
        table = Memtable()
        table.apply(KIND_PUT, b"k", encode_value("x" * 1000))
        before = table.approximate_bytes
        table.apply(KIND_DELETE, b"k", b"")
        assert table.approximate_bytes < before


class TestIteration:
    def test_iter_sorted_orders_keys(self):
        table = Memtable()
        for key in (b"c", b"a", b"b"):
            table.apply(KIND_PUT, key, encode_value(0))
        assert [key for key, _ in table.iter_sorted()] == [b"a", b"b", b"c"]

    def test_entry_base_kinds(self):
        table = Memtable()
        table.apply(KIND_PUT, b"p", encode_value(1))
        table.apply(KIND_DELETE, b"d", b"")
        table.apply(KIND_MERGE, b"m", encode_value([1]))
        kinds = {key: entry.base_kind for key, entry in table.iter_sorted()}
        assert kinds == {b"p": BASE_PUT, b"d": BASE_DELETE, b"m": BASE_ABSENT}
