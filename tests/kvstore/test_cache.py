"""Units for the serving-layer primitives: LRU cache, block cache, RWLock."""

from __future__ import annotations

import threading

import pytest

from repro.kvstore import BlockCache, LRUCache, RWLock


class TestLRUCache:
    def test_basic_get_put(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", "dflt") == "dflt"

    def test_capacity_evicts_least_recent(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now least recent
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_weighted_entries(self):
        cache = LRUCache(100)
        cache.put("big", "x", weight=80)
        cache.put("small", "y", weight=30)  # 110 > 100: evicts "big"
        assert cache.get("big") is None
        assert cache.weight == 30

    def test_oversized_item_not_cached(self):
        cache = LRUCache(10)
        cache.put("huge", "x", weight=11)
        assert cache.get("huge") is None
        assert len(cache) == 0

    def test_overwrite_adjusts_weight(self):
        cache = LRUCache(10)
        cache.put("k", "a", weight=6)
        cache.put("k", "b", weight=3)
        assert cache.weight == 3
        assert cache.get("k") == "b"

    def test_stats_and_clear(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        cache.clear()
        assert len(cache) == 0 and cache.weight == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestBlockCache:
    def test_evict_owner_drops_only_that_reader(self):
        cache = BlockCache(1000)
        cache.put((1, 0), "r1b0", weight=10)
        cache.put((1, 1), "r1b1", weight=10)
        cache.put((2, 0), "r2b0", weight=10)
        cache.evict_owner(1)
        assert cache.get((1, 0)) is None
        assert cache.get((1, 1)) is None
        assert cache.get((2, 0)) == "r2b0"
        assert cache.weight == 10

    def test_evict_owners_batch_drops_all_in_one_sweep(self):
        cache = BlockCache(1000)
        for owner in (1, 2, 3):
            for slot in (0, 1):
                cache.put((owner, slot), f"r{owner}b{slot}", weight=5)
        cache.evict_owners({1, 3})
        assert cache.get((1, 0)) is None
        assert cache.get((3, 1)) is None
        assert cache.get((2, 0)) == "r2b0"
        assert cache.get((2, 1)) == "r2b1"
        assert cache.weight == 10

    def test_metrics_mirroring(self):
        from repro.kvstore import StoreMetrics

        metrics = StoreMetrics()
        cache = BlockCache(100, metrics=metrics)
        cache.get((1, 0))
        cache.put((1, 0), "block", weight=5)
        cache.get((1, 0))
        snapshot = metrics.snapshot()
        assert snapshot["block_cache_misses"] == 1
        assert snapshot["block_cache_hits"] == 1


class TestRWLock:
    def test_concurrent_readers(self):
        lock = RWLock()
        inside = threading.Barrier(3, timeout=5)

        def read():
            with lock.read():
                inside.wait()  # all three must be inside simultaneously

        threads = [threading.Thread(target=read) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_writer_excludes_readers(self):
        lock = RWLock()
        order = []
        writer_in = threading.Event()

        def write():
            with lock.write():
                writer_in.set()
                order.append("write")

        with lock.read():
            thread = threading.Thread(target=write)
            thread.start()
            assert not writer_in.wait(timeout=0.05)  # blocked behind reader
            order.append("read")
        thread.join()
        assert order == ["read", "write"]

    def test_write_lock_is_reentrant(self):
        lock = RWLock()
        with lock.write():
            with lock.write():
                pass

    def test_writer_can_read(self):
        lock = RWLock()
        with lock.write():
            with lock.read():
                pass

    def test_read_to_write_upgrade_refused(self):
        lock = RWLock()
        with lock.read():
            with pytest.raises(RuntimeError):
                with lock.write():
                    pass

    def test_reentrant_read(self):
        lock = RWLock()
        with lock.read():
            with lock.read():
                pass
