"""Bloom filter tests: no false negatives, bounded false positives."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kvstore.bloom import BloomFilter


class TestBloomBasics:
    def test_added_items_always_found(self):
        filt = BloomFilter.with_capacity(100)
        items = [f"key-{i}".encode() for i in range(100)]
        for item in items:
            filt.add(item)
        assert all(item in filt for item in items)

    def test_empty_filter_finds_nothing(self):
        filt = BloomFilter.with_capacity(10)
        assert b"anything" not in filt

    def test_false_positive_rate_in_bounds(self):
        filt = BloomFilter.with_capacity(1000, false_positive_rate=0.01)
        rng = random.Random(1)
        members = [rng.randbytes(8) for _ in range(1000)]
        for item in members:
            filt.add(item)
        probes = [rng.randbytes(9) for _ in range(5000)]
        false_positives = sum(1 for p in probes if p in filt)
        # 1% target; allow generous slack for hash variance.
        assert false_positives / len(probes) < 0.05

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BloomFilter(0, 1)
        with pytest.raises(ValueError):
            BloomFilter(8, 0)
        with pytest.raises(ValueError):
            BloomFilter.with_capacity(10, false_positive_rate=1.5)


class TestBloomSerialization:
    @given(st.lists(st.binary(min_size=1, max_size=16), max_size=50))
    def test_roundtrip_preserves_membership(self, items):
        filt = BloomFilter.with_capacity(max(1, len(items)))
        for item in items:
            filt.add(item)
        restored = BloomFilter.from_bytes(filt.to_bytes())
        assert restored.num_bits == filt.num_bits
        assert restored.num_hashes == filt.num_hashes
        for item in items:
            assert item in restored

    def test_payload_length_validated(self):
        filt = BloomFilter.with_capacity(10)
        raw = filt.to_bytes()
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(raw + b"\x00")
