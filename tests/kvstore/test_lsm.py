"""LSM store behaviour: API contract, durability, recovery, compaction."""

from __future__ import annotations

import os

import pytest

from repro.kvstore import LSMStore
from repro.kvstore.api import (
    MergeUnsupportedError,
    StoreClosedError,
    UnknownTableError,
)


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "db")


def _open(path, **kwargs):
    return LSMStore(path, **kwargs)


class TestBasicOperations:
    def test_put_get_delete(self, store_path):
        with _open(store_path) as store:
            store.create_table("t")
            store.put("t", "k", {"x": 1})
            assert store.get("t", "k") == {"x": 1}
            store.delete("t", "k")
            assert store.get("t", "k") is None
            assert store.get("t", "k", default="fallback") == "fallback"

    def test_merge_list_append(self, store_path):
        with _open(store_path) as store:
            store.create_table("idx", merge_operator="list_append")
            store.merge("idx", ("A", "B"), [("t1", 1, 2)])
            store.merge("idx", ("A", "B"), [("t2", 3, 4)])
            assert store.get("idx", ("A", "B")) == [("t1", 1, 2), ("t2", 3, 4)]

    def test_merge_requires_operator(self, store_path):
        with _open(store_path) as store:
            store.create_table("plain")
            with pytest.raises(MergeUnsupportedError):
                store.merge("plain", "k", [1])

    def test_unknown_table(self, store_path):
        with _open(store_path) as store:
            with pytest.raises(UnknownTableError):
                store.get("missing", "k")

    def test_table_recreation_rules(self, store_path):
        with _open(store_path) as store:
            store.create_table("t", merge_operator="list_append")
            store.create_table("t", merge_operator="list_append")  # idempotent
            with pytest.raises(ValueError):
                store.create_table("t", merge_operator="counter_map")

    def test_closed_store_rejects_operations(self, store_path):
        store = _open(store_path)
        store.create_table("t")
        store.close()
        with pytest.raises(StoreClosedError):
            store.put("t", "k", 1)
        store.close()  # double close is fine

    def test_tables_are_namespaced(self, store_path):
        with _open(store_path) as store:
            store.create_table("a")
            store.create_table("b")
            store.put("a", "k", "from-a")
            store.put("b", "k", "from-b")
            assert store.get("a", "k") == "from-a"
            assert store.get("b", "k") == "from-b"

    def test_contains_helper(self, store_path):
        with _open(store_path) as store:
            store.create_table("t")
            store.put("t", "k", None)  # stored None is still present
            assert ("t", "k") in store
            assert ("t", "absent") not in store


class TestScan:
    def test_scan_sorted(self, store_path):
        with _open(store_path) as store:
            store.create_table("t")
            for i in (5, 3, 9, 1):
                store.put("t", i, i * 10)
            assert list(store.scan("t")) == [
                ((1,), 10),
                ((3,), 30),
                ((5,), 50),
                ((9,), 90),
            ]

    def test_scan_prefix(self, store_path):
        with _open(store_path) as store:
            store.create_table("t")
            store.put("t", ("a", 1), "a1")
            store.put("t", ("a", 2), "a2")
            store.put("t", ("b", 1), "b1")
            assert [k for k, _ in store.scan("t", prefix="a")] == [("a", 1), ("a", 2)]

    def test_scan_sees_memtable_and_sstables(self, store_path):
        with _open(store_path) as store:
            store.create_table("t")
            store.put("t", 1, "flushed")
            store.flush()
            store.put("t", 2, "buffered")
            assert list(store.scan("t")) == [((1,), "flushed"), ((2,), "buffered")]

    def test_scan_hides_deleted(self, store_path):
        with _open(store_path) as store:
            store.create_table("t")
            store.put("t", 1, "a")
            store.put("t", 2, "b")
            store.flush()
            store.delete("t", 1)
            assert list(store.scan("t")) == [((2,), "b")]

    def test_scan_merges_deltas_across_levels(self, store_path):
        with _open(store_path) as store:
            store.create_table("idx", merge_operator="list_append")
            store.merge("idx", "k", [1])
            store.flush()
            store.merge("idx", "k", [2])
            store.flush()
            store.merge("idx", "k", [3])  # memtable only
            assert list(store.scan("idx")) == [(("k",), [1, 2, 3])]


class TestDurability:
    def test_reopen_after_close(self, store_path):
        store = _open(store_path)
        store.create_table("t", merge_operator="list_append")
        store.merge("t", "k", [1, 2])
        store.put("t", "p", "v")
        store.close()
        store = _open(store_path)
        assert store.get("t", "k") == [1, 2]
        assert store.get("t", "p") == "v"
        store.close()

    def test_wal_recovery_without_flush(self, store_path):
        store = _open(store_path)
        store.create_table("t")
        store.put("t", "k", "unflushed")
        # Simulate crash: no close(), no flush -- data only in the WAL.
        store._wal.close()
        for reader in store._sstables:
            reader.close()
        recovered = _open(store_path)
        assert recovered.get("t", "k") == "unflushed"
        recovered.close()

    def test_no_double_apply_of_merges_after_flush(self, store_path):
        store = _open(store_path)
        store.create_table("t", merge_operator="list_append")
        store.merge("t", "k", [1])
        store.flush()
        store.merge("t", "k", [2])
        store._wal.close()
        for reader in store._sstables:
            reader.close()
        recovered = _open(store_path)
        assert recovered.get("t", "k") == [1, 2]
        recovered.close()

    def test_tables_survive_reopen(self, store_path):
        store = _open(store_path)
        store.create_table("t", merge_operator="counter_map")
        store.close()
        store = _open(store_path)
        assert store.has_table("t")
        store.merge("t", "e", {"x": [1.5, 1]})
        store.merge("t", "e", {"x": [0.5, 1]})
        assert store.get("t", "e") == {"x": [2.0, 2]}
        store.close()


class TestFlushCompaction:
    def test_auto_flush_on_threshold(self, store_path):
        with _open(store_path, memtable_flush_bytes=500) as store:
            store.create_table("t")
            for i in range(100):
                store.put("t", i, "x" * 50)
            assert store.sstable_count >= 1
            assert all(store.get("t", i) == "x" * 50 for i in range(100))

    def test_compaction_reduces_tables_and_keeps_data(self, store_path):
        with _open(store_path, compaction_min_tables=3) as store:
            store.create_table("idx", merge_operator="list_append")
            for round_ in range(6):
                for key in range(10):
                    store.merge("idx", key, [round_])
                store.flush()
            assert store.sstable_count < 6
            for key in range(10):
                assert store.get("idx", key) == [0, 1, 2, 3, 4, 5]

    def test_compact_all_single_table(self, store_path):
        with _open(store_path, auto_compact=False) as store:
            store.create_table("t")
            for i in range(5):
                store.put("t", i, i)
                store.flush()
            assert store.sstable_count == 5
            store.compact_all()
            assert store.sstable_count == 1
            assert [v for _, v in store.scan("t")] == [0, 1, 2, 3, 4]

    def test_compact_all_drops_tombstones(self, store_path):
        with _open(store_path, auto_compact=False) as store:
            store.create_table("t")
            store.put("t", "k", 1)
            store.flush()
            store.delete("t", "k")
            store.flush()
            store.compact_all()
            assert store.get("t", "k") is None
            assert store._sstables[0].record_count == 0

    def test_old_sstable_files_removed(self, store_path):
        with _open(store_path, auto_compact=False) as store:
            store.create_table("t")
            for i in range(4):
                store.put("t", i, i)
                store.flush()
            store.compact_all()
        files = [f for f in os.listdir(store_path) if f.endswith(".sst")]
        assert len(files) == 1
