"""Merge operator semantics, including the associativity contract."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kvstore.merge import (
    CounterMapMerge,
    LastWriteWins,
    ListAppendMerge,
    MaxMapMerge,
    MergeOperator,
    register_merge_operator,
    resolve_merge_operator,
)


class TestListAppend:
    op = ListAppendMerge()

    def test_full_merge_from_none(self):
        assert self.op.full_merge(None, [[1, 2], [3]]) == [1, 2, 3]

    def test_full_merge_with_base(self):
        assert self.op.full_merge([0], [[1], [2]]) == [0, 1, 2]

    def test_partial_merge(self):
        assert self.op.partial_merge([[1], [2, 3]]) == [1, 2, 3]

    def test_merge_in_place(self):
        base = [1]
        assert self.op.merge_in_place(base, [2, 3])
        assert base == [1, 2, 3]

    @given(
        st.lists(st.integers(), max_size=5),
        st.lists(st.lists(st.integers(), max_size=3), min_size=1, max_size=5),
    )
    def test_partial_then_full_equals_full(self, base, deltas):
        """full(base, deltas) == full(base, [partial(deltas)]) -- the
        compaction-correctness property."""
        direct = self.op.full_merge(list(base), list(deltas))
        collapsed = self.op.full_merge(list(base), [self.op.partial_merge(deltas)])
        assert direct == collapsed


class TestCounterMap:
    op = CounterMapMerge()

    def test_accumulates(self):
        merged = self.op.full_merge(
            {"b": [10.0, 2]}, [{"b": [5.0, 1], "c": [1.0, 1]}]
        )
        assert merged == {"b": [15.0, 3], "c": [1.0, 1]}

    def test_base_not_mutated_by_full_merge(self):
        base = {"b": [10.0, 2]}
        self.op.full_merge(base, [{"b": [1.0, 1]}])
        assert base == {"b": [10.0, 2]}

    @given(
        st.lists(
            st.dictionaries(
                st.sampled_from("abc"),
                st.tuples(st.integers(0, 100), st.integers(0, 10)).map(list),
                max_size=3,
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_partial_then_full_equals_full(self, deltas):
        direct = self.op.full_merge(None, [dict(d) for d in deltas])
        collapsed = self.op.full_merge(
            None, [self.op.partial_merge([dict(d) for d in deltas])]
        )
        assert direct == collapsed


class TestMaxMap:
    op = MaxMapMerge()

    def test_keeps_maximum(self):
        merged = self.op.full_merge({"t1": 5}, [{"t1": 3, "t2": 7}, {"t1": 9}])
        assert merged == {"t1": 9, "t2": 7}

    @given(
        st.lists(
            st.dictionaries(st.sampled_from("xyz"), st.integers(-50, 50), max_size=3),
            min_size=1,
            max_size=6,
        )
    )
    def test_partial_then_full_equals_full(self, deltas):
        direct = self.op.full_merge(None, [dict(d) for d in deltas])
        collapsed = self.op.full_merge(
            None, [self.op.partial_merge([dict(d) for d in deltas])]
        )
        assert direct == collapsed


class TestLastWriteWins:
    op = LastWriteWins()

    def test_latest_delta_wins(self):
        assert self.op.full_merge("old", ["a", "b"]) == "b"

    def test_no_deltas_keeps_base(self):
        assert self.op.full_merge("old", []) == "old"

    def test_partial(self):
        assert self.op.partial_merge(["a", "b"]) == "b"

    def test_in_place_unsupported(self):
        assert not self.op.merge_in_place("x", "y")


class TestRegistry:
    def test_resolve_known(self):
        assert resolve_merge_operator("list_append").name == "list_append"

    def test_resolve_unknown(self):
        with pytest.raises(KeyError):
            resolve_merge_operator("nope")

    def test_register_custom(self):
        class SetUnionMerge(MergeOperator):
            name = "test_set_union"

            def full_merge(self, base, deltas):
                out = set(base or ())
                for delta in deltas:
                    out |= set(delta)
                return sorted(out)

            def partial_merge(self, deltas):
                out = set()
                for delta in deltas:
                    out |= set(delta)
                return sorted(out)

        register_merge_operator(SetUnionMerge())
        op = resolve_merge_operator("test_set_union")
        assert op.full_merge([1], [[2], [1, 3]]) == [1, 2, 3]
