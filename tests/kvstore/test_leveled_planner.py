"""Property tests for the leveled compaction planner.

``plan_leveled`` is a pure function over table metadata, so Hypothesis can
hammer it directly: level invariants (L1+ key-disjoint, byte budgets
respected at the fixed point), promotion picks (all of L0 at once, the
cheapest victim for deeper levels), and -- through a real store -- the
equivalence of read results before and after any compaction round.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.kvstore import LSMStore, LeveledConfig  # noqa: E402
from repro.kvstore.compaction import (  # noqa: E402
    LeveledPlan,
    plan_leveled,
)


def _key(i: int) -> bytes:
    return b"k%06d" % i


class _Table:
    """Planner-facing stand-in for an SSTableReader."""

    __slots__ = ("data_bytes", "min_key", "max_key")

    def __init__(self, data_bytes: int, min_key: bytes | None, max_key: bytes | None):
        self.data_bytes = data_bytes
        self.min_key = min_key
        self.max_key = max_key

    def __repr__(self) -> str:  # pragma: no cover - shrink output aid
        return f"T({self.data_bytes}, {self.min_key!r}..{self.max_key!r})"


def _overlaps(a: _Table, b: _Table) -> bool:
    if None in (a.min_key, a.max_key, b.min_key, b.max_key):
        return True
    return a.min_key <= b.max_key and b.min_key <= a.max_key


@st.composite
def configs(draw):
    return LeveledConfig(
        l0_compact_tables=draw(st.integers(2, 5)),
        base_level_bytes=draw(st.sampled_from([1_000, 4_000, 16_000])),
        fanout=draw(st.integers(2, 4)),
        soft_ratio=draw(st.sampled_from([0.5, 0.75, 1.0])),
    )


@st.composite
def layouts(draw):
    """A config plus a structurally valid level layout.

    L0 tables may overlap arbitrarily; every deeper level is generated as
    a key-disjoint run (the invariant the store maintains).
    """
    cfg = draw(configs())
    l0 = []
    for _ in range(draw(st.integers(0, 7))):
        a, b = sorted(
            (draw(st.integers(0, 999)), draw(st.integers(0, 999)))
        )
        l0.append(_Table(draw(st.integers(1, 3_000)), _key(a), _key(b)))
    levels = [l0]
    for n in range(1, draw(st.integers(0, 3)) + 1):
        count = draw(st.integers(0, 5))
        bounds = sorted(
            draw(
                st.lists(
                    st.integers(0, 999),
                    min_size=2 * count,
                    max_size=2 * count,
                    unique=True,
                )
            )
        )
        levels.append(
            [
                _Table(
                    draw(st.integers(1, 3_000)),
                    _key(bounds[2 * i]),
                    _key(bounds[2 * i + 1]),
                )
                for i in range(count)
            ]
        )
    return cfg, levels


def _is_quiescent(cfg: LeveledConfig, levels, soft: bool = False) -> bool:
    l0_trigger = cfg.l0_compact_tables
    if soft:
        l0_trigger = max(2, int(l0_trigger * cfg.soft_ratio))
    if levels and len(levels[0]) >= l0_trigger:
        return False
    for n in range(1, len(levels)):
        threshold = cfg.level_target_bytes(n)
        if soft:
            threshold = int(threshold * cfg.soft_ratio)
        if sum(t.data_bytes for t in levels[n]) > threshold:
            return False
    return True


class TestPlannerPicks:
    @given(layouts())
    def test_none_iff_quiescent(self, layout):
        cfg, levels = layout
        plan = plan_leveled(levels, cfg)
        assert (plan is None) == _is_quiescent(cfg, levels)

    @given(layouts())
    def test_l0_promotion_takes_all_of_l0(self, layout):
        cfg, levels = layout
        plan = plan_leveled(levels, cfg)
        if plan is None or plan.level != 0:
            return
        assert len(levels[0]) >= cfg.l0_compact_tables
        assert plan.sources == levels[0]
        assert plan.target_level == 1

    @given(layouts())
    def test_targets_are_exactly_the_overlapping_tables(self, layout):
        cfg, levels = layout
        plan = plan_leveled(levels, cfg)
        if plan is None:
            return
        below = (
            levels[plan.target_level] if plan.target_level < len(levels) else []
        )
        # The merged output is one contiguous run over the *union* span of
        # the sources, so exactly the next-level tables overlapping that
        # span must be dragged in: a table inside a gap between two L0
        # tables still collides with the output run; one fully outside the
        # span would be wasted write amplification.
        if any(s.min_key is None or s.max_key is None for s in plan.sources):
            span = _Table(0, None, None)
        else:
            span = _Table(
                0,
                min(s.min_key for s in plan.sources),
                max(s.max_key for s in plan.sources),
            )
        expected = [t for t in below if _overlaps(t, span)]
        assert plan.targets == expected

    @given(layouts())
    def test_overflow_victim_minimizes_overlap_bytes(self, layout):
        cfg, levels = layout
        plan = plan_leveled(levels, cfg)
        if plan is None or plan.level == 0:
            return
        assert len(plan.sources) == 1
        victim = plan.sources[0]
        below = (
            levels[plan.target_level] if plan.target_level < len(levels) else []
        )

        def cost(table):
            return sum(
                t.data_bytes for t in below if _overlaps(t, table)
            )

        assert cost(victim) == min(cost(t) for t in levels[plan.level])

    @given(layouts())
    def test_trivial_move_means_no_rewrite_needed(self, layout):
        cfg, levels = layout
        plan = plan_leveled(levels, cfg)
        if plan is None:
            return
        if plan.is_trivial_move:
            assert plan.level >= 1
            assert plan.targets == []
        if plan.level >= 1 and not plan.targets:
            assert plan.is_trivial_move

    @given(layouts())
    def test_hard_plan_implies_soft_plan(self, layout):
        cfg, levels = layout
        if plan_leveled(levels, cfg) is not None:
            # Soft thresholds are at most the hard ones, so background
            # (soft) rounds can never fall behind the hard trigger.
            assert plan_leveled(levels, cfg, soft=True) is not None


def _apply_abstractly(cfg: LeveledConfig, levels, plan: LeveledPlan):
    """Simulate applying a plan without real I/O.

    The merged output covers the key span of the inputs and carries their
    summed bytes (an upper bound: merging never grows data), split into
    key-partitioned chunks at ``max_output_bytes`` exactly as the store
    splits its outputs.
    """
    inputs = plan.sources + plan.targets
    if plan.is_trivial_move:
        # The store reassigns the table's level in the manifest; no rewrite,
        # no split.
        outputs = list(plan.sources)
    else:
        total = sum(t.data_bytes for t in inputs)
        known = [t for t in inputs if t.min_key is not None and t.max_key is not None]
        lo = min((t.min_key for t in known), default=_key(0))
        hi = max((t.max_key for t in known), default=_key(999))
        span = [int(lo[1:]), int(hi[1:])]
        # The real writer cuts at record boundaries, so it can never produce
        # more outputs than there are distinct keys.
        chunks = max(1, -(-total // cfg.max_output_bytes))
        chunks = min(chunks, span[1] - span[0] + 1)
        width = span[1] - span[0] + 1
        outputs = []
        for i in range(chunks):
            a = span[0] + width * i // chunks
            b = span[0] + width * (i + 1) // chunks - 1
            outputs.append(_Table(total // chunks, _key(a), _key(b)))
    while len(levels) <= plan.target_level:
        levels.append([])
    for n, tables in enumerate(levels):
        levels[n] = [t for t in tables if t not in inputs]
    survivors = levels[plan.target_level]
    levels[plan.target_level] = sorted(
        survivors + outputs, key=lambda t: t.min_key
    )
    return levels


class TestCascadeInvariants:
    @given(layouts())
    @settings(max_examples=60)
    def test_draining_plans_terminates_and_respects_invariants(self, layout):
        cfg, levels = layout
        for _ in range(200):
            plan = plan_leveled(levels, cfg)
            if plan is None:
                break
            levels = _apply_abstractly(cfg, levels, plan)
            # L1+ stays key-disjoint after every round.
            for n in range(1, len(levels)):
                run = sorted(levels[n], key=lambda t: t.min_key or b"")
                for a, b in zip(run, run[1:]):
                    assert a.max_key < b.min_key, f"L{n} overlap after {plan!r}"
        else:
            pytest.fail("planner did not quiesce within 200 rounds")
        # At the fixed point every trigger is satisfied: L0 below its
        # table-count trigger, deeper levels within their byte budgets.
        assert _is_quiescent(cfg, levels)


class TestReadEquivalence:
    """Read results are identical before/after any compaction round."""

    @given(st.data())
    @settings(max_examples=10, deadline=None)
    def test_rounds_and_reopen_preserve_reads(self, tmp_path_factory, data):
        path = str(tmp_path_factory.mktemp("leveled") / "db")
        cfg = LeveledConfig(
            l0_compact_tables=2, base_level_bytes=2_048, fanout=2,
            max_output_bytes=1_024,
        )
        store = LSMStore(
            path,
            memtable_flush_bytes=512,
            compaction="leveled",
            leveled=cfg,
            auto_compact=False,  # rounds run explicitly below
        )
        store.create_table("kv")
        store.create_table("log", merge_operator="list_append")
        model: dict[str, str] = {}
        logm: dict[str, list[int]] = {}
        ops = data.draw(
            st.lists(
                st.tuples(
                    st.sampled_from(["put", "merge", "delete", "flush"]),
                    st.integers(0, 30),
                    st.integers(0, 60),
                ),
                min_size=10,
                max_size=80,
            )
        )
        for i, (kind, keyn, pad) in enumerate(ops):
            key = f"k{keyn:03d}"
            if kind == "put":
                value = f"v{i}-" + "x" * pad
                store.put("kv", key, value)
                model[key] = value
            elif kind == "merge":
                store.merge("log", key, [i])
                logm.setdefault(key, []).append(i)
            elif kind == "delete":
                store.delete("kv", key)
                model.pop(key, None)
            else:
                store.flush()

        def snapshot(s):
            kv = {k: s.get("kv", k) for k in model}
            lg = {k: s.get("log", k) for k in logm}
            return kv, lg

        store.flush()
        before = snapshot(store)
        rounds = 0
        while store.compact():
            rounds += 1
            assert snapshot(store) == before, f"reads changed after round {rounds}"
            assert rounds < 100
        store.close()
        reopened = LSMStore(path, compaction="leveled", leveled=cfg, auto_compact=False)
        try:
            assert snapshot(reopened) == before
        finally:
            reopened.close()
