"""Corrupt SSTable inputs must raise typed errors, never struct/Index errors.

The meta CRC catches most random damage at open, so most structural
mutations here *recompute* the meta CRC after corrupting -- that is what a
writer bug (or a CRC-colliding flip) looks like, and it is exactly the
case the reader's parse guards exist for.
"""

from __future__ import annotations

import struct
import zlib

import pytest

from repro.core.errors import CorruptSSTableError as ReexportedError
from repro.kvstore.api import CorruptionError, CorruptSSTableError
from repro.kvstore.sstable import (
    END_MAGIC,
    MAGIC,
    SSTableReader,
    SSTableWriter,
    _FOOTER,
    _U64,
)
from repro.kvstore.wal import KIND_PUT


def _build(path: str, records: int = 40) -> None:
    writer = SSTableWriter(path, expected_records=records)
    for i in range(records):
        writer.add(f"key-{i:04d}".encode(), KIND_PUT, b"v" * (i % 17))
    writer.finish().close()


def _rewrite_meta(path: str, mutate_index=None, mutate_bloom=None) -> None:
    """Apply a structural mutation and re-stamp a *valid* meta CRC."""
    with open(path, "rb") as fh:
        data = fh.read()
    tail = _FOOTER.size + len(END_MAGIC)
    index_off, bloom_off, count, data_crc, _ = _FOOTER.unpack(
        data[-tail : -len(END_MAGIC)]
    )
    index_buf = data[index_off:bloom_off]
    bloom_buf = data[bloom_off : len(data) - tail]
    if mutate_index is not None:
        index_buf = mutate_index(index_buf)
    if mutate_bloom is not None:
        bloom_buf = mutate_bloom(bloom_buf)
    fields = struct.pack(
        ">QQQI", index_off, index_off + len(index_buf), count, data_crc
    )
    meta_crc = zlib.crc32(index_buf + bloom_buf + fields)
    with open(path, "wb") as fh:
        fh.write(
            data[:index_off]
            + index_buf
            + bloom_buf
            + fields
            + struct.pack(">I", meta_crc)
            + END_MAGIC
        )


class TestFlippedCrc:
    def test_flipped_meta_crc_detected_at_open(self, tmp_path):
        path = str(tmp_path / "t.sst")
        _build(path)
        with open(path, "r+b") as fh:
            fh.seek(-len(END_MAGIC) - 1, 2)  # last byte of the meta CRC
            byte = fh.read(1)
            fh.seek(-1, 1)
            fh.write(bytes((byte[0] ^ 0x01,)))
        with pytest.raises(CorruptSSTableError):
            SSTableReader(path)

    def test_flipped_data_crc_field_detected_at_open(self, tmp_path):
        # The data-CRC footer field is covered by the meta CRC, so flipping
        # it is caught immediately, not at the next scrub.
        path = str(tmp_path / "t.sst")
        _build(path)
        with open(path, "r+b") as fh:
            fh.seek(-len(END_MAGIC) - 8, 2)  # inside the data-CRC field
            fh.write(b"\xff")
        with pytest.raises(CorruptSSTableError):
            SSTableReader(path)

    def test_flipped_data_byte_detected_by_verify(self, tmp_path):
        path = str(tmp_path / "t.sst")
        _build(path)
        with open(path, "r+b") as fh:
            fh.seek(len(MAGIC) + 3)
            fh.write(b"\xde")
        reader = SSTableReader(path)  # metadata intact: open succeeds
        with pytest.raises(CorruptSSTableError):
            reader.verify()
        reader.close()


class TestTruncatedBloom:
    def test_truncated_bloom_is_typed(self, tmp_path):
        path = str(tmp_path / "t.sst")
        _build(path)
        _rewrite_meta(path, mutate_bloom=lambda buf: buf[: len(buf) // 2])
        with pytest.raises(CorruptSSTableError):
            SSTableReader(path)

    def test_empty_bloom_is_typed(self, tmp_path):
        path = str(tmp_path / "t.sst")
        _build(path)
        _rewrite_meta(path, mutate_bloom=lambda buf: b"")
        with pytest.raises(CorruptSSTableError):
            SSTableReader(path)


class TestSparseIndex:
    def test_index_entry_past_eof_is_typed(self, tmp_path):
        path = str(tmp_path / "t.sst")
        _build(path)

        def point_past_eof(buf: bytes) -> bytes:
            # The last 8 bytes of the first entry are its data offset.
            (klen,) = struct.unpack_from(">I", buf, 0)
            entry_end = 4 + klen + 8
            return buf[: entry_end - 8] + _U64.pack(2**40) + buf[entry_end:]

        _rewrite_meta(path, mutate_index=point_past_eof)
        with pytest.raises(CorruptSSTableError):
            SSTableReader(path)

    def test_truncated_index_entry_is_typed(self, tmp_path):
        path = str(tmp_path / "t.sst")
        _build(path)
        _rewrite_meta(path, mutate_index=lambda buf: buf[:-3])
        with pytest.raises(CorruptSSTableError):
            SSTableReader(path)

    def test_index_key_length_past_buffer_is_typed(self, tmp_path):
        path = str(tmp_path / "t.sst")
        _build(path)

        def inflate_klen(buf: bytes) -> bytes:
            return struct.pack(">I", 2**20) + buf[4:]

        _rewrite_meta(path, mutate_index=inflate_klen)
        with pytest.raises(CorruptSSTableError):
            SSTableReader(path)


class TestTruncatedFile:
    @pytest.mark.parametrize("keep", [0, 5, len(MAGIC), 100])
    def test_truncated_file_is_typed(self, tmp_path, keep):
        path = str(tmp_path / "t.sst")
        _build(path)
        with open(path, "r+b") as fh:
            fh.truncate(keep)
        with pytest.raises(CorruptSSTableError):
            SSTableReader(path)


class TestErrorHierarchy:
    def test_subclass_of_corruption_error(self):
        assert issubclass(CorruptSSTableError, CorruptionError)

    def test_reexported_from_core_errors(self):
        assert ReexportedError is CorruptSSTableError
