"""Concurrency hammer tests for the serving layer.

N writer threads mutate disjoint put/delete keys plus overlapping merge
keys while M reader threads continuously get/scan and check invariants
(torn values, out-of-order merge deltas, inconsistent scans).  At the end
the store must agree exactly with a dict model maintained alongside the
writes, with and without background compaction.

The quick variants run in the default suite; the big ones are gated behind
``pytest -m stress``.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.kvstore import InMemoryStore, LSMStore, LeveledConfig

KEYSPACE = 16  # per-writer put/delete key slots
SHARED = 8  # shared merge-key slots


def _hammer(store, *, writers, readers, ops_per_writer, seed=0):
    """Run the hammer; returns (model, appended_tags) for final validation."""
    store.create_table("kv")
    store.create_table("log", merge_operator="list_append")

    model: dict = {}
    model_lock = threading.Lock()
    appended = {wid: [] for wid in range(writers)}
    errors: list[BaseException] = []
    stop_readers = threading.Event()

    def writer(wid: int) -> None:
        rng = random.Random(seed * 1000 + wid)
        try:
            for i in range(ops_per_writer):
                roll = rng.random()
                key = ("w", wid, rng.randrange(KEYSPACE))
                if roll < 0.55:
                    # Value is self-describing: [owner, op#]; readers use
                    # the owner field to detect torn/misplaced values.
                    value = [wid, i]
                    store.put("kv", key, value)
                    with model_lock:
                        model[key] = value
                elif roll < 0.75:
                    store.delete("kv", key)
                    with model_lock:
                        model.pop(key, None)
                else:
                    tag = [wid, i]
                    store.merge("log", ("shared", rng.randrange(SHARED)), [tag])
                    appended[wid].append(tag)
        except BaseException as exc:  # noqa: BLE001 - reported by the main thread
            errors.append(exc)

    def reader(rid: int) -> None:
        rng = random.Random(seed * 7777 + rid)
        try:
            while not stop_readers.is_set():
                roll = rng.random()
                if roll < 0.5:
                    wid = rng.randrange(writers)
                    value = store.get("kv", ("w", wid, rng.randrange(KEYSPACE)))
                    if value is not None:
                        assert value[0] == wid, f"torn read: {value!r}"
                elif roll < 0.8:
                    merged = store.get("log", ("shared", rng.randrange(SHARED)))
                    if merged is not None:
                        _assert_writer_order(merged)
                else:
                    for key, value in store.scan("kv"):
                        assert value[0] == key[1], f"scan mismatch at {key!r}"
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    writer_threads = [
        threading.Thread(target=writer, args=(wid,)) for wid in range(writers)
    ]
    reader_threads = [
        threading.Thread(target=reader, args=(rid,)) for rid in range(readers)
    ]
    for thread in writer_threads + reader_threads:
        thread.start()
    for thread in writer_threads:
        thread.join()
    stop_readers.set()
    for thread in reader_threads:
        thread.join()
    assert not errors, f"worker errors: {errors[:3]}"
    return model, appended


def _assert_writer_order(merged: list) -> None:
    """Each writer's tags must appear in its own append order."""
    last: dict = {}
    for tag in merged:
        wid, op = tag
        assert last.get(wid, -1) < op, f"reordered deltas for writer {wid}"
        last[wid] = op


def _check_final_state(store, model: dict, appended: dict) -> None:
    store.flush()
    assert dict(store.scan("kv")) == model
    merged_tags = []
    for slot in range(SHARED):
        merged = store.get("log", ("shared", slot))
        if merged is not None:
            _assert_writer_order(merged)
            merged_tags.extend(tuple(tag) for tag in merged)
    expected = sorted(
        tuple(tag) for tags in appended.values() for tag in tags
    )
    assert sorted(merged_tags) == expected


def _lsm(tmp_path, background_compaction: bool) -> LSMStore:
    # Tiny flush threshold + eager compaction so the hammer constantly
    # exercises seal/flush/compact interleavings, not just the memtable.
    return LSMStore(
        str(tmp_path / "store"),
        memtable_flush_bytes=2000,
        compaction_min_tables=2,
        background_compaction=background_compaction,
    )


@pytest.mark.parametrize("background_compaction", [False, True])
def test_hammer_lsm_quick(tmp_path, background_compaction):
    store = _lsm(tmp_path, background_compaction)
    model, appended = _hammer(
        store, writers=4, readers=2, ops_per_writer=150, seed=1
    )
    _check_final_state(store, model, appended)
    store.close()
    # Durability: a reopen must replay to exactly the same state.
    with LSMStore(str(tmp_path / "store")) as reopened:
        assert dict(reopened.scan("kv")) == model


def test_hammer_in_memory_parity(tmp_path):
    # Same harness against the reference backend: the API contract under
    # concurrency is backend-independent.
    store = InMemoryStore()
    model, appended = _hammer(
        store, writers=4, readers=2, ops_per_writer=150, seed=2
    )
    _check_final_state(store, model, appended)
    store.close()


@pytest.mark.stress
@pytest.mark.parametrize("background_compaction", [False, True])
def test_hammer_lsm_stress(tmp_path, background_compaction):
    store = _lsm(tmp_path, background_compaction)
    model, appended = _hammer(
        store, writers=8, readers=4, ops_per_writer=1200, seed=3
    )
    _check_final_state(store, model, appended)
    metrics = store.metrics.snapshot()
    assert metrics["flushes"] > 0
    store.close()
    with LSMStore(str(tmp_path / "store")) as reopened:
        assert dict(reopened.scan("kv")) == model


def _lsm_leveled(tmp_path, background_compaction: bool) -> LSMStore:
    # Tiny level budgets so the hammer's flushes constantly trigger
    # cascading promotions while readers are mid-flight.
    return LSMStore(
        str(tmp_path / "store"),
        memtable_flush_bytes=2000,
        compaction="leveled",
        leveled=LeveledConfig(
            l0_compact_tables=2, base_level_bytes=4096, fanout=2
        ),
        background_compaction=background_compaction,
    )


def _check_quiesced_identical(store, model: dict) -> None:
    """Draining every remaining promotion must not change a single read."""
    live = dict(store.scan("kv"))
    live_log = {
        key: value for key, value in store.scan("log")
    }
    while store.compact():
        pass
    assert dict(store.scan("kv")) == live == model
    assert {key: value for key, value in store.scan("log")} == live_log


@pytest.mark.parametrize("background_compaction", [False, True])
def test_hammer_lsm_leveled_quick(tmp_path, background_compaction):
    store = _lsm_leveled(tmp_path, background_compaction)
    model, appended = _hammer(
        store, writers=4, readers=2, ops_per_writer=150, seed=4
    )
    _check_final_state(store, model, appended)
    _check_quiesced_identical(store, model)
    store.close()
    with LSMStore(
        str(tmp_path / "store"), compaction="leveled"
    ) as reopened:
        assert dict(reopened.scan("kv")) == model


@pytest.mark.stress
@pytest.mark.parametrize("background_compaction", [False, True])
def test_hammer_lsm_leveled_stress(tmp_path, background_compaction):
    store = _lsm_leveled(tmp_path, background_compaction)
    model, appended = _hammer(
        store, writers=8, readers=4, ops_per_writer=1200, seed=5
    )
    _check_final_state(store, model, appended)
    # The workload is big enough that promotions must actually have
    # cascaded past L0 while the readers were running.
    metrics = store.metrics.snapshot()
    assert metrics["flushes"] > 0
    assert metrics["compactions"] + metrics["compaction_moves"] > 0
    assert max(reader.level for reader in store._sstables) >= 1
    _check_quiesced_identical(store, model)
    store.close()
    with LSMStore(
        str(tmp_path / "store"), compaction="leveled"
    ) as reopened:
        assert dict(reopened.scan("kv")) == model
        reopened.verify()
