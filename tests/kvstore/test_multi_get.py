"""Unit tests for the batched ``multi_get`` read path.

The contract: ``store.multi_get(table, keys, default)`` is observationally
identical to ``[store.get(table, k, default) for k in keys]`` -- merge
operators, tombstones, defaults and duplicates included -- while sharing
per-batch work (one snapshot, one bloom/block probe pass per SSTable).
"""

from __future__ import annotations

import pytest

from repro.kvstore import InMemoryStore, LSMStore
from repro.kvstore.api import UnknownTableError


@pytest.fixture(params=["lsm", "memory"])
def store(request, tmp_path):
    if request.param == "lsm":
        s = LSMStore(tmp_path / "store", memtable_flush_bytes=128)
    else:
        s = InMemoryStore()
    yield s
    s.close()


def _loop_of_gets(store, table, keys, default=None):
    return [store.get(table, key, default) for key in keys]


class TestBasics:
    def test_empty_batch(self, store):
        store.create_table("t")
        assert store.multi_get("t", []) == []

    def test_order_and_defaults(self, store):
        store.create_table("t")
        store.put("t", "a", 1)
        store.put("t", "c", 3)
        keys = ["c", "missing", "a"]
        assert store.multi_get("t", keys) == [3, None, 1]
        assert store.multi_get("t", keys, default="absent") == [3, "absent", 1]

    def test_duplicate_keys_each_answered(self, store):
        store.create_table("t")
        store.put("t", "a", 1)
        assert store.multi_get("t", ["a", "a", "b", "a"], 0) == [1, 1, 0, 1]

    def test_tuple_and_scalar_keys_normalize_alike(self, store):
        store.create_table("t")
        store.put("t", ("pair", 1), "x")
        # A scalar key is the 1-tuple of itself.
        store.put("t", "k", "y")
        assert store.multi_get("t", [("pair", 1), "k", ("k",)]) == ["x", "y", "y"]

    def test_unknown_table_raises(self, store):
        with pytest.raises(UnknownTableError):
            store.multi_get("nope", ["a"])

    def test_results_do_not_alias_store_state(self, store):
        store.create_table("t")
        store.put("t", "a", [1, 2])
        (value,) = store.multi_get("t", ["a"])
        value.append(99)
        assert store.get("t", "a") == [1, 2]


class TestMergeSemantics:
    def test_merge_operator_resolution(self, store):
        store.create_table("idx", merge_operator="list_append")
        store.merge("idx", "k", [1])
        store.merge("idx", "k", [2, 3])
        assert store.multi_get("idx", ["k", "other"], []) == [[1, 2, 3], []]

    def test_tombstone_returns_default(self, store):
        store.create_table("t")
        store.put("t", "a", 1)
        store.delete("t", "a")
        assert store.multi_get("t", ["a"], "gone") == ["gone"]

    def test_merge_after_delete_restarts_from_empty(self, store):
        store.create_table("idx", merge_operator="list_append")
        store.merge("idx", "k", [1, 2])
        store.delete("idx", "k")
        store.merge("idx", "k", [3])
        assert store.multi_get("idx", ["k"]) == [[3]]

    def test_counter_and_max_maps(self, store):
        store.create_table("cnt", merge_operator="counter_map")
        store.create_table("mx", merge_operator="max_map")
        store.merge("cnt", "a", {"x": [1.0, 1]})
        store.merge("cnt", "a", {"x": [2.5, 1], "y": [1.0, 1]})
        store.merge("mx", "p", {"t1": 5.0})
        store.merge("mx", "p", {"t1": 3.0, "t2": 9.0})
        assert store.multi_get("cnt", ["a"]) == [{"x": [3.5, 2], "y": [1.0, 1]}]
        assert store.multi_get("mx", ["p"]) == [{"t1": 5.0, "t2": 9.0}]


class TestLayeredReads:
    """Batches must resolve across memtable / sealed / SSTable layers."""

    def test_deltas_straddling_flush(self, tmp_path):
        with LSMStore(tmp_path / "s") as store:
            store.create_table("idx", merge_operator="list_append")
            store.merge("idx", "k", [1])
            store.flush()  # base+delta now in an SSTable
            store.merge("idx", "k", [2])  # delta in the memtable
            store.put("idx", "fresh", [9])
            assert store.multi_get("idx", ["k", "fresh", "nope"], []) == [
                [1, 2],
                [9],
                [],
            ]

    def test_newer_sstable_shadows_older(self, tmp_path):
        with LSMStore(tmp_path / "s") as store:
            store.create_table("t")
            store.put("t", "a", "old")
            store.flush()
            store.put("t", "a", "new")
            store.flush()
            assert store.multi_get("t", ["a"]) == ["new"]

    def test_tombstone_in_newer_layer_hides_sstable_value(self, tmp_path):
        with LSMStore(tmp_path / "s") as store:
            store.create_table("t")
            store.put("t", "a", 1)
            store.put("t", "b", 2)
            store.flush()
            store.delete("t", "a")
            assert store.multi_get("t", ["a", "b"], "gone") == ["gone", 2]

    def test_equivalence_after_reopen(self, tmp_path):
        path = tmp_path / "s"
        with LSMStore(path, memtable_flush_bytes=64) as store:
            store.create_table("idx", merge_operator="list_append")
            store.create_table("t")
            for i in range(30):
                store.merge("idx", f"k{i % 5}", [i])
                store.put("t", f"p{i % 7}", i)
            store.delete("t", "p0")
        with LSMStore(path) as store:
            keys_idx = [f"k{i}" for i in range(7)]
            keys_t = [f"p{i}" for i in range(9)]
            assert store.multi_get("idx", keys_idx, []) == _loop_of_gets(
                store, "idx", keys_idx, []
            )
            assert store.multi_get("t", keys_t) == _loop_of_gets(store, "t", keys_t)


class TestMetrics:
    def test_batch_counters(self, store):
        store.create_table("t")
        store.put("t", "a", 1)
        before = store.metrics.snapshot()
        store.multi_get("t", ["a", "b", "a"])
        after = store.metrics.snapshot()
        assert after["multi_get_batches"] - before["multi_get_batches"] == 1
        assert after["gets"] - before["gets"] == 3
