"""Store metrics counters."""

from __future__ import annotations

from repro.kvstore import LSMStore


def test_counters_track_operations(tmp_path):
    with LSMStore(str(tmp_path / "db")) as store:
        store.create_table("t", merge_operator="list_append")
        store.put("t", "a", 1)
        store.merge("t", "b", [1])
        store.delete("t", "a")
        store.get("t", "b")
        list(store.scan("t"))
        store.flush()
        snapshot = store.metrics.snapshot()
    assert snapshot["puts"] == 1
    assert snapshot["merges"] == 1
    assert snapshot["deletes"] == 1
    assert snapshot["gets"] == 1
    assert snapshot["scans"] == 1
    assert snapshot["flushes"] == 1


def test_bloom_skips_counted(tmp_path):
    with LSMStore(str(tmp_path / "db"), auto_compact=False) as store:
        store.create_table("t")
        store.put("t", "exists", 1)
        store.flush()
        store.put("t", "other-key", 2)
        store.flush()
        # Point-reading a key present in only one of two SSTables should
        # skip the other via its bloom filter (false positives tolerated).
        for _ in range(20):
            store.get("t", "exists")
        snapshot = store.metrics.snapshot()
    assert snapshot["bloom_skips"] + snapshot["sstable_reads"] >= 20


def test_compaction_counted(tmp_path):
    with LSMStore(str(tmp_path / "db"), auto_compact=False) as store:
        store.create_table("t")
        for i in range(3):
            store.put("t", i, i)
            store.flush()
        store.compact_all()
        assert store.metrics.compactions == 1


def test_block_cache_counters(tmp_path):
    with LSMStore(str(tmp_path / "db"), auto_compact=False) as store:
        store.create_table("t")
        for i in range(50):
            store.put("t", i, "v" * 20)
        store.flush()
        store.get("t", 7)  # cold: loads the block from disk
        store.get("t", 7)  # warm: served from the block cache
        snapshot = store.metrics.snapshot()
    assert snapshot["block_cache_misses"] >= 1
    assert snapshot["block_cache_hits"] >= 1
    assert store.cache_stats()["hits"] >= 1


def test_cache_disabled_reads_still_work(tmp_path):
    with LSMStore(str(tmp_path / "db"), block_cache_bytes=0) as store:
        store.create_table("t")
        store.put("t", "k", 1)
        store.flush()
        assert store.get("t", "k") == 1
        snapshot = store.metrics.snapshot()
    assert snapshot["block_cache_hits"] == 0
    assert snapshot["block_cache_misses"] == 0
    assert store.cache_stats() == {}


def test_metrics_bump_is_thread_safe():
    import threading

    from repro.kvstore import StoreMetrics

    metrics = StoreMetrics()

    def bump_many():
        for _ in range(10_000):
            metrics.bump("gets")

    threads = [threading.Thread(target=bump_many) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert metrics.snapshot()["gets"] == 40_000


def test_snapshot_preserves_per_thread_bump_ordering():
    """Concurrent snapshots must not tear related counters apart.

    Writers bump ``gets`` *before* ``sstable_reads``; the documented
    snapshot guarantee (one atomic copy per shard) means no snapshot may
    ever observe more ``sstable_reads`` than ``gets``.  The old
    counter-major aggregation read each shard once per counter name and
    could report exactly that inversion.
    """
    import threading

    from repro.kvstore import StoreMetrics

    metrics = StoreMetrics()
    stop = threading.Event()
    violations: list[dict[str, int]] = []

    def writer():
        while not stop.is_set():
            metrics.bump("gets")
            metrics.bump("sstable_reads")

    def reader():
        while not stop.is_set():
            snapshot = metrics.snapshot()
            if snapshot["sstable_reads"] > snapshot["gets"]:
                violations.append(snapshot)

    threads = [threading.Thread(target=writer) for _ in range(3)]
    threads += [threading.Thread(target=reader) for _ in range(2)]
    for thread in threads:
        thread.start()
    import time

    time.sleep(0.3)
    stop.set()
    for thread in threads:
        thread.join()
    assert violations == []
    final = metrics.snapshot()
    assert final["gets"] >= final["sstable_reads"] > 0
