"""Store metrics counters."""

from __future__ import annotations

from repro.kvstore import LSMStore


def test_counters_track_operations(tmp_path):
    with LSMStore(str(tmp_path / "db")) as store:
        store.create_table("t", merge_operator="list_append")
        store.put("t", "a", 1)
        store.merge("t", "b", [1])
        store.delete("t", "a")
        store.get("t", "b")
        list(store.scan("t"))
        store.flush()
        snapshot = store.metrics.snapshot()
    assert snapshot["puts"] == 1
    assert snapshot["merges"] == 1
    assert snapshot["deletes"] == 1
    assert snapshot["gets"] == 1
    assert snapshot["scans"] == 1
    assert snapshot["flushes"] == 1


def test_bloom_skips_counted(tmp_path):
    with LSMStore(str(tmp_path / "db"), auto_compact=False) as store:
        store.create_table("t")
        store.put("t", "exists", 1)
        store.flush()
        store.put("t", "other-key", 2)
        store.flush()
        # Point-reading a key present in only one of two SSTables should
        # skip the other via its bloom filter (false positives tolerated).
        for _ in range(20):
            store.get("t", "exists")
        snapshot = store.metrics.snapshot()
    assert snapshot["bloom_skips"] + snapshot["sstable_reads"] >= 20


def test_compaction_counted(tmp_path):
    with LSMStore(str(tmp_path / "db"), auto_compact=False) as store:
        store.create_table("t")
        for i in range(3):
            store.put("t", i, i)
            store.flush()
        store.compact_all()
        assert store.metrics.compactions == 1
