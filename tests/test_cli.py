"""Command-line interface: every subcommand end-to-end."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.model import EventLog, Trace
from repro.logs.csv_log import write_csv_log


@pytest.fixture
def log_file(tmp_path):
    log = EventLog(
        [
            Trace.from_pairs("t1", [("A", 1.0), ("B", 2.0), ("C", 3.0)]),
            Trace.from_pairs("t2", [("A", 1.0), ("C", 2.0)]),
        ]
    )
    path = str(tmp_path / "log.csv")
    write_csv_log(log, path)
    return path


@pytest.fixture
def store_dir(tmp_path, log_file):
    store = str(tmp_path / "ix")
    assert main(["index", "--log", log_file, "--store", store]) == 0
    return store


class TestGenerate:
    def test_csv_output(self, tmp_path, capsys):
        out = str(tmp_path / "gen.csv")
        code = main(
            ["generate", "--dataset", "bpi_2013", "--scale", "0.01", "--out", out]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out

    def test_xes_output(self, tmp_path):
        out = str(tmp_path / "gen.xes")
        assert main(
            ["generate", "--dataset", "max_100", "--scale", "0.05", "--out", out]
        ) == 0
        from repro.logs.xes import read_xes

        assert len(read_xes(out)) > 0


class TestIndexAndQuery:
    def test_index_reports_counts(self, log_file, tmp_path, capsys):
        store = str(tmp_path / "ix")
        assert main(["index", "--log", log_file, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "indexed 5 events" in out

    def test_detect(self, store_dir, capsys):
        assert main(["detect", "--store", store_dir, "A,C"]) == 0
        out = capsys.readouterr().out
        assert "2 completions" in out
        assert "t1" in out and "t2" in out

    def test_detect_with_within(self, store_dir, capsys):
        assert main(["detect", "--store", store_dir, "A,C", "--within", "1.0"]) == 0
        assert "1 completions" in capsys.readouterr().out

    def test_detect_stam(self, store_dir, capsys):
        assert main(["detect", "--store", store_dir, "A,C", "--stam"]) == 0
        assert "2 completions" in capsys.readouterr().out

    def test_stats(self, store_dir, capsys):
        assert main(["stats", "--store", store_dir, "A,B,C"]) == 0
        out = capsys.readouterr().out
        assert "A -> B" in out and "upper bound" in out

    def test_continue(self, store_dir, capsys):
        assert main(["continue", "--store", store_dir, "A", "--mode", "accurate"]) == 0
        out = capsys.readouterr().out
        assert "score=" in out

    def test_detect_explain(self, store_dir, capsys):
        assert main(["detect", "--store", store_dir, "A,C", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "plan:" in out and "cardinality" in out

    def test_detect_profile(self, store_dir, capsys):
        assert main(
            ["detect", "--store", store_dir, "A,B,C", "--explain", "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert "plan:" in out
        assert "profile:" in out
        assert "query.detect" in out
        for stage in ("plan ", "fetch_postings", "intersect", "join", "materialize"):
            assert stage in out

    def test_empty_pattern_rejected(self, store_dir):
        with pytest.raises(SystemExit):
            main(["detect", "--store", store_dir, ",,"])


class TestProfile:
    def test_profile_output(self, log_file, capsys):
        assert main(["profile", "--log", log_file]) == 0
        out = capsys.readouterr().out
        assert "Traces" in out and "events/trace" in out


class TestMetrics:
    def test_metrics_renders_prometheus_snapshot(self, store_dir, capsys):
        assert main(["metrics", "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_store_gets_total counter" in out
        assert "# HELP repro_store_sstables" in out
        assert f'store="{store_dir}"' in out

    def test_metrics_with_pattern_moves_counters(self, store_dir, capsys):
        assert main(["metrics", "--store", store_dir, "--pattern", "A,C"]) == 0
        out = capsys.readouterr().out
        assert "# ran detect" in out
        for line in out.splitlines():
            if line.startswith("repro_store_gets_total"):
                assert int(line.rsplit(" ", 1)[1]) > 0
                break
        else:  # pragma: no cover - the metric must exist
            raise AssertionError("repro_store_gets_total not rendered")


class TestFaults:
    def test_single_seed_replay(self, capsys):
        assert main(["faults", "--seed", "3", "--ops", "120"]) == 0
        out = capsys.readouterr().out
        assert "seed 3: ok" in out

    def test_seed_range_sweep(self, capsys):
        assert main(["faults", "--seeds", "0:3", "--ops", "80"]) == 0
        out = capsys.readouterr().out
        assert out.count(": ok") == 3

    def test_requires_seed_argument(self):
        with pytest.raises(SystemExit):
            main(["faults"])

    def test_keeps_directory_when_path_given(self, tmp_path, capsys):
        keep = str(tmp_path / "kept")
        assert main(["faults", "--seed", "1", "--ops", "80", "--path", keep]) == 0
        import os

        assert os.path.isdir(os.path.join(keep, "seed-1"))
