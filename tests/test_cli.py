"""Command-line interface: every subcommand end-to-end."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.model import EventLog, Trace
from repro.logs.csv_log import write_csv_log


@pytest.fixture
def log_file(tmp_path):
    log = EventLog(
        [
            Trace.from_pairs("t1", [("A", 1.0), ("B", 2.0), ("C", 3.0)]),
            Trace.from_pairs("t2", [("A", 1.0), ("C", 2.0)]),
        ]
    )
    path = str(tmp_path / "log.csv")
    write_csv_log(log, path)
    return path


@pytest.fixture
def store_dir(tmp_path, log_file):
    store = str(tmp_path / "ix")
    assert main(["index", "--log", log_file, "--store", store]) == 0
    return store


class TestGenerate:
    def test_csv_output(self, tmp_path, capsys):
        out = str(tmp_path / "gen.csv")
        code = main(
            ["generate", "--dataset", "bpi_2013", "--scale", "0.01", "--out", out]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out

    def test_xes_output(self, tmp_path):
        out = str(tmp_path / "gen.xes")
        assert main(
            ["generate", "--dataset", "max_100", "--scale", "0.05", "--out", out]
        ) == 0
        from repro.logs.xes import read_xes

        assert len(read_xes(out)) > 0


class TestIndexAndQuery:
    def test_index_reports_counts(self, log_file, tmp_path, capsys):
        store = str(tmp_path / "ix")
        assert main(["index", "--log", log_file, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "indexed 5 events" in out

    def test_detect(self, store_dir, capsys):
        assert main(["detect", "--store", store_dir, "A,C"]) == 0
        out = capsys.readouterr().out
        assert "2 completions" in out
        assert "t1" in out and "t2" in out

    def test_detect_with_within(self, store_dir, capsys):
        assert main(["detect", "--store", store_dir, "A,C", "--within", "1.0"]) == 0
        assert "1 completions" in capsys.readouterr().out

    def test_detect_stam(self, store_dir, capsys):
        assert main(["detect", "--store", store_dir, "A,C", "--stam"]) == 0
        assert "2 completions" in capsys.readouterr().out

    def test_stats(self, store_dir, capsys):
        assert main(["stats", "--store", store_dir, "A,B,C"]) == 0
        out = capsys.readouterr().out
        assert "A -> B" in out and "upper bound" in out

    def test_continue(self, store_dir, capsys):
        assert main(["continue", "--store", store_dir, "A", "--mode", "accurate"]) == 0
        out = capsys.readouterr().out
        assert "score=" in out

    def test_detect_explain(self, store_dir, capsys):
        assert main(["detect", "--store", store_dir, "A,C", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "plan:" in out and "cardinality" in out

    def test_detect_profile(self, store_dir, capsys):
        assert main(
            ["detect", "--store", store_dir, "A,B,C", "--explain", "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert "plan:" in out
        assert "profile:" in out
        assert "query.detect" in out
        for stage in ("plan ", "fetch_postings", "intersect", "join", "materialize"):
            assert stage in out

    def test_empty_pattern_rejected(self, store_dir):
        with pytest.raises(SystemExit):
            main(["detect", "--store", store_dir, ",,"])

    def test_detect_composite_expression(self, store_dir, capsys):
        assert main(
            ["detect", "--store", store_dir, "--pattern", "SEQ(A, (B|C)) WITHIN 2"]
        ) == 0
        out = capsys.readouterr().out
        assert "2 completions of SEQ(A, (B|C)) WITHIN 2" in out
        assert "t1" in out and "t2" in out

    def test_detect_composite_explain_shows_groups(self, store_dir, capsys):
        assert main(
            ["detect", "--store", store_dir, "--pattern", "SEQ(A, !X, C)", "--explain"]
        ) == 0
        out = capsys.readouterr().out
        assert "plan:" in out
        assert "A -> C" in out
        assert "negated element !X" in out

    def test_detect_composite_profile_has_verify_stage(self, store_dir, capsys):
        assert main(
            ["detect", "--store", store_dir, "--pattern", "SEQ(A, C+)", "--profile"]
        ) == 0
        out = capsys.readouterr().out
        for stage in ("plan ", "fetch_postings", "intersect", "verify"):
            assert stage in out

    def test_detect_rejects_both_pattern_forms(self, store_dir):
        with pytest.raises(SystemExit):
            main(["detect", "--store", store_dir, "A,B", "--pattern", "SEQ(A, B)"])

    def test_detect_rejects_within_flag_on_composite(self, store_dir):
        with pytest.raises(SystemExit):
            main(
                ["detect", "--store", store_dir, "--pattern", "SEQ(A, B)",
                 "--within", "5"]
            )

    def test_detect_rejects_bad_expression(self, store_dir):
        with pytest.raises(SystemExit):
            main(["detect", "--store", store_dir, "--pattern", "SEQ(!A)"])

    def test_detect_requires_some_pattern(self, store_dir):
        with pytest.raises(SystemExit):
            main(["detect", "--store", store_dir])


class TestProfile:
    def test_profile_output(self, log_file, capsys):
        assert main(["profile", "--log", log_file]) == 0
        out = capsys.readouterr().out
        assert "Traces" in out and "events/trace" in out


class TestMetrics:
    def test_metrics_renders_prometheus_snapshot(self, store_dir, capsys):
        assert main(["metrics", "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_store_gets_total counter" in out
        assert "# HELP repro_store_sstables" in out
        assert f'store="{store_dir}"' in out

    def test_metrics_with_pattern_moves_counters(self, store_dir, capsys):
        assert main(["metrics", "--store", store_dir, "--pattern", "A,C"]) == 0
        out = capsys.readouterr().out
        assert "# ran detect" in out
        for line in out.splitlines():
            if line.startswith("repro_store_gets_total"):
                assert int(line.rsplit(" ", 1)[1]) > 0
                break
        else:  # pragma: no cover - the metric must exist
            raise AssertionError("repro_store_gets_total not rendered")


class TestFaults:
    def test_single_seed_replay(self, capsys):
        assert main(["faults", "--seed", "3", "--ops", "120"]) == 0
        out = capsys.readouterr().out
        assert "seed 3: ok" in out

    def test_seed_range_sweep(self, capsys):
        assert main(["faults", "--seeds", "0:3", "--ops", "80"]) == 0
        out = capsys.readouterr().out
        assert out.count(": ok") == 3

    def test_requires_seed_argument(self):
        with pytest.raises(SystemExit):
            main(["faults"])

    def test_keeps_directory_when_path_given(self, tmp_path, capsys):
        keep = str(tmp_path / "kept")
        assert main(["faults", "--seed", "1", "--ops", "80", "--path", keep]) == 0
        import os

        assert os.path.isdir(os.path.join(keep, "seed-1"))


class TestDiffcheck:
    def test_single_seed_replay_prints_report(self, capsys):
        assert main(["diffcheck", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "seed 7: ok" in out
        assert "1 seeds, 0 divergences" in out

    def test_seed_range_sweep(self, capsys):
        assert main(["diffcheck", "--seeds", "0:10"]) == 0
        out = capsys.readouterr().out
        assert "10 seeds, 0 divergences" in out

    def test_bad_seed_range_rejected(self):
        with pytest.raises(SystemExit):
            main(["diffcheck", "--seeds", "nope"])

    def test_divergence_exits_nonzero(self, monkeypatch, capsys):
        """Wire a fake diverging case through run_case: the command must
        print the report (with the reproducer line) and return 1."""
        import repro.cli as cli
        from repro.core.pattern import Pattern, PatternElement
        from repro.difftest import CaseResult

        def fake_run_case(seed):
            return CaseResult(
                seed=seed,
                pattern=Pattern((PatternElement(types=("A",)),)),
                log={"t0": [("A", 0.0)]},
                indexed={("t0", (0.0,))},
                oracle=set(),
            )

        import repro.difftest as difftest

        monkeypatch.setattr(difftest, "run_case", fake_run_case)
        assert main(["diffcheck", "--seed", "5"]) == 1
        out = capsys.readouterr().out
        assert "DIVERGENCE" in out
        assert "diffcheck --seed 5" in out
        assert "1 seeds, 1 divergences" in out


class TestStoreStats:
    def test_stats_without_pattern_reports_storage(self, tmp_path, log_file, capsys):
        store = str(tmp_path / "ix")
        assert main(
            ["index", "--log", log_file, "--store", store, "--compression", "zlib"]
        ) == 0
        capsys.readouterr()
        assert main(["stats", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "index:" in out  # per-table record counts
        assert "raw bytes:" in out
        assert "compression ratio:" in out

    def test_stats_with_pattern_still_works(self, store_dir, capsys):
        assert main(["stats", "A,C", "--store", store_dir, "--mmap"]) == 0
        assert "A -> C" in capsys.readouterr().out

    def test_faults_accepts_compression(self, capsys):
        assert main(["faults", "--seed", "3", "--compression", "zlib"]) == 0
        assert "seed 3: ok" in capsys.readouterr().out


class TestSharded:
    @pytest.fixture
    def sharded_store(self, tmp_path, log_file):
        store = str(tmp_path / "sx")
        assert main(
            ["index", "--log", log_file, "--store", store, "--shards", "2"]
        ) == 0
        return store

    def test_index_writes_manifest(self, sharded_store):
        from repro.shard import is_sharded_store, read_manifest

        assert is_sharded_store(sharded_store)
        assert read_manifest(sharded_store)["num_shards"] == 2

    def test_detect_matches_single_store(
        self, sharded_store, store_dir, capsys
    ):
        assert main(["detect", "A,B", "--store", sharded_store]) == 0
        sharded_out = capsys.readouterr().out
        assert main(["detect", "A,B", "--store", store_dir]) == 0
        assert capsys.readouterr().out == sharded_out
        assert "1 completions" in sharded_out

    def test_composite_detect(self, sharded_store, capsys):
        assert main(
            ["detect", "--store", sharded_store, "--pattern", "SEQ(A, (B|C))"]
        ) == 0
        assert "completions of SEQ" in capsys.readouterr().out

    def test_incremental_index_reuses_manifest(
        self, tmp_path, log_file, sharded_store, capsys
    ):
        # No --shards on reopen: the manifest supplies the count.
        from repro.core.model import EventLog, Trace
        from repro.logs.csv_log import write_csv_log

        more = str(tmp_path / "more.csv")
        write_csv_log(
            EventLog([Trace.from_pairs("t9", [("A", 1.0), ("B", 2.0)])]), more
        )
        assert main(["index", "--log", more, "--store", sharded_store]) == 0
        assert "1 traces (1 new)" in capsys.readouterr().out

    def test_stats_aggregates_shards(self, sharded_store, capsys):
        assert main(["stats", "--store", sharded_store]) == 0
        out = capsys.readouterr().out
        assert "(2 shards)" in out
        assert "shard 00:" in out
        assert "shard 01:" in out
        assert "totals:" in out
        assert "compression ratio:" in out

    def test_pattern_stats_on_sharded_store(self, sharded_store, capsys):
        assert main(["stats", "A,B", "--store", sharded_store]) == 0
        assert "A -> B" in capsys.readouterr().out

    def test_continue_is_refused(self, sharded_store):
        with pytest.raises(SystemExit, match="single-store"):
            main(["continue", "A,B", "--store", sharded_store])

    def test_metrics_exposes_shard_gauges(self, sharded_store, capsys):
        assert main(
            ["metrics", "--store", sharded_store, "--pattern", "A,B"]
        ) == 0
        out = capsys.readouterr().out
        assert "repro_shard_count" in out
        assert "repro_shard_fanout_total" in out


class TestServeAndLoadgen:
    def test_serve_then_loadgen(self, tmp_path, log_file, capsys):
        import json as json_mod
        import re
        import threading
        import time

        from repro.service import ServiceClient

        store = str(tmp_path / "sx")
        assert main(
            ["index", "--log", log_file, "--store", store, "--shards", "2"]
        ) == 0
        capsys.readouterr()

        results = {}

        def serve():
            results["code"] = main(
                ["serve", "--store", store, "--port", "0", "--duration", "5"]
            )

        thread = threading.Thread(target=serve)
        thread.start()
        # The ephemeral port is printed, not predictable; poll the output.
        port = None
        for _ in range(200):
            found = re.search(
                r"on 127\.0\.0\.1:(\d+)", capsys.readouterr().out
            )
            if found:
                port = int(found.group(1))
                break
            time.sleep(0.02)
        assert port is not None, "server never announced its port"
        with ServiceClient("127.0.0.1", port) as client:
            assert client.ping() == "pong"
        assert main(
            [
                "loadgen",
                "--port",
                str(port),
                "--pattern",
                "A,B",
                "--pattern",
                "SEQ(A, (B|C))",
                "--clients",
                "2",
                "--duration",
                "1.0",
            ]
        ) == 0
        report = json_mod.loads(capsys.readouterr().out)
        assert report["errors"] == 0
        assert report["requests"] > 0
        thread.join(timeout=20.0)
        assert not thread.is_alive()
        assert results["code"] == 0


class TestFeedAndIngest:
    def test_feed_then_local_ingest_then_detect(
        self, log_file, tmp_path, capsys
    ):
        feed = str(tmp_path / "events.jsonl")
        store = str(tmp_path / "ix")
        assert main(["feed", "--log", log_file, "--feed", feed]) == 0
        assert "appended 5 events" in capsys.readouterr().out
        assert main(["ingest", "--feed", feed, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "applied 5 events" in out
        assert "lag 0 bytes" in out
        assert main(["detect", "--store", store, "A,C"]) == 0
        assert "completions" in capsys.readouterr().out

    def test_rerun_resumes_from_checkpoint(self, log_file, tmp_path, capsys):
        feed = str(tmp_path / "events.jsonl")
        store = str(tmp_path / "ix")
        assert main(["feed", "--log", log_file, "--feed", feed]) == 0
        assert main(["ingest", "--feed", feed, "--store", store]) == 0
        capsys.readouterr()
        assert main(["ingest", "--feed", feed, "--store", store]) == 0
        assert "applied 0 events" in capsys.readouterr().out

    def test_metrics_flag_renders_the_registry(
        self, log_file, tmp_path, capsys
    ):
        feed = str(tmp_path / "events.jsonl")
        assert main(["feed", "--log", log_file, "--feed", feed]) == 0
        assert main(
            [
                "ingest",
                "--feed",
                feed,
                "--store",
                str(tmp_path / "ix"),
                "--metrics",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "repro_ingest_events_total" in out
        assert "repro_ingest_freshness_events_total" in out

    def test_ingest_requires_exactly_one_target(self, tmp_path):
        feed = str(tmp_path / "events.jsonl")
        with pytest.raises(SystemExit, match="exactly one"):
            main(["ingest", "--feed", feed])
        with pytest.raises(SystemExit, match="exactly one"):
            main(
                [
                    "ingest",
                    "--feed",
                    feed,
                    "--store",
                    str(tmp_path / "ix"),
                    "--port",
                    "7071",
                ]
            )

    def test_faults_ingest_sweep(self, capsys):
        assert main(["faults", "--ingest", "--seeds", "0:2"]) == 0
        out = capsys.readouterr().out
        assert "seed 0: ok" in out
        assert "converged" in out
