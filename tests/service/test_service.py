"""Query service smoke tests: protocol, admission control, clean shutdown.

The tier-1 tests here are deliberately small: a real server on an
ephemeral port, four concurrent clients, and hard assertions that
shutdown leaks neither threads nor sockets.  The heavy closed-loop sweep
lives behind ``pytest -m service``.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.core.engine import SequenceIndex
from repro.core.model import EventLog
from repro.core.policies import Policy
from repro.service import (
    MAX_FRAME_BYTES,
    ProtocolError,
    SequenceService,
    ServiceClient,
    ServiceError,
    recv_frame,
    run_loadgen,
    send_frame,
)
from repro.shard import ShardedSequenceIndex


def _service_threads():
    return [
        t
        for t in threading.enumerate()
        if t.name.startswith(("repro-service", "loadgen"))
    ]


def _make_engine(num_shards=2):
    log = EventLog.from_dict(
        {
            "t1": list("ABAB"),
            "t2": list("ABC"),
            "t3": list("CBA"),
            "t4": list("AABB"),
        }
    )
    if num_shards == 1:
        engine = SequenceIndex(policy=Policy.STNM)
    else:
        engine = ShardedSequenceIndex(
            [SequenceIndex(policy=Policy.STNM) for _ in range(num_shards)]
        )
    engine.update(log)
    return engine


@pytest.fixture(params=[1, 2], ids=["single", "sharded"])
def service(request):
    engine = _make_engine(request.param)
    svc = SequenceService(engine, port=0)
    svc.start()
    yield svc
    svc.shutdown()
    engine.close()
    assert _service_threads() == []


class TestSmoke:
    def test_ping_and_queries(self, service):
        host, port = service.address
        with ServiceClient(host, port) as client:
            assert client.ping() == "pong"
            matches = client.detect(["A", "B"])
            assert matches and all(
                set(m) == {"trace_id", "timestamps"} for m in matches
            )
            assert client.count(["A", "B"]) == len(matches)
            assert client.contains(["A", "B"]) == sorted(
                {m["trace_id"] for m in matches}
            )
            composite = client.detect("SEQ(A, B) WITHIN 3")
            assert all(
                m["timestamps"][-1] - m["timestamps"][0] <= 3 for m in composite
            )

    def test_ingest_becomes_visible(self, service):
        host, port = service.address
        with ServiceClient(host, port) as client:
            before = client.count(["A", "B"])
            stats = client.ingest(
                [["fresh-1", "A", 1.0], ["fresh-1", "B", 2.0]]
            )
            assert stats["events_indexed"] == 2
            assert client.count(["A", "B"]) == before + 1
            assert "fresh-1" in client.contains(["A", "B"])

    def test_four_concurrent_clients(self, service):
        host, port = service.address
        errors = []

        def hammer(worker):
            try:
                with ServiceClient(host, port) as client:
                    for i in range(25):
                        if i % 5 == 0:
                            client.ingest(
                                [[f"w{worker}", "A", float(i)],
                                 [f"w{worker}", "B", i + 0.5]]
                            )
                        else:
                            client.detect(["A", "B"])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

    def test_bad_requests_keep_connection_alive(self, service):
        host, port = service.address
        with ServiceClient(host, port) as client:
            with pytest.raises(ServiceError) as exc_info:
                client._call("no-such-op")
            assert exc_info.value.code == "bad_request"
            with pytest.raises(ServiceError) as exc_info:
                client.detect("SEQ(")
            assert exc_info.value.code == "bad_request"
            with pytest.raises(ServiceError) as exc_info:
                client.detect([])
            assert exc_info.value.code == "bad_request"
            # The connection survived all three failures.
            assert client.ping() == "pong"

    def test_expired_deadline_is_reported(self, service):
        host, port = service.address
        with ServiceClient(host, port) as client:
            with pytest.raises(ServiceError) as exc_info:
                client.detect(["A", "B"], deadline_ms=0.0)
            assert exc_info.value.code == "deadline"

    def test_stats_reports_engine_shape(self, service):
        host, port = service.address
        with ServiceClient(host, port) as client:
            stats = client.stats()
        if getattr(service.engine, "num_shards", None):
            assert stats["num_shards"] == service.engine.num_shards
            assert len(stats["shards"]) == service.engine.num_shards


class TestShutdown:
    def test_drain_refuses_new_requests(self):
        engine = _make_engine()
        svc = SequenceService(engine, port=0)
        svc.start()
        host, port = svc.address
        client = ServiceClient(host, port)
        try:
            assert client.ping() == "pong"
            svc.shutdown()
            with pytest.raises((ServiceError, OSError)) as exc_info:
                client.ping()
            if isinstance(exc_info.value, ServiceError):
                assert exc_info.value.code == "shutdown"
        finally:
            client.close()
            engine.close()
        assert _service_threads() == []

    def test_port_is_released(self):
        engine = _make_engine()
        svc = SequenceService(engine, port=0)
        svc.start()
        host, port = svc.address
        svc.shutdown()
        engine.close()
        # The listener socket is gone: binding the port again succeeds.
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            probe.bind((host, port))
        finally:
            probe.close()

    def test_double_shutdown_is_idempotent(self):
        engine = _make_engine()
        svc = SequenceService(engine, port=0)
        svc.start()
        svc.shutdown()
        svc.shutdown()
        engine.close()


class TestAdmissionControl:
    class _SlowEngine:
        """Duck-typed engine whose detect blocks until released."""

        def __init__(self):
            self.release = threading.Event()
            self.entered = threading.Event()

        def detect(self, pattern, partition="", max_matches=None, within=None):
            self.entered.set()
            self.release.wait(timeout=10.0)
            return []

        def close(self):
            pass

    def test_overloaded_when_slots_exhausted(self):
        engine = self._SlowEngine()
        svc = SequenceService(engine, port=0, max_inflight=1)
        svc.start()
        host, port = svc.address
        try:
            slow = ServiceClient(host, port)
            result = {}

            def blocked():
                result["matches"] = slow.detect(["A", "B"])

            thread = threading.Thread(target=blocked)
            thread.start()
            assert engine.entered.wait(timeout=5.0)
            with ServiceClient(host, port) as fast:
                with pytest.raises(ServiceError) as exc_info:
                    fast.detect(["A", "B"])
                assert exc_info.value.code == "overloaded"
            engine.release.set()
            thread.join(timeout=5.0)
            assert result["matches"] == []
            slow.close()
        finally:
            engine.release.set()
            svc.shutdown()
        assert _service_threads() == []


class TestProtocol:
    def test_oversized_frame_is_refused(self):
        left, right = socket.socketpair()
        try:
            with pytest.raises(ProtocolError):
                send_frame(left, {"pad": "x" * (MAX_FRAME_BYTES + 1)})
        finally:
            left.close()
            right.close()

    def test_roundtrip_and_eof(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, {"id": 1, "op": "ping"})
            assert recv_frame(right) == {"id": 1, "op": "ping"}
            left.close()
            assert recv_frame(right) is None
        finally:
            right.close()

    def test_mid_frame_eof_is_an_error(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\x00\x00\x00\x10abc")  # promises 16, sends 3
            left.close()
            with pytest.raises(ProtocolError):
                recv_frame(right)
        finally:
            right.close()


@pytest.mark.service
class TestLoadSweep:
    """Heavy closed-loop sweep; opt in with ``pytest -m service``."""

    def test_sustained_mixed_load(self):
        engine = _make_engine(num_shards=4)
        svc = SequenceService(engine, port=0, max_inflight=16)
        svc.start()
        host, port = svc.address
        try:
            report = run_loadgen(
                host,
                port,
                patterns=[["A", "B"], "SEQ(A, (B|C)) WITHIN 5"],
                clients=8,
                duration_s=5.0,
                write_fraction=0.3,
                seed=11,
            )
            assert report.errors == 0
            assert report.qps > 0
            assert report.latency_ms["read"]["p99"] >= report.latency_ms[
                "read"
            ]["p50"]
        finally:
            svc.shutdown()
            engine.close()
        assert _service_threads() == []
