"""Web clickstream analysis: funnels and next-click prediction.

Models the paper's e-shop examples: sessions of clicks where we detect
"search immediately followed by add-to-cart" (strict contiguity) and
"three searches with no purchase" (skip-till-next-match with a negative
check), and predict the next click from a partial session.

Run with::

    python examples/clickstream_prediction.py
"""

import random

from repro import Event, EventLog, Policy, SequenceIndex

CLICKS = ("home", "search", "product", "cart", "checkout", "purchase", "help")


def synthesize_sessions(num_sessions: int, seed: int = 11) -> EventLog:
    """Random-walk shopper sessions with realistic click transitions."""
    transitions = {
        "home": ["search", "search", "product", "help"],
        "search": ["product", "search", "product", "home"],
        "product": ["cart", "search", "product", "home"],
        "cart": ["checkout", "search", "product"],
        "checkout": ["purchase", "cart"],
        "purchase": ["home"],
        "help": ["home", "search"],
    }
    rng = random.Random(seed)
    events = []
    for s in range(num_sessions):
        click = "home"
        ts = 0.0
        for _ in range(rng.randint(3, 25)):
            ts += rng.uniform(1.0, 90.0)
            events.append(Event(f"session_{s}", click, ts))
            click = rng.choice(transitions[click])
    return EventLog.from_events(events, name="clickstream")


def main() -> None:
    log = synthesize_sessions(2000)
    print(f"{len(log)} sessions, {log.num_events} clicks")

    # Two indices: SC for strict funnels, STNM for gapped behaviour.
    sc_index = SequenceIndex(policy=Policy.SC)
    sc_index.update(log)
    stnm_index = SequenceIndex(policy=Policy.STNM)
    stnm_index.update(log)

    # Funnel: search immediately followed by product view, then cart.
    funnel = ["search", "product", "cart"]
    strict = sc_index.detect(funnel)
    gapped = stnm_index.detect(funnel)
    print(f"\nfunnel {funnel}:")
    print(f"  strict-contiguity completions:    {len(strict)}")
    print(f"  skip-till-next-match completions: {len(gapped)}")

    # Sessions with repeated searches that never purchase afterwards.  Note
    # a subtlety of the paper's method: patterns repeating one activity
    # three or more times (X, X, X) cannot chain through the pairwise index
    # (same-type pairs are disjoint), so repeated-activity funnels use the
    # skip-till-any-match extension, which enumerates real embeddings.
    searched = {
        m.trace_id
        for m in stnm_index.detect(["search", "search"], policy=Policy.STAM,
                                   max_matches=100_000)
    }
    converted = {
        m.trace_id
        for m in stnm_index.detect(
            ["search", "search", "purchase"], policy=Policy.STAM,
            max_matches=100_000,
        )
    }
    print(
        f"\nsessions with 2+ searches: {len(searched)}; "
        f"never purchasing afterwards: {len(searched - converted)}"
    )

    # Next-click prediction for an in-flight session, three ways.
    partial = ["search", "product"]
    print(f"\nnext click after {partial}:")
    for mode, kwargs in (("fast", {}), ("hybrid", {"top_k": 3}), ("accurate", {})):
        proposals = stnm_index.continuations(partial, mode=mode, **kwargs)
        top = proposals[0]
        print(f"  {mode:>8}: {top.event} (score {top.score:.3f})")

    # Constrain predictions to clicks within 2 minutes of the last one.
    quick = stnm_index.continuations(partial, mode="accurate", within=120.0)
    print(f"  accurate within 120s: {quick[0].event}")


if __name__ == "__main__":
    main()
