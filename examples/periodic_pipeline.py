"""The full Figure-1 architecture: log database -> periodic indexing tick.

Events stream into an append-only log database; a pipeline tick (the
paper's periodic update, e.g. an hourly cron) drains everything unindexed
into a durable sequence index, routing each event to its month's index
partition.  Queries run against the union of partitions at any time.

Run with::

    python examples/periodic_pipeline.py
"""

import random
import tempfile

from repro import Event, Policy, SequenceIndex
from repro.kvstore import LSMStore
from repro.logs.logdb import IndexingPipeline, LogDatabase

ACTIVITIES = ("create", "review", "approve", "reject", "archive")

DAY = 86_400.0


def _simulate_day(day: int, rng: random.Random) -> list[Event]:
    """A day's worth of workflow events, some new cases, some continuing."""
    events = []
    base = day * DAY
    for case in range(day * 5, day * 5 + 8):  # cases overlap days
        ts = base + rng.uniform(0, DAY / 2)
        for activity in rng.sample(ACTIVITIES, rng.randint(2, len(ACTIVITIES))):
            events.append(Event(f"case_{case}", activity, round(ts, 3)))
            ts += rng.uniform(60, DAY / 4)
    return events


def main() -> None:
    rng = random.Random(7)
    workdir = tempfile.mkdtemp(prefix="repro-pipeline-")
    database = LogDatabase(f"{workdir}/logdb")
    index = SequenceIndex(LSMStore(f"{workdir}/index"), policy=Policy.STNM)

    def month_of(event: Event) -> str:
        return f"month-{int(event.timestamp // (30 * DAY)):02d}"

    pipeline = IndexingPipeline(database, index, partition_fn=month_of)

    for day in range(40):
        database.append(_simulate_day(day, rng))
        if day % 7 == 6:  # weekly indexing tick
            stats = pipeline.run_once()
            print(
                f"day {day:>2}: indexed {stats.events_indexed} events "
                f"({stats.pairs_created} pairs), checkpoint at byte "
                f"{stats.checkpoint}"
            )
    stats = pipeline.run_once()  # final drain
    print(f"final drain: {stats.events_indexed} events")

    pattern = ["create", "approve", "archive"]
    matches = index.detect(pattern, partition=None)
    print(f"\n{pattern}: {len(matches)} completions across all partitions")
    proposals = index.continuations(["create", "review"], mode="hybrid", top_k=3)
    print("after create -> review, most likely next:")
    for proposal in proposals[:3]:
        print(f"  {proposal.event} (score {proposal.score:.2e})")
    index.close()


if __name__ == "__main__":
    main()
