"""Side-by-side of the four systems on one log (a mini Table 6/8).

Builds our index, the suffix-array matcher ([19]), the Elasticsearch-style
engine and the SASE CEP engine over the same process log, then compares
pre-processing time, query time and result agreement.

Run with::

    python examples/compare_systems.py
"""

import time

from repro import Policy, SequenceIndex
from repro.baselines import ElasticIndex, SaseEngine, SuffixArrayMatcher
from repro.logs.datasets import load_dataset
from repro.logs.generator import random_patterns


def timed(label: str, fn):
    start = time.perf_counter()
    result = fn()
    print(f"  {label:<28} {time.perf_counter() - start:8.3f}s")
    return result


def main() -> None:
    log = load_dataset("med_5000", scale=0.2)
    print(f"dataset: {log.name}, {len(log)} traces, {log.num_events} events")

    print("\npre-processing:")
    ours = timed("ours (STNM pair index)", lambda: _build(log))
    ours_sc = timed("ours (SC pair index)", lambda: _build(log, Policy.SC))
    suffix = timed("[19] suffix array", lambda: SuffixArrayMatcher(log))
    elastic = timed("elasticsearch-like", lambda: ElasticIndex.from_log(log))
    sase = SaseEngine(log)  # no pre-processing, by design
    print("  sase                          (none)")

    patterns = random_patterns(log, length=3, count=50, seed=4)
    print(f"\nquery workload: {len(patterns)} STNM patterns of length 3")
    print("total query time:")
    ours_matches = timed("ours", lambda: [ours.detect(p) for p in patterns])
    es_matches = timed("elasticsearch-like", lambda: [elastic.span_search(p) for p in patterns])
    timed("sase (scan per query)", lambda: [sase.query(p) for p in patterns])

    agree = sum(
        1
        for mine, theirs in zip(ours_matches, es_matches)
        if {m.trace_id for m in mine} <= {m.trace_id for m in theirs}
    )
    print(
        f"\ntrace sets: ours within elasticsearch-like span results for "
        f"{agree}/{len(patterns)} patterns"
    )

    # SC agreement between our SC index and the suffix-array baseline.
    sc_patterns = random_patterns(log, length=2, count=20, seed=9)
    same = 0
    for pattern in sc_patterns:
        lhs = {m.trace_id for m in ours_sc.detect(pattern)}
        rhs = set(suffix.contains(pattern))
        same += lhs == rhs
    print(f"SC trace sets identical to [19] for {same}/{len(sc_patterns)} patterns")


def _build(log, policy: Policy = Policy.STNM) -> SequenceIndex:
    index = SequenceIndex(policy=policy)
    index.update(log)
    return index


if __name__ == "__main__":
    main()
