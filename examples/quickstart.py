"""Quickstart: index a tiny log, then run every query type.

Run with::

    python examples/quickstart.py
"""

from repro import EventLog, Policy, SequenceIndex


def main() -> None:
    # The paper's running example (§2.1): the trace <AAABAACB>, plus a few
    # friends.  Timestamps default to event positions.
    log = EventLog.from_dict(
        {
            "session_1": list("AAABAACB"),
            "session_2": list("ABCABC"),
            "session_3": list("AACCB"),
        }
    )

    # Build the inverted event-pair index (skip-till-next-match policy).
    index = SequenceIndex(policy=Policy.STNM)
    stats = index.update(log)
    print(f"indexed {stats.events_indexed} events, {stats.pairs_created} pairs\n")

    # 1. Pattern detection: every completion of A..B across all traces.
    print("detect A->B (skip-till-next-match):")
    for match in index.detect(["A", "B"]):
        print(f"  {match.trace_id}: timestamps {match.timestamps}")

    # 2. Statistics: constant-time pairwise counts and durations.
    pattern = ["A", "A", "B"]
    pattern_stats = index.statistics(pattern)
    print(f"\nstatistics for {pattern}:")
    for pair_stats in pattern_stats.pairs:
        print(
            f"  {pair_stats.pair}: completions={pair_stats.completions} "
            f"avg_duration={pair_stats.average_duration:.2f}"
        )
    print(f"  whole-pattern upper bound: {pattern_stats.max_completions} completions")

    # 3. Pattern continuation: which event most likely follows A, A?
    print("\ncontinuations of [A, A] (accurate):")
    for proposal in index.continuations(["A", "A"], mode="accurate"):
        print(
            f"  {proposal.event}: completions={proposal.completions} "
            f"score={proposal.score:.3f}"
        )

    # 4. The relaxed skip-till-any-match extension counts all embeddings.
    stam = index.detect(["A", "B"], policy=Policy.STAM)
    print(f"\nskip-till-any-match A->B embeddings: {len(stam)}")


if __name__ == "__main__":
    main()
