"""Business-process analysis on a BPI-like incident-management log.

The scenario the paper's introduction motivates: a large log of process
instances (here, calibrated to the published BPI 2020 "request for payment"
statistics), where analysts ask which cases follow a given task sequence,
how long the steps take, and what typically happens next.

Run with::

    python examples/business_process_analysis.py
"""

from repro import Policy, SequenceIndex
from repro.logs.bpi import load_bpi_log
from repro.logs.stats import profile_log


def main() -> None:
    log = load_bpi_log("bpi_2020", seed=7, scale=0.2)
    profile = profile_log(log)
    print(
        f"log: {profile.num_traces} cases, {profile.num_events} events, "
        f"{profile.num_activities} activities"
    )

    index = SequenceIndex(policy=Policy.STNM)
    index.update(log)

    # Pick the most frequent three-step flow as the analysis target.
    activities = sorted(log.activities())
    start = activities[0]
    followers = index.continuations([start], mode="fast")
    second = followers[0].event
    third = index.continuations([start, second], mode="fast")[0].event
    pattern = [start, second, third]
    print(f"\nanalysing flow: {pattern}")

    # Which cases execute the flow (with any other tasks in between)?
    matches = index.detect(pattern)
    cases = {match.trace_id for match in matches}
    print(f"flow completions: {len(matches)} in {len(cases)} cases")

    # Pairwise statistics: where does the time go?
    stats = index.statistics(pattern)
    print("step durations (averages, seconds):")
    for pair_stats in stats.pairs:
        print(
            f"  {pair_stats.pair[0]} -> {pair_stats.pair[1]}: "
            f"{pair_stats.average_duration:,.0f}s over "
            f"{pair_stats.completions} completions"
        )
    print(f"estimated end-to-end duration: {stats.estimated_duration:,.0f}s")

    # What usually happens after the flow?  Hybrid: fast pre-ranking, exact
    # verification of the top 3 candidates.
    print("\nmost likely next steps (hybrid, topK=3):")
    for proposal in index.continuations(pattern, mode="hybrid", top_k=3)[:3]:
        print(
            f"  {proposal.event}: {proposal.completions} completions, "
            f"avg gap {proposal.average_duration:,.0f}s"
        )

    # Conformance-style question: does a rework step ever appear *between*
    # the second and third tasks?  Insertion exploration answers it without
    # re-running detection per candidate by hand.
    print("\nevents observed between step 2 and step 3:")
    for proposal in index.explore_at(pattern, position=2)[:3]:
        if proposal.completions:
            print(f"  {proposal.event}: {proposal.completions} times")


if __name__ == "__main__":
    main()
