"""Incremental, durable indexing: the paper's periodic-batch architecture.

New log events arrive continuously; the index is updated in batches
(Algorithm 1) against a durable LSM store, survives a process restart, and
completed traces are pruned from the bookkeeping tables (§3.1.3).  Index
partitions per period keep any one Index table bounded.

Run with::

    python examples/incremental_indexing.py
"""

import tempfile

from repro import Event, Policy, SequenceIndex
from repro.kvstore import LSMStore
from repro.logs.process_generator import generate_process_log


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-index-")
    print(f"store directory: {workdir}")

    # Day 0: bulk-load the historical log.
    history = generate_process_log(num_traces=500, num_activities=20, seed=5)
    with SequenceIndex(LSMStore(workdir), policy=Policy.STNM) as index:
        stats = index.update(history, partition="2026-06")
        print(
            f"bulk load: {stats.events_indexed} events, "
            f"{stats.pairs_created} pairs in partition 2026-06"
        )

        # Days 1..3: periodic batches -- some new traces, some traces that
        # continue.  LastChecked guarantees no duplicate pairs.
        continuing = history.trace_ids[:50]
        for day in range(1, 4):
            batch = []
            for trace_id in continuing:
                tail = history.trace(trace_id).timestamps[-1]
                batch.append(Event(trace_id, "followup", tail + day * 10))
                batch.append(Event(trace_id, "close", tail + day * 10 + 1))
            stats = index.update(batch, partition="2026-07")
            print(
                f"day {day}: +{stats.events_indexed} events, "
                f"+{stats.pairs_created} pairs (incremental)"
            )

        pattern = ["followup", "close"]
        both = index.detect(pattern, partition=None)  # union of partitions
        print(f"{pattern} completions across partitions: {len(both)}")

        # Completed traces no longer need update bookkeeping.
        index.prune_trace(continuing[0])
        print(f"pruned trace {continuing[0]} from Seq/LastChecked")

    # Restart: everything is recovered from the manifest + WAL.
    with SequenceIndex(LSMStore(workdir), policy=Policy.STNM) as reopened:
        matches = reopened.detect(["followup", "close"], partition=None)
        print(f"after restart: {len(matches)} completions still indexed")


if __name__ == "__main__":
    main()
