"""Sequence-detection policies (§2.1) and pair-creation method names (§4)."""

from __future__ import annotations

import enum


class Policy(enum.Enum):
    """How pattern elements are allowed to relate to the underlying trace.

    * ``SC`` -- *strict contiguity*: matching events are consecutive in the
      trace, nothing in between.
    * ``STNM`` -- *skip-till-next-match*: irrelevant events are skipped
      until the next matching event; matched pairs never overlap in time.
    * ``STAM`` -- *skip-till-any-match*: the relaxed, overlapping flavor the
      paper lists as future work (§7).  Supported here by the SASE baseline
      and by index-assisted verification, not by the pair index itself.
    """

    SC = "strict-contiguity"
    STNM = "skip-till-next-match"
    STAM = "skip-till-any-match"

    @property
    def indexable(self) -> bool:
        """Whether the pair index can be built under this policy."""
        return self in (Policy.SC, Policy.STNM)


class PairMethod(enum.Enum):
    """The pair-creation flavors of §4 (for STNM) plus the SC scanner."""

    #: §4.1: consecutive events only; O(n) per trace.
    STRICT = "strict"
    #: §4.2 "Parsing": compute pairs during a per-start-type scan; O(n l^2).
    PARSING = "parsing"
    #: §4.2 "Indexing": per-type occurrence lists merged pairwise; O(n l^2),
    #: lowest constants -- the paper's recommended default.
    INDEXING = "indexing"
    #: §4.2 "State": single pass keeping per-pair open/closed state; O(n l).
    STATE = "state"

    @property
    def policy(self) -> Policy:
        """The policy whose pairs this method produces."""
        return Policy.SC if self is PairMethod.STRICT else Policy.STNM


def default_method(policy: Policy) -> PairMethod:
    """The paper's recommended pair-creation method for ``policy``."""
    if policy is Policy.SC:
        return PairMethod.STRICT
    if policy is Policy.STNM:
        return PairMethod.INDEXING
    raise ValueError(f"policy {policy} has no pair index")
