"""Delta/varint codec for Index-table postings lists.

Postings -- the ``(trace_id, ts_a, ts_b)`` rows of the paper's Index table
-- dominate bytes on disk: the generic value encoding spends a tag plus a
full-width payload per field, while the rows themselves are highly
regular (few distinct trace ids, timestamps clustered per trace, ``ts_b``
near ``ts_a``).  This module packs one batch of rows into a single
*chunk*: a trace-id dictionary followed by per-entry varints holding the
trace index, the delta of ``ts_a`` against the previous ``ts_a`` of the
same trace, and ``ts_b - ts_a``.  Signed deltas use zigzag coding so
small negative gaps stay small; unsigned varints are LEB128.

Chunks are *versioned by a leading format tag* and stored as ``bytes``
items inside the Index value, which is merged with ``list_append`` --
exactly like the legacy tuple entries.  A store can therefore hold a mix
of legacy entry lists and encoded chunks (old stores keep opening, new
writes append chunks), and :func:`decode_index_value` transparently
splices both back into plain tuples.

Format tags
-----------

``0x00`` RAW
    Fallback: payload is the generic value encoding of the entry list.
    Chosen whenever the rows do not fit a compact format (non-string
    trace ids, exotic timestamp types); guarantees exact round-trips for
    *any* input, so the codec never silently alters data.
``0x01`` INT
    All timestamps are Python ints; deltas round-trip exactly at any
    magnitude (LEB128 is unbounded, so ``2**63 - 1`` is not special).
``0x02`` INTFLOAT
    All timestamps are integral floats with ``|v| <= 2**53``; stored as
    int deltas, decoded back to ``float``.
``0x03`` FLOAT
    All timestamps are floats; trace-dictionary header plus raw IEEE-754
    doubles (no delta coding -- exact for every double, including
    non-finite values).

Decoding is strict: a truncated varint, an unknown tag or trailing bytes
raise :class:`CorruptPostingsError` -- corrupt input is never decoded
into silently wrong rows.
"""

from __future__ import annotations

import struct

from repro.kvstore.encoding import decode_value, encode_value

__all__ = [
    "CorruptPostingsError",
    "encode_postings",
    "decode_postings",
    "decode_index_value",
]

TAG_RAW = 0x00
TAG_INT = 0x01
TAG_INTFLOAT = 0x02
TAG_FLOAT = 0x03

#: largest integer a float holds exactly; beyond it INTFLOAT would round
_MAX_EXACT_FLOAT = 2**53

_F64 = struct.Struct(">d")


class CorruptPostingsError(Exception):
    """An encoded postings chunk failed to decode (truncated or corrupt)."""


# -- varint primitives -----------------------------------------------------


def _write_uvarint(out: bytearray, value: int) -> None:
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_uvarint(buf, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    total = len(buf)
    while True:
        if pos >= total:
            raise CorruptPostingsError("truncated varint in postings chunk")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:  # > 10 continuation bytes: corrupt, not just large
            raise CorruptPostingsError("overlong varint in postings chunk")


def _zigzag(value: int) -> int:
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _unzigzag(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


# -- format selection ------------------------------------------------------


def _pick_format(entries: list) -> int:
    """Choose the tightest tag that round-trips ``entries`` exactly."""
    all_int = True
    all_float = True
    all_integral_float = True
    for entry in entries:
        if len(entry) != 3 or type(entry[0]) is not str:
            return TAG_RAW
        for ts in (entry[1], entry[2]):
            kind = type(ts)
            if kind is int:
                all_float = all_integral_float = False
            elif kind is float:
                all_int = False
                if not (ts == int(ts) if -_MAX_EXACT_FLOAT <= ts <= _MAX_EXACT_FLOAT else False):
                    all_integral_float = False
            else:
                return TAG_RAW
    if all_int:
        return TAG_INT
    if all_integral_float:
        return TAG_INTFLOAT
    if all_float:
        return TAG_FLOAT
    return TAG_RAW  # mixed int/float: preserve per-field types exactly


# -- encode ----------------------------------------------------------------


def encode_postings(entries: list) -> bytes:
    """Encode one batch of ``(trace_id, ts_a, ts_b)`` rows into a chunk.

    Entry order is preserved exactly; ``decode_postings`` returns the same
    rows (as tuples) in the same order, whatever the input types were.
    """
    entries = [tuple(entry) for entry in entries]
    tag = _pick_format(entries)
    if tag == TAG_RAW:
        return bytes((TAG_RAW,)) + encode_value([list(entry) for entry in entries])
    out = bytearray((tag,))
    # trace dictionary, in first-appearance order
    trace_ids: dict[str, int] = {}
    for trace_id, _, _ in entries:
        if trace_id not in trace_ids:
            trace_ids[trace_id] = len(trace_ids)
    _write_uvarint(out, len(entries))
    _write_uvarint(out, len(trace_ids))
    for trace_id in trace_ids:
        raw = trace_id.encode("utf-8")
        _write_uvarint(out, len(raw))
        out.extend(raw)
    if tag == TAG_FLOAT:
        for trace_id, ts_a, ts_b in entries:
            _write_uvarint(out, trace_ids[trace_id])
            out.extend(_F64.pack(ts_a))
            out.extend(_F64.pack(ts_b))
        return bytes(out)
    prev_a = [0] * len(trace_ids)  # per-trace ts_a predictor
    for trace_id, ts_a, ts_b in entries:
        idx = trace_ids[trace_id]
        int_a, int_b = int(ts_a), int(ts_b)
        _write_uvarint(out, idx)
        _write_uvarint(out, _zigzag(int_a - prev_a[idx]))
        _write_uvarint(out, _zigzag(int_b - int_a))
        prev_a[idx] = int_a
    return bytes(out)


# -- decode ----------------------------------------------------------------


def decode_postings(chunk) -> list[tuple]:
    """Decode one chunk back to its exact ``(trace_id, ts_a, ts_b)`` rows."""
    if not len(chunk):
        raise CorruptPostingsError("empty postings chunk")
    tag = chunk[0]
    if tag == TAG_RAW:
        try:
            rows = decode_value(bytes(chunk[1:]))
        except Exception as exc:
            raise CorruptPostingsError(f"corrupt raw postings chunk: {exc}") from None
        if not isinstance(rows, list):
            raise CorruptPostingsError("raw postings chunk is not a list")
        return [tuple(row) for row in rows]
    if tag not in (TAG_INT, TAG_INTFLOAT, TAG_FLOAT):
        raise CorruptPostingsError(f"unknown postings chunk tag 0x{tag:02x}")
    pos = 1
    n_entries, pos = _read_uvarint(chunk, pos)
    n_traces, pos = _read_uvarint(chunk, pos)
    total = len(chunk)
    trace_ids: list[str] = []
    for _ in range(n_traces):
        length, pos = _read_uvarint(chunk, pos)
        if pos + length > total:
            raise CorruptPostingsError("truncated trace id in postings chunk")
        try:
            trace_ids.append(bytes(chunk[pos : pos + length]).decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise CorruptPostingsError(f"corrupt trace id: {exc}") from None
        pos += length
    entries: list[tuple] = []
    if tag == TAG_FLOAT:
        unpack = _F64.unpack_from
        for _ in range(n_entries):
            idx, pos = _read_uvarint(chunk, pos)
            if idx >= n_traces:
                raise CorruptPostingsError("trace index out of range in postings chunk")
            if pos + 16 > total:
                raise CorruptPostingsError("truncated float entry in postings chunk")
            (ts_a,) = unpack(chunk, pos)
            (ts_b,) = unpack(chunk, pos + 8)
            pos += 16
            entries.append((trace_ids[idx], ts_a, ts_b))
    else:
        as_float = tag == TAG_INTFLOAT
        prev_a = [0] * n_traces
        for _ in range(n_entries):
            idx, pos = _read_uvarint(chunk, pos)
            if idx >= n_traces:
                raise CorruptPostingsError("trace index out of range in postings chunk")
            delta_a, pos = _read_uvarint(chunk, pos)
            delta_b, pos = _read_uvarint(chunk, pos)
            ts_a = prev_a[idx] + _unzigzag(delta_a)
            ts_b = ts_a + _unzigzag(delta_b)
            prev_a[idx] = ts_a
            if as_float:
                entries.append((trace_ids[idx], float(ts_a), float(ts_b)))
            else:
                entries.append((trace_ids[idx], ts_a, ts_b))
    if pos != total:
        raise CorruptPostingsError("trailing bytes after postings chunk")
    return entries


def decode_index_value(raw: list) -> list[tuple]:
    """Splice a stored Index value into plain entry tuples.

    The value is a ``list_append``-merged list whose items are either
    legacy entries (lists/tuples, pre-codec stores) or encoded chunks
    (``bytes``); both decode to the same tuples, preserving order.
    """
    entries: list[tuple] = []
    for item in raw:
        if isinstance(item, (bytes, bytearray)):
            entries.extend(decode_postings(item))
        else:
            entries.append(tuple(item))
    return entries
