"""Result types returned by the query processor."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class PatternMatch:
    """One completion of a query pattern inside one trace.

    ``timestamps[i]`` is when the pattern's ``i``-th event occurred; the
    by-product sub-pattern detections of Algorithm 2 are matches whose
    ``timestamps`` tuple is shorter than the query.
    """

    trace_id: str
    timestamps: tuple[float, ...]

    @property
    def start(self) -> float:
        return self.timestamps[0]

    @property
    def end(self) -> float:
        return self.timestamps[-1]

    @property
    def duration(self) -> float:
        """End-to-end time spanned by the match."""
        return self.timestamps[-1] - self.timestamps[0]

    def __len__(self) -> int:
        return len(self.timestamps)


@dataclass(frozen=True)
class PairStats:
    """Statistics-query row for one consecutive pattern pair (§3.2.1).

    Mirrors the ``Count`` table entry plus the ``LastChecked`` lookup: how
    often the pair completed, the summed and average gap between its two
    events, and the most recent completion timestamp.
    """

    pair: tuple[str, str]
    completions: int
    total_duration: float
    last_completion: float | None

    @property
    def average_duration(self) -> float:
        """Mean gap between the pair's events; 0.0 when never completed."""
        if self.completions == 0:
            return 0.0
        return self.total_duration / self.completions


@dataclass(frozen=True)
class PatternStats:
    """Aggregate statistics for a whole pattern, derived from pair rows.

    ``pairs`` holds the consecutive-pair rows; ``extra_pairs`` optionally
    holds the non-adjacent pattern pairs (the paper's §3.2.1 note that the
    completions bound tightens "if all pairs in the pattern are considered
    instead of the consecutive ones only", trading query time for
    accuracy).  ``max_completions`` is the minimum count over every
    available row; ``estimated_duration`` sums the *consecutive* average
    durations only, since non-adjacent gaps overlap them.

    A faithfulness caveat: with only consecutive pairs the bound is a
    *sound* upper bound of Algorithm 2's completion count (each chained
    completion consumes a distinct consecutive-pair entry).  Including
    non-adjacent pairs -- as the paper proposes -- tightens it
    heuristically, but greedy non-overlapping matching can give a
    non-adjacent pair *fewer* entries than there are chains (trace
    ``B A B C A C``: two B,A,C chains, one greedy (B,C) pair), so the
    tightened figure is an estimate, not a guarantee.
    """

    pattern: tuple[str, ...]
    pairs: tuple[PairStats, ...]
    extra_pairs: tuple[PairStats, ...] = ()

    @property
    def max_completions(self) -> int:
        rows = self.pairs + self.extra_pairs
        if not rows:
            return 0
        return min(stat.completions for stat in rows)

    @property
    def estimated_duration(self) -> float:
        return sum(stat.average_duration for stat in self.pairs)

    @property
    def last_completion(self) -> float | None:
        stamps = [s.last_completion for s in self.pairs if s.last_completion is not None]
        return max(stamps) if stamps else None


@dataclass(frozen=True)
class ContinuationProposal:
    """One candidate next event for a pattern, with its ranking inputs.

    ``exact`` records whether ``completions``/``average_duration`` came from
    full pattern detection (Accurate) or from the pairwise upper bound
    (Fast).  ``score`` implements Equation (1):
    ``total_completions / average_duration``; a zero average duration (all
    completions instantaneous) scores ``+inf`` so it sorts first, and zero
    completions score 0.
    """

    event: str
    completions: int
    average_duration: float
    exact: bool
    matches: tuple[PatternMatch, ...] = field(default=(), repr=False)

    @property
    def score(self) -> float:
        if self.completions == 0:
            return 0.0
        if self.average_duration == 0:
            return math.inf
        return self.completions / self.average_duration


@dataclass(frozen=True)
class QueryPlan:
    """How the query processor decided to execute one detection.

    ``pairs[i]`` is the pattern's ``i``-th consecutive pair and
    ``cardinalities[i]`` its exact global completion count from the
    ``Count`` table (exact because greedy non-overlapping matching inserts
    one Count increment per indexed pair entry).  ``order`` lists pair
    indices in the join order actually executed: the planner starts at the
    rarest pair and extends to adjacent pairs, cheapest side first, so the
    intermediate chain set is never larger than the rarest posting list.
    ``reordered`` is ``False`` when that order coincides with naive
    left-to-right evaluation (or when reordering was disabled).
    """

    pattern: tuple[str, ...]
    pairs: tuple[tuple[str, str], ...]
    cardinalities: tuple[int, ...]
    order: tuple[int, ...]
    reordered: bool
    partition: str | None = ""

    @property
    def estimated_cost(self) -> int:
        """Planner cost proxy: the rarest pair bounds the chain frontier."""
        return min(self.cardinalities, default=0)

    def describe(self) -> str:
        """One line per join step, for ``detect --explain`` output."""
        lines = []
        for step, idx in enumerate(self.order):
            first, second = self.pairs[idx]
            lines.append(
                f"step {step}: pair {idx} ({first} -> {second}) "
                f"cardinality={self.cardinalities[idx]}"
            )
        lines.append(
            f"order={'reordered' if self.reordered else 'left-to-right'} "
            f"bound={self.estimated_cost} completions"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class PatternPlan:
    """How the query processor decided to execute one composite-pattern query.

    Composite patterns (alternation, Kleene, negation, WITHIN -- see
    :mod:`repro.core.pattern`) are executed as *prune-then-verify*: the
    pair index intersects candidate traces, then the pattern evaluator
    verifies each survivor.  ``groups[i]`` holds the index pairs derived
    from the ``i``-th adjacency of *positive* elements -- one pair per
    combination of the two elements' alternation branches, so a group's
    ``cardinalities[i]`` is the **sum of its branch-pair counts** (an
    upper bound on traces holding the adjacency).  Negated elements are
    skipped when deriving adjacencies: a negation must never prune (a
    zero-count forbidden pair would otherwise wrongly empty the query),
    so they appear only in ``negated`` for display.  ``order`` is the
    pruning order (cheapest group first under the planner); a group with
    cardinality zero proves the whole query empty -- but only because
    every group is a *positive* requirement.
    """

    pattern: "object"
    groups: tuple[tuple[tuple[str, str], ...], ...]
    cardinalities: tuple[int, ...]
    order: tuple[int, ...]
    reordered: bool
    negated: tuple[str, ...] = ()
    partition: str | None = ""

    @property
    def estimated_cost(self) -> int:
        """Planner cost proxy: the rarest group bounds the candidate set."""
        return min(self.cardinalities, default=0)

    def describe(self) -> str:
        """One line per pruning step, for ``detect --pattern --explain``."""
        lines = [f"pattern {self.pattern}"]
        for step, idx in enumerate(self.order):
            branches = " | ".join(f"{a} -> {b}" for a, b in self.groups[idx])
            lines.append(
                f"step {step}: group {idx} ({branches}) "
                f"cardinality={self.cardinalities[idx]}"
            )
        if not self.groups:
            lines.append("no positive adjacency: full sequence scan")
        for name in self.negated:
            lines.append(f"negated element {name}: verification only, no pruning")
        lines.append(
            f"order={'reordered' if self.reordered else 'left-to-right'} "
            f"bound={self.estimated_cost} candidate completions"
        )
        return "\n".join(lines)


#: alias kept for symmetry with the paper's wording ("completions")
Completion = PatternMatch
