"""Event log formalism (Definition 2.1 of the paper).

A log ``L = (E, C, gamma, delta, ts, <=)`` maps onto three classes:

* :class:`Event` -- one element of ``E``: a trace id (``gamma``), an
  activity (``delta``), and a timestamp (``ts``);
* :class:`Trace` -- one case of ``C``: the events of a single logical unit
  of execution under the strict total order ``<=``;
* :class:`EventLog` -- the full log: a keyed collection of traces plus the
  activity alphabet ``A``.

Timestamps are numbers (int or float).  As the paper notes (§3.1.1), the
approach also works without timestamps: pass ``timestamp=None`` and the
event's position in its trace is used.  Within a trace, timestamps must be
*strictly increasing* after sorting -- ties would break the total order that
the detection join (Algorithm 2) relies on -- and violations raise
:class:`~repro.core.errors.TraceOrderError`.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from repro.core.errors import TraceOrderError

Timestamp = float | int
TraceId = str


class Event:
    """A single timestamped, typed occurrence inside a trace."""

    __slots__ = ("trace_id", "activity", "timestamp", "attributes")

    def __init__(
        self,
        trace_id: TraceId,
        activity: str,
        timestamp: Timestamp | None = None,
        attributes: Mapping[str, Any] | None = None,
    ) -> None:
        self.trace_id = trace_id
        self.activity = activity
        self.timestamp = timestamp
        self.attributes = dict(attributes) if attributes else None

    def __repr__(self) -> str:
        return f"Event({self.trace_id!r}, {self.activity!r}, {self.timestamp!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.trace_id == other.trace_id
            and self.activity == other.activity
            and self.timestamp == other.timestamp
            and self.attributes == other.attributes
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.activity, self.timestamp))


class Trace:
    """The ordered event sequence of one case (session / process instance).

    Construction sorts events by timestamp (stable, so input order breaks
    exact ties deterministically *before* validation rejects them) and
    validates the strict total order.  Events missing timestamps get their
    position assigned, matching the paper's position-as-timestamp fallback.
    """

    __slots__ = ("trace_id", "_activities", "_timestamps")

    def __init__(self, trace_id: TraceId, events: Iterable[Event] = ()) -> None:
        self.trace_id = trace_id
        events = list(events)
        missing = [ev for ev in events if ev.timestamp is None]
        if missing:
            if len(missing) != len(events):
                raise TraceOrderError(
                    f"trace {trace_id!r} mixes timestamped and timestamp-free events"
                )
            for position, event in enumerate(events):
                event.timestamp = position
        else:
            events.sort(key=lambda ev: ev.timestamp)
        self._activities: list[str] = []
        self._timestamps: list[Timestamp] = []
        previous: Timestamp | None = None
        for event in events:
            if event.trace_id != trace_id:
                raise TraceOrderError(
                    f"event {event!r} belongs to trace {event.trace_id!r}, "
                    f"not {trace_id!r}"
                )
            ts = event.timestamp
            if previous is not None and ts <= previous:
                raise TraceOrderError(
                    f"trace {trace_id!r} has non-increasing timestamps "
                    f"({previous!r} then {ts!r}); Definition 2.1 requires a "
                    "strict total order per trace"
                )
            previous = ts
            self._activities.append(event.activity)
            self._timestamps.append(ts)

    @classmethod
    def from_pairs(
        cls, trace_id: TraceId, pairs: Iterable[tuple[str, Timestamp]]
    ) -> "Trace":
        """Build from ``(activity, timestamp)`` tuples (the compact form)."""
        return cls(trace_id, (Event(trace_id, a, ts) for a, ts in pairs))

    @classmethod
    def from_activities(cls, trace_id: TraceId, activities: Iterable[str]) -> "Trace":
        """Build a timestamp-free trace; positions become timestamps."""
        return cls(trace_id, (Event(trace_id, a, None) for a in activities))

    @property
    def activities(self) -> list[str]:
        """Activity names in temporal order (do not mutate)."""
        return self._activities

    @property
    def timestamps(self) -> list[Timestamp]:
        """Timestamps in temporal order, parallel to :attr:`activities`."""
        return self._timestamps

    def pairs_view(self) -> list[tuple[str, Timestamp]]:
        """The ``(activity, timestamp)`` tuples of this trace, in order."""
        return list(zip(self._activities, self._timestamps))

    def alphabet(self) -> set[str]:
        """Distinct activities appearing in this trace."""
        return set(self._activities)

    def __len__(self) -> int:
        return len(self._activities)

    def __iter__(self) -> Iterator[Event]:
        for activity, ts in zip(self._activities, self._timestamps):
            yield Event(self.trace_id, activity, ts)

    def __getitem__(self, index: int) -> Event:
        return Event(self.trace_id, self._activities[index], self._timestamps[index])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return (
            self.trace_id == other.trace_id
            and self._activities == other._activities
            and self._timestamps == other._timestamps
        )

    def __repr__(self) -> str:
        return f"Trace({self.trace_id!r}, {len(self)} events)"


class EventLog:
    """A keyed collection of traces -- the unit the index builder consumes."""

    def __init__(self, traces: Iterable[Trace] = (), name: str = "") -> None:
        self.name = name
        self._traces: dict[TraceId, Trace] = {}
        for trace in traces:
            if trace.trace_id in self._traces:
                raise ValueError(f"duplicate trace id {trace.trace_id!r}")
            self._traces[trace.trace_id] = trace

    @classmethod
    def from_events(cls, events: Iterable[Event], name: str = "") -> "EventLog":
        """Group a flat event stream into traces (the log-database row form)."""
        grouped: dict[TraceId, list[Event]] = {}
        for event in events:
            grouped.setdefault(event.trace_id, []).append(event)
        return cls(
            (Trace(trace_id, evs) for trace_id, evs in grouped.items()), name=name
        )

    @classmethod
    def from_dict(
        cls, traces: Mapping[TraceId, Iterable[str]], name: str = ""
    ) -> "EventLog":
        """Build a timestamp-free log from ``{trace_id: [activity, ...]}``."""
        return cls(
            (Trace.from_activities(tid, acts) for tid, acts in traces.items()),
            name=name,
        )

    def add_trace(self, trace: Trace) -> None:
        """Insert a trace; the id must be new."""
        if trace.trace_id in self._traces:
            raise ValueError(f"duplicate trace id {trace.trace_id!r}")
        self._traces[trace.trace_id] = trace

    @property
    def trace_ids(self) -> list[TraceId]:
        return list(self._traces)

    def trace(self, trace_id: TraceId) -> Trace:
        return self._traces[trace_id]

    def __contains__(self, trace_id: TraceId) -> bool:
        return trace_id in self._traces

    def __len__(self) -> int:
        return len(self._traces)

    def __iter__(self) -> Iterator[Trace]:
        return iter(self._traces.values())

    @property
    def num_events(self) -> int:
        """Total events across traces (``|E|``)."""
        return sum(len(trace) for trace in self._traces.values())

    def activities(self) -> set[str]:
        """The activity alphabet ``A``."""
        alphabet: set[str] = set()
        for trace in self._traces.values():
            alphabet.update(trace.activities)
        return alphabet

    def events(self) -> Iterator[Event]:
        """Flat iterator over all events, trace by trace."""
        for trace in self._traces.values():
            yield from trace

    def __repr__(self) -> str:
        return (
            f"EventLog(name={self.name!r}, traces={len(self)}, "
            f"events={self.num_events})"
        )
