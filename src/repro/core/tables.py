"""The five index tables of §3.1.2, plus a metadata table.

Each table wraps one logical key-value table with the paper's schema:

=============  ==========================  =========================================
Table          Key                         Value
=============  ==========================  =========================================
Seq            trace_id                    [(activity, ts), ...] (append-merged)
Index          (ev_a, ev_b)                [(trace_id, ts_a, ts_b), ...] (append)
Count          ev_a                        {ev_b: [sum_duration, completions]}
ReverseCount   ev_b                        {ev_a: [sum_duration, completions]}
LastChecked    (ev_a, ev_b)                {trace_id: last_completion_ts} (max)
Meta           "meta"                      {policy, method, ...}
=============  ==========================  =========================================

Values are written exclusively through merge operators, so index batches are
blind appends -- the Cassandra pattern the paper's scalability rests on.

The optional ``partition`` argument implements the paper's §3.1.3 note that
"a separate index table can be used for different periods": every partition
value gets its own ``Index`` table, and queries either target one partition
or fan out over all of them.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.errors import IndexStateError
from repro.core.policies import PairMethod, Policy
from repro.core.postings import decode_index_value, encode_postings
from repro.kvstore.api import KeyValueStore

SEQ = "seq"
INDEX = "index"
COUNT = "count"
REVERSE_COUNT = "reverse_count"
LAST_CHECKED = "last_checked"
META = "meta"

_DEFAULT_PARTITION = ""


def _index_table(partition: str) -> str:
    return INDEX if partition == _DEFAULT_PARTITION else f"{INDEX}:{partition}"


class IndexTables:
    """Typed accessors over the store tables used by builder and queries.

    ``batched_reads`` routes multi-key accessors through the store's
    :meth:`~repro.kvstore.api.KeyValueStore.multi_get` (one snapshot, shared
    bloom/block work per batch); disabling it falls back to a loop of
    point ``get`` calls with identical results -- the knob exists for the
    planner ablation benchmark, not for production tuning.

    ``postings_codec`` stores Index entries as delta/varint-packed chunks
    (:mod:`repro.core.postings`) instead of raw tuples.  Reads decode both
    representations transparently, so the knob only affects *new* writes;
    disabling it keeps the legacy tuple format (ablation benchmarks, or
    writing stores an old reader must parse byte-for-byte).
    """

    def __init__(
        self,
        store: KeyValueStore,
        batched_reads: bool = True,
        postings_codec: bool = True,
    ) -> None:
        self.store = store
        self.batched_reads = batched_reads
        self.postings_codec = postings_codec

    def _multi_get(self, table: str, keys: list, default) -> list:
        """Batched (or, for ablations, looped) point reads on one table."""
        if self.batched_reads:
            return self.store.multi_get(table, keys, default)
        return [self.store.get(table, key, default) for key in keys]

    # -- schema ------------------------------------------------------------

    def ensure_schema(self) -> None:
        """Create every fixed table (idempotent)."""
        self.store.create_table(SEQ, merge_operator="list_append")
        self.store.create_table(INDEX, merge_operator="list_append")
        self.store.create_table(COUNT, merge_operator="counter_map")
        self.store.create_table(REVERSE_COUNT, merge_operator="counter_map")
        self.store.create_table(LAST_CHECKED, merge_operator="max_map")
        self.store.create_table(META)

    def ensure_partition(self, partition: str) -> None:
        """Create the Index table for ``partition`` (idempotent)."""
        self.store.create_table(_index_table(partition), merge_operator="list_append")

    def partitions(self) -> list[str]:
        """All index partitions present, default partition first.

        Partition names come from the meta document; their tables are
        re-checked with ``has_table`` at read time, so a meta entry whose
        table was never created is harmless.
        """
        names = [_DEFAULT_PARTITION]
        for name in self.get_meta().get("partitions", []):
            if name != _DEFAULT_PARTITION:
                names.append(name)
        return names

    # -- Meta ---------------------------------------------------------------

    def get_meta(self) -> dict:
        return self.store.get(META, "meta", {})

    def put_meta(self, meta: dict) -> None:
        self.store.put(META, "meta", meta)

    def check_configuration(self, policy: Policy, method: PairMethod) -> None:
        """Validate (or record) the policy/method this store was built with."""
        meta = self.get_meta()
        if not meta:
            self.put_meta(
                {"policy": policy.value, "method": method.value, "partitions": []}
            )
            return
        if meta.get("policy") != policy.value:
            raise IndexStateError(
                f"store was built with policy {meta.get('policy')!r}, "
                f"requested {policy.value!r}"
            )

    def register_partition(self, partition: str) -> None:
        if partition == _DEFAULT_PARTITION:
            return
        meta = self.get_meta()
        partitions = meta.setdefault("partitions", [])
        if partition not in partitions:
            partitions.append(partition)
            self.put_meta(meta)

    # -- Seq -----------------------------------------------------------------

    def append_sequence(
        self, trace_id: str, events: list[tuple[str, float]]
    ) -> None:
        self.store.merge(SEQ, trace_id, events)

    def get_sequence(self, trace_id: str) -> list[tuple[str, float]]:
        return [tuple(item) for item in self.store.get(SEQ, trace_id, [])]

    def iter_sequences(self) -> Iterator[tuple[str, list[tuple[str, float]]]]:
        for key, value in self.store.scan(SEQ):
            yield key[0], [tuple(item) for item in value]

    def delete_sequence(self, trace_id: str) -> None:
        self.store.delete(SEQ, trace_id)

    # -- Index ------------------------------------------------------------------

    def append_index(
        self,
        pair: tuple[str, str],
        entries: list[tuple[str, float, float]],
        partition: str = _DEFAULT_PARTITION,
    ) -> None:
        if self.postings_codec and entries:
            # One chunk per append batch: the list_append merge makes the
            # stored value a list of chunks (possibly mixed with legacy
            # tuples from before the codec), spliced back on read.
            self.store.merge(_index_table(partition), pair, [encode_postings(entries)])
        else:
            self.store.merge(_index_table(partition), pair, entries)

    def _index_tables_for(self, partition: str | None) -> list[str]:
        """Physical Index tables a read targets, in union (partition) order.

        A named (or default) partition resolves to its table unconditionally
        -- a missing table surfaces as ``UnknownTableError`` exactly like any
        other read.  ``partition=None`` unions every registered partition,
        each guarded by the same ``has_table`` check (a meta entry whose
        table was never created is skipped, the default partition included).
        """
        if partition is not None:
            return [_index_table(partition)]
        return [
            table
            for name in self.partitions()
            if self.store.has_table(table := _index_table(name))
        ]

    def get_index(
        self, pair: tuple[str, str], partition: str | None = _DEFAULT_PARTITION
    ) -> list[tuple[str, float, float]]:
        """Index entries for ``pair``; ``partition=None`` unions all partitions."""
        return self.get_index_many([pair], partition)[pair]

    def get_index_many(
        self,
        pairs: list[tuple[str, str]],
        partition: str | None = _DEFAULT_PARTITION,
    ) -> dict[tuple[str, str], list[tuple[str, float, float]]]:
        """Index entries for many pairs, fetched as one batch per table.

        One :meth:`~repro.kvstore.api.KeyValueStore.multi_get` per physical
        Index table replaces a point read per (pair, partition); the result
        maps every requested pair to its (possibly empty) entry list, with
        ``partition=None`` unioning partitions in registration order.
        """
        unique = list(dict.fromkeys(pairs))
        merged: dict[tuple[str, str], list[tuple[str, float, float]]] = {
            pair: [] for pair in unique
        }
        for table in self._index_tables_for(partition):
            rows = self._multi_get(table, unique, [])
            for pair, raw in zip(unique, rows):
                merged[pair].extend(decode_index_value(raw))
        return merged

    def get_index_grouped(
        self, pair: tuple[str, str], partition: str | None = _DEFAULT_PARTITION
    ) -> dict[str, list[tuple[float, float]]]:
        """Index entries grouped per trace, each trace's list in time order."""
        grouped: dict[str, list[tuple[float, float]]] = {}
        for trace_id, ts_a, ts_b in self.get_index(pair, partition):
            grouped.setdefault(trace_id, []).append((ts_a, ts_b))
        for entries in grouped.values():
            entries.sort()
        return grouped

    # -- Count / ReverseCount ------------------------------------------------------

    def add_counts(
        self, first: str, stats: dict[str, list[float]]
    ) -> None:
        """Merge ``{ev_b: [sum_duration, completions]}`` into Count[first]."""
        self.store.merge(COUNT, first, stats)

    def add_reverse_counts(self, second: str, stats: dict[str, list[float]]) -> None:
        self.store.merge(REVERSE_COUNT, second, stats)

    def get_counts(self, first: str) -> dict[str, tuple[float, int]]:
        """``{ev_b: (sum_duration, completions)}`` for pairs starting at ``first``."""
        raw = self.store.get(COUNT, first, {})
        return {key: (vals[0], int(vals[1])) for key, vals in raw.items()}

    def get_reverse_counts(self, second: str) -> dict[str, tuple[float, int]]:
        raw = self.store.get(REVERSE_COUNT, second, {})
        return {key: (vals[0], int(vals[1])) for key, vals in raw.items()}

    def get_pair_count(self, pair: tuple[str, str]) -> tuple[float, int]:
        """``(sum_duration, completions)`` for one pair; zeros when absent."""
        stats = self.get_counts(pair[0]).get(pair[1])
        return stats if stats is not None else (0.0, 0)

    def get_count_rows(self, firsts: list[str]) -> dict[str, dict]:
        """Raw Count documents for many first events, in one batched read."""
        unique = list(dict.fromkeys(firsts))
        rows = self._multi_get(COUNT, unique, {})
        return dict(zip(unique, rows))

    def get_pair_counts(
        self, pairs: list[tuple[str, str]]
    ) -> dict[tuple[str, str], tuple[float, int]]:
        """``{pair: (sum_duration, completions)}`` for many pairs at once.

        One batched read over the distinct first events replaces a Count
        look-up per pair (the ``statistics(all_pairs=True)`` path was
        O(p^2) point reads); absent pairs map to ``(0.0, 0)``.
        """
        per_first = self.get_count_rows([first for first, _ in pairs])
        result: dict[tuple[str, str], tuple[float, int]] = {}
        for pair in pairs:
            stats = per_first[pair[0]].get(pair[1])
            result[pair] = (
                (stats[0], int(stats[1])) if stats is not None else (0.0, 0)
            )
        return result

    # -- LastChecked ------------------------------------------------------------------

    def update_last_checked(
        self, pair: tuple[str, str], completions: dict[str, float]
    ) -> None:
        self.store.merge(LAST_CHECKED, pair, completions)

    def get_last_checked(self, pair: tuple[str, str]) -> dict[str, float]:
        """Per-trace timestamp of the pair's most recent completion."""
        return dict(self.store.get(LAST_CHECKED, pair, {}))

    def get_last_checked_many(
        self, pairs: list[tuple[str, str]]
    ) -> dict[tuple[str, str], dict[str, float]]:
        """LastChecked documents for many pairs in one batched read."""
        unique = list(dict.fromkeys(pairs))
        rows = self._multi_get(LAST_CHECKED, unique, {})
        return {pair: dict(raw) for pair, raw in zip(unique, rows)}

    def get_last_completion(self, pair: tuple[str, str]) -> float | None:
        """Most recent completion of ``pair`` across all traces."""
        checked = self.get_last_checked(pair)
        return max(checked.values()) if checked else None

    def prune_trace(self, trace_id: str, alphabet: set[str]) -> None:
        """Drop a completed trace from Seq and LastChecked (§3.1.3).

        The Index entries remain valid for queries; only the bookkeeping
        needed for future incremental updates is released.
        """
        self.delete_sequence(trace_id)
        events = sorted(alphabet)
        pairs = [(a, b) for a in events for b in events]
        if not pairs:
            return
        # One batched read over the |alphabet|^2 LastChecked keys instead of
        # a get/put round-trip per pair; only documents actually holding the
        # trace are rewritten.
        checked_by_pair = self.get_last_checked_many(pairs)
        for pair in pairs:
            checked = checked_by_pair[pair]
            if trace_id in checked:
                del checked[trace_id]
                self.store.put(LAST_CHECKED, pair, checked)
