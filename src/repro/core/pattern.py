"""The expressive pattern language over the pair index.

The paper's index answers plain in-order sequence queries (Algorithm 2);
the "Enhanced Expressiveness" follow-up by the same authors extends the
query class to the SASE language over the distributed pair index.  This
module defines that query class for the repo: a small pattern AST, a
textual grammar, and the *indexed-side* evaluator used after the planner
has pruned candidate traces through the pair index.

Grammar (activity names may not contain ``, ( ) | ! +`` or whitespace)::

    pattern  := [ "SEQ" "(" ] element ("," element)* [ ")" ] [ "WITHIN" number ]
    element  := ["!"] group ["+"]
    group    := name | "(" name ("|" name)* ")"

Operators:

* **sequence**    -- ``A, B, C``: the elements occur in order,
  skip-till-next-match (greedy, non-overlapping runs).
* **alternation** -- ``(B|C)``: the element matches the next occurrence of
  *either* type.
* **Kleene plus** -- ``B+``: one or more occurrences, maximal munch -- the
  element absorbs every occurrence of its types until the first occurrence
  of the next positive element's types (to the end of the trace when it is
  the last positive element).
* **negation**    -- ``!X``: no occurrence of ``X`` strictly between the
  neighbouring positive elements' matched events.  A trailing ``!X``
  ("A not followed by X") forbids ``X`` after the last matched event --
  to the end of the trace, or to the end of the WITHIN window when one is
  given.  A pattern may not start with a negated element.
* **within**      -- ``WITHIN t``: the match's end-to-end span (first to
  last matched event, Kleene absorptions included) is at most ``t``.
  The bound is inclusive: a span of exactly ``t`` matches.

Matching semantics (shared with the SASE oracle in
:mod:`repro.baselines.sase.nfa`, which implements them independently as a
streaming automaton -- the differential suite in
``tests/core/test_differential.py`` leans on that independence):

1. Runs are greedy and non-overlapping (skip-till-next-match).  An
   attempt from position ``s`` matches each positive element at its
   earliest possible position; if some positive element has no occurrence
   in the remaining suffix the whole search ends.
2. A completed attempt is checked against the window and every negation.
   If it passes, its events are consumed: the next attempt starts after
   the last matched event.  If it fails, the next attempt starts right
   after the *first* matched event (the same retry rule the SASE NFA uses
   when a WITHIN window is exceeded).
3. Negation never consumes events; it only invalidates attempts.
"""

from __future__ import annotations

import re
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import PatternSyntaxError

__all__ = [
    "Pattern",
    "PatternElement",
    "parse_pattern",
    "find_matches",
]


@dataclass(frozen=True)
class PatternElement:
    """One element of a pattern: an alternation set plus operator flags.

    ``types`` holds one activity name for a plain element, several for an
    alternation.  ``kleene`` marks Kleene plus (one or more, maximal
    munch); ``negated`` marks the element as forbidden between its
    positive neighbours.  The two flags are mutually exclusive.
    """

    types: tuple[str, ...]
    kleene: bool = False
    negated: bool = False

    def __post_init__(self) -> None:
        if not self.types:
            raise PatternSyntaxError("a pattern element needs at least one type")
        deduped = tuple(dict.fromkeys(self.types))
        if deduped != self.types:
            object.__setattr__(self, "types", deduped)
        for name in self.types:
            if not name:
                raise PatternSyntaxError("empty activity name in pattern element")
        if self.negated and self.kleene:
            raise PatternSyntaxError(
                "an element cannot be both negated and Kleene-plus"
            )

    def __str__(self) -> str:
        body = self.types[0] if len(self.types) == 1 else f"({'|'.join(self.types)})"
        return ("!" if self.negated else "") + body + ("+" if self.kleene else "")


@dataclass(frozen=True)
class Pattern:
    """A composite sequence pattern with an optional WITHIN window.

    Hashable (frozen, tuple fields), so patterns key the engine's
    query-result cache exactly like plain activity tuples do.
    """

    elements: tuple[PatternElement, ...]
    within: float | None = None

    def __post_init__(self) -> None:
        if not self.elements:
            raise PatternSyntaxError("a pattern needs at least one element")
        if self.elements[0].negated:
            raise PatternSyntaxError(
                "a pattern cannot start with a negated element "
                "(negation scopes anchor on a preceding positive match)"
            )
        if self.within is not None and self.within <= 0:
            raise PatternSyntaxError("the WITHIN window must be positive")

    @classmethod
    def of(cls, *elements: str, within: float | None = None) -> "Pattern":
        """Build from element strings: ``Pattern.of("A", "!B", "(C|D)+")``."""
        return cls(tuple(_parse_element(raw) for raw in elements), within)

    @property
    def positive_indices(self) -> tuple[int, ...]:
        """Indices of the non-negated elements, in pattern order."""
        return tuple(i for i, e in enumerate(self.elements) if not e.negated)

    @property
    def has_operators(self) -> bool:
        """True when any element uses alternation, Kleene or negation."""
        return any(
            len(e.types) > 1 or e.kleene or e.negated for e in self.elements
        )

    @property
    def is_plain(self) -> bool:
        """True for a bare sequence: no operators and no window."""
        return not self.has_operators and self.within is None

    def negation_scopes(self) -> tuple[tuple[int, int, int | None], ...]:
        """``(element_index, prev_positive_ordinal, next_positive_ordinal)``
        per negated element; ``next`` is ``None`` for trailing negations."""
        positives = self.positive_indices
        scopes: list[tuple[int, int, int | None]] = []
        for i, elem in enumerate(self.elements):
            if not elem.negated:
                continue
            prev_ord = max(j for j, p in enumerate(positives) if p < i)
            following = [j for j, p in enumerate(positives) if p > i]
            scopes.append((i, prev_ord, following[0] if following else None))
        return tuple(scopes)

    def activities(self) -> tuple[str, ...]:
        """The flat activity list of a plain pattern."""
        if not self.is_plain:
            raise PatternSyntaxError(
                "activities() is only defined for plain sequence patterns"
            )
        return tuple(e.types[0] for e in self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __str__(self) -> str:
        body = ", ".join(str(e) for e in self.elements)
        suffix = f" WITHIN {self.within:g}" if self.within is not None else ""
        return f"SEQ({body}){suffix}"


# -- parser --------------------------------------------------------------------

_TOKEN = re.compile(r"\s*(?:([^\s,()|!+]+)|([,()|!+]))")


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:  # only trailing whitespace can fail to match
            if text[pos:].strip():
                raise PatternSyntaxError(
                    f"cannot tokenize pattern at {text[pos:]!r}"
                )
            break
        tokens.append(match.group(1) or match.group(2))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str], text: str) -> None:
        self.tokens = tokens
        self.pos = 0
        self.text = text

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise PatternSyntaxError(f"unexpected end of pattern in {self.text!r}")
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.take()
        if got != token:
            raise PatternSyntaxError(
                f"expected {token!r} but found {got!r} in {self.text!r}"
            )

    def parse(self) -> Pattern:
        wrapped = False
        token = self.peek()
        if token is not None and token.lower() == "seq":
            nxt = self.tokens[self.pos + 1] if self.pos + 1 < len(self.tokens) else None
            if nxt == "(":
                self.pos += 2
                wrapped = True
        elements = [self.element()]
        while self.peek() == ",":
            self.take()
            elements.append(self.element())
        if wrapped:
            self.expect(")")
        within = None
        token = self.peek()
        if token is not None and token.lower() == "within":
            self.take()
            raw = self.take()
            try:
                within = float(raw)
            except ValueError:
                raise PatternSyntaxError(
                    f"WITHIN expects a number, found {raw!r}"
                ) from None
        if self.peek() is not None:
            raise PatternSyntaxError(
                f"trailing tokens after pattern: {self.tokens[self.pos:]} "
                f"in {self.text!r}"
            )
        return Pattern(tuple(elements), within)

    def element(self) -> PatternElement:
        negated = False
        if self.peek() == "!":
            self.take()
            negated = True
        token = self.take()
        if token == "(":
            types = [self.name()]
            while self.peek() == "|":
                self.take()
                types.append(self.name())
            self.expect(")")
        elif token in ",()|!+":
            raise PatternSyntaxError(
                f"expected an activity name, found {token!r} in {self.text!r}"
            )
        else:
            types = [token]
        kleene = False
        if self.peek() == "+":
            self.take()
            kleene = True
        return PatternElement(tuple(types), kleene=kleene, negated=negated)

    def name(self) -> str:
        token = self.take()
        if token in ",()|!+":
            raise PatternSyntaxError(
                f"expected an activity name, found {token!r} in {self.text!r}"
            )
        return token


def parse_pattern(text: str) -> Pattern:
    """Parse the textual grammar into a :class:`Pattern`.

    Accepts the ``SEQ(...)`` wrapper and the bare comma form::

        parse_pattern("SEQ(A, !B, (C|D)+) WITHIN 10")
        parse_pattern("A, !B, (C|D)+ within 10")
    """
    tokens = _tokenize(text)
    if not tokens:
        raise PatternSyntaxError("empty pattern expression")
    return _Parser(tokens, text).parse()


def _parse_element(raw: str) -> PatternElement:
    parser = _Parser(_tokenize(raw), raw)
    element = parser.element()
    if parser.peek() is not None:
        raise PatternSyntaxError(f"trailing tokens in element {raw!r}")
    return element


# -- indexed-side evaluator ----------------------------------------------------


def find_matches(
    activities: Sequence[str],
    timestamps: Sequence[float],
    pattern: Pattern,
    max_matches: int | None = None,
) -> list[tuple[float, ...]]:
    """All matches of ``pattern`` over one trace, as timestamp tuples.

    This is the verification step of the indexed path: it runs only on
    traces the planner could not prune via the pair index.  The
    implementation works off per-activity occurrence lists with binary
    search -- deliberately a different algorithm from the SASE oracle's
    streaming automaton, so the differential suite compares two
    independent realisations of the same semantics.

    Kleene elements contribute every absorbed event's timestamp, so match
    tuples may be longer than the pattern's positive element count.
    """
    n = len(activities)
    positions: dict[str, list[int]] = {}
    for idx, activity in enumerate(activities):
        positions.setdefault(activity, []).append(idx)

    def next_of(types: tuple[str, ...], cursor: int) -> int | None:
        """Earliest occurrence of any of ``types`` at or after ``cursor``."""
        best: int | None = None
        for name in types:
            occ = positions.get(name)
            if not occ:
                continue
            k = bisect_left(occ, cursor)
            if k < len(occ) and (best is None or occ[k] < best):
                best = occ[k]
        return best

    def occurs_between(types: tuple[str, ...], low: int, high: int) -> bool:
        """Any occurrence of ``types`` strictly between ``low`` and ``high``."""
        for name in types:
            occ = positions.get(name)
            if not occ:
                continue
            k = bisect_right(occ, low)
            if k < len(occ) and occ[k] < high:
                return True
        return False

    elements = pattern.elements
    pos_idx = pattern.positive_indices
    scopes = pattern.negation_scopes()
    matches: list[tuple[float, ...]] = []
    search_from = 0
    while search_from < n:
        cursor = search_from
        flat: list[int] = []  # every matched/absorbed position, ascending
        bounds: list[tuple[int, int]] = []  # (first, last) per positive element
        for ordinal, elem_index in enumerate(pos_idx):
            elem = elements[elem_index]
            next_types = (
                elements[pos_idx[ordinal + 1]].types
                if ordinal + 1 < len(pos_idx)
                else None
            )
            hit = next_of(elem.types, cursor)
            if hit is None:
                # The element has no occurrence in the remaining suffix;
                # later attempts only search later, so the search is over.
                return matches
            first = last = hit
            flat.append(hit)
            cursor = hit + 1
            if elem.kleene:
                stop = next_of(next_types, cursor) if next_types else None
                limit = n if stop is None else stop
                absorbed: list[int] = []
                for name in elem.types:
                    occ = positions.get(name, [])
                    k = bisect_left(occ, cursor)
                    while k < len(occ) and occ[k] < limit:
                        absorbed.append(occ[k])
                        k += 1
                absorbed.sort()
                flat.extend(absorbed)
                if absorbed:
                    last = absorbed[-1]
                cursor = limit
            bounds.append((first, last))
        ok = True
        if pattern.within is not None:
            ok = timestamps[flat[-1]] - timestamps[flat[0]] <= pattern.within
        if ok:
            for elem_index, prev_ord, next_ord in scopes:
                low = bounds[prev_ord][1]
                if next_ord is not None:
                    if occurs_between(
                        elements[elem_index].types, low, bounds[next_ord][0]
                    ):
                        ok = False
                        break
                else:
                    hit = next_of(elements[elem_index].types, low + 1)
                    if hit is not None and (
                        pattern.within is None
                        or timestamps[hit]
                        <= timestamps[flat[0]] + pattern.within
                    ):
                        ok = False
                        break
        if ok:
            matches.append(tuple(timestamps[p] for p in flat))
            if max_matches is not None and len(matches) >= max_matches:
                return matches
            search_from = flat[-1] + 1
        else:
            search_from = flat[0] + 1
    return matches
