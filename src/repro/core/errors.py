"""Exception hierarchy of the core library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class TraceOrderError(ReproError):
    """Events in a trace violate the strict total order of Definition 2.1."""


class EmptyPatternError(ReproError):
    """A query pattern was empty or too short for the requested operation."""


class PolicyMismatchError(ReproError):
    """A query asked for a policy the index was not built with."""


class IndexStateError(ReproError):
    """The index store is missing tables or metadata it should contain."""
