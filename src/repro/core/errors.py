"""Exception hierarchy of the core library.

Storage-corruption errors (:class:`CorruptionError`,
:class:`CorruptSSTableError`) are defined next to the store in
:mod:`repro.kvstore.api` and re-exported here so engine-level callers can
catch them without importing kvstore internals.
"""

from __future__ import annotations

from repro.core.postings import CorruptPostingsError
from repro.kvstore.api import CorruptionError, CorruptSSTableError

__all__ = [
    "ReproError",
    "TraceOrderError",
    "EmptyPatternError",
    "PatternSyntaxError",
    "PolicyMismatchError",
    "IndexStateError",
    "DeadlineExceeded",
    "CorruptionError",
    "CorruptSSTableError",
    "CorruptPostingsError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class TraceOrderError(ReproError):
    """Events in a trace violate the strict total order of Definition 2.1."""


class EmptyPatternError(ReproError):
    """A query pattern was empty or too short for the requested operation."""


class PatternSyntaxError(ReproError):
    """A pattern expression could not be parsed or is structurally invalid."""


class PolicyMismatchError(ReproError):
    """A query asked for a policy the index was not built with."""


class IndexStateError(ReproError):
    """The index store is missing tables or metadata it should contain."""


class DeadlineExceeded(ReproError):
    """A deadline expired before the operation finished.

    Raised by the executor's deadline-aware ``gather`` and surfaced by the
    query service as a ``deadline`` error response; work still running on
    other threads is abandoned (pending futures are cancelled) but never
    leaves shared state inconsistent -- reads are side-effect free.
    """
