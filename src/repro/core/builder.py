"""The pre-processing component: builds and incrementally updates the index.

Implements Algorithm 1 of the paper.  New log events arrive in batches; for
each affected trace the builder

1. loads the already-indexed sequence from the ``Seq`` table and appends the
   new events (logs are append-only per trace: a new event older than the
   stored tail violates Definition 2.1 and is rejected);
2. creates the new event pairs -- a full run of the configured pair-creation
   flavor for a brand-new trace, or, for a known trace, a per-pair greedy
   re-match restricted to events *after* the pair's ``LastChecked``
   completion (which provably adds exactly the pairs a full rebuild would);
3. merges the results into ``Index``, ``Count``, ``ReverseCount``,
   ``LastChecked`` and ``Seq`` as blind merge-writes.

Pair computation is a pure per-trace function, dispatched through a
:class:`~repro.executor.parallel.ParallelExecutor` exactly like the paper's
per-trace Spark parallelism.  Store writes happen on the calling thread.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.errors import TraceOrderError
from repro.core.model import Event, EventLog
from repro.core.pairs import (
    PairDict,
    create_pairs,
    occurrence_lists,
    pairs_after,
)
from repro.core.policies import PairMethod, Policy, default_method
from repro.core.tables import IndexTables
from repro.executor import ParallelExecutor
from repro.kvstore.api import KeyValueStore

SeqList = list[tuple[str, float]]


@dataclass
class UpdateStats:
    """What one :meth:`IndexBuilder.update` call did."""

    traces_seen: int = 0
    new_traces: int = 0
    events_indexed: int = 0
    pairs_created: int = 0
    partition: str = ""


@dataclass
class _TraceWork:
    """Input to the per-trace pair computation (picklable for process pools)."""

    trace_id: str
    old_seq: SeqList
    new_seq: SeqList
    last_checked: dict[tuple[str, str], float] = field(default_factory=dict)


def _compute_trace_pairs(
    work: _TraceWork, method: PairMethod
) -> tuple[str, PairDict]:
    """Pure per-trace pair creation (Algorithm 1 lines 5-13)."""
    if not work.old_seq:
        activities = [activity for activity, _ in work.new_seq]
        timestamps = [ts for _, ts in work.new_seq]
        return work.trace_id, create_pairs(activities, timestamps, method)
    if method is PairMethod.STRICT:
        # SC pairs gained by the batch: the boundary pair plus consecutive
        # new pairs.  LastChecked is not needed -- adjacency is local.
        pairs: PairDict = {}
        boundary = [work.old_seq[-1]] + work.new_seq
        for (act_a, ts_a), (act_b, ts_b) in zip(boundary, boundary[1:]):
            pairs.setdefault((act_a, act_b), []).append((ts_a, ts_b))
        return work.trace_id, pairs
    full_seq = work.old_seq + work.new_seq
    occurrences = occurrence_lists(
        [activity for activity, _ in full_seq], [ts for _, ts in full_seq]
    )
    new_types = {activity for activity, _ in work.new_seq}
    all_types = set(occurrences)
    pairs = {}
    for a in all_types:
        for b in all_types:
            if a not in new_types and b not in new_types:
                continue  # a pair of two old-only types cannot gain matches
            matched = pairs_after(
                occurrences, a, b, work.last_checked.get((a, b))
            )
            if matched:
                pairs[(a, b)] = matched
    return work.trace_id, pairs


class _AggregatedBatch:
    """Write-ready table deltas for a set of traces.

    Workers aggregate their partition's pair dictionaries into this form so
    that (a) cross-process result transfer ships a handful of large dicts
    instead of one per trace and (b) the main thread only merges partitions
    instead of re-walking every pair.
    """

    __slots__ = ("index", "counts", "reverse", "checked", "pairs_created")

    def __init__(self) -> None:
        self.index: dict[tuple[str, str], list[tuple[str, float, float]]] = {}
        self.counts: dict[str, dict[str, list[float]]] = {}
        self.reverse: dict[str, dict[str, list[float]]] = {}
        self.checked: dict[tuple[str, str], dict[str, float]] = {}
        self.pairs_created = 0

    def add_trace(self, trace_id: str, pair_dict: PairDict) -> None:
        index = self.index
        counts = self.counts
        reverse = self.reverse
        checked = self.checked
        for pair, ts_pairs in pair_dict.items():
            count = len(ts_pairs)
            self.pairs_created += count
            entries = index.get(pair)
            if entries is None:
                entries = index[pair] = []
            duration = 0.0
            append = entries.append
            for ts_a, ts_b in ts_pairs:
                duration += ts_b - ts_a
                append((trace_id, ts_a, ts_b))
            first, second = pair
            slot = counts.setdefault(first, {}).setdefault(second, [0.0, 0])
            slot[0] += duration
            slot[1] += count
            rslot = reverse.setdefault(second, {}).setdefault(first, [0.0, 0])
            rslot[0] += duration
            rslot[1] += count
            last = checked.setdefault(pair, {})
            tail = ts_pairs[-1][1]
            if trace_id not in last or tail > last[trace_id]:
                last[trace_id] = tail

    def merge(self, other: "_AggregatedBatch") -> None:
        """Fold another partition's deltas into this one."""
        self.pairs_created += other.pairs_created
        for pair, entries in other.index.items():
            self.index.setdefault(pair, []).extend(entries)
        for first, per_second in other.counts.items():
            mine = self.counts.setdefault(first, {})
            for second, (duration, count) in per_second.items():
                slot = mine.setdefault(second, [0.0, 0])
                slot[0] += duration
                slot[1] += count
        for second, per_first in other.reverse.items():
            mine = self.reverse.setdefault(second, {})
            for first, (duration, count) in per_first.items():
                slot = mine.setdefault(first, [0.0, 0])
                slot[0] += duration
                slot[1] += count
        for pair, completions in other.checked.items():
            mine = self.checked.setdefault(pair, {})
            for trace_id, tail in completions.items():
                if trace_id not in mine or tail > mine[trace_id]:
                    mine[trace_id] = tail


class _PartitionJob:
    """Process a partition of trace works into one aggregated batch."""

    def __init__(self, method: PairMethod) -> None:
        self.method = method

    def __call__(self, works: list[_TraceWork]) -> list[_AggregatedBatch]:
        batch = _AggregatedBatch()
        for work in works:
            trace_id, pair_dict = _compute_trace_pairs(work, self.method)
            batch.add_trace(trace_id, pair_dict)
        return [batch]


class IndexBuilder:
    """Builds/updates the inverted pair index inside a key-value store."""

    def __init__(
        self,
        store: KeyValueStore,
        policy: Policy = Policy.STNM,
        method: PairMethod | None = None,
        executor: ParallelExecutor | None = None,
    ) -> None:
        if not policy.indexable:
            raise ValueError(f"policy {policy} cannot be indexed; use SC or STNM")
        if method is None:
            method = default_method(policy)
        if method.policy is not policy:
            raise ValueError(
                f"pair method {method.value!r} produces {method.policy.value!r} "
                f"pairs, not {policy.value!r}"
            )
        self.policy = policy
        self.method = method
        self.executor = executor or ParallelExecutor.serial()
        self.tables = IndexTables(store)
        self.tables.ensure_schema()
        self.tables.check_configuration(policy, method)

    # -- public API -------------------------------------------------------------

    def update(
        self,
        new_events: EventLog | Iterable[Event],
        partition: str = "",
    ) -> UpdateStats:
        """Index a batch of new events (Algorithm 1).

        ``partition`` selects a per-period Index table (§3.1.3); statistics
        tables are always global.
        """
        batches = self._group_new_events(new_events)
        stats = UpdateStats(partition=partition)
        if not batches:
            return stats
        self.tables.ensure_partition(partition)
        self.tables.register_partition(partition)
        work_items = self._prepare_work(batches, stats)
        job = _PartitionJob(self.method)
        partials = self.executor.map_partitions(job, work_items)
        aggregated = _AggregatedBatch()
        for partial in partials:
            aggregated.merge(partial)
        self._write_results(work_items, aggregated, partition, stats)
        return stats

    def build(self, log: EventLog, partition: str = "") -> UpdateStats:
        """Index a whole log from scratch (convenience alias of update)."""
        return self.update(log, partition)

    # -- internals -----------------------------------------------------------------

    def _group_new_events(
        self, new_events: EventLog | Iterable[Event]
    ) -> dict[str, SeqList]:
        if isinstance(new_events, EventLog):
            return {
                trace.trace_id: trace.pairs_view()
                for trace in new_events
                if len(trace)
            }
        grouped: dict[str, list[Event]] = {}
        for event in new_events:
            grouped.setdefault(event.trace_id, []).append(event)
        batches: dict[str, SeqList] = {}
        for trace_id, events in grouped.items():
            if any(ev.timestamp is None for ev in events):
                raise TraceOrderError(
                    f"batch events for trace {trace_id!r} must carry timestamps; "
                    "wrap them in an EventLog for position-based stamping"
                )
            events.sort(key=lambda ev: ev.timestamp)
            seq: SeqList = []
            previous: float | None = None
            for event in events:
                if previous is not None and event.timestamp <= previous:
                    raise TraceOrderError(
                        f"trace {trace_id!r} batch has non-increasing timestamps"
                    )
                previous = event.timestamp
                seq.append((event.activity, event.timestamp))
            batches[trace_id] = seq
        return batches

    def _prepare_work(
        self, batches: dict[str, SeqList], stats: UpdateStats
    ) -> list[_TraceWork]:
        work_items: list[_TraceWork] = []
        last_checked_cache: dict[tuple[str, str], dict[str, float]] = {}
        for trace_id, new_seq in batches.items():
            old_seq = self.tables.get_sequence(trace_id)
            if old_seq and new_seq[0][1] <= old_seq[-1][1]:
                raise TraceOrderError(
                    f"trace {trace_id!r}: new events start at {new_seq[0][1]!r} "
                    f"but the indexed sequence already ends at {old_seq[-1][1]!r}"
                )
            stats.traces_seen += 1
            if not old_seq:
                stats.new_traces += 1
            stats.events_indexed += len(new_seq)
            work = _TraceWork(trace_id, old_seq, new_seq)
            if old_seq and self.method is not PairMethod.STRICT:
                # Algorithm 1 line 3: join LastChecked with the batch traces.
                new_types = {activity for activity, _ in new_seq}
                all_types = {activity for activity, _ in old_seq} | new_types
                for a in all_types:
                    for b in all_types:
                        if a not in new_types and b not in new_types:
                            continue
                        pair = (a, b)
                        if pair not in last_checked_cache:
                            last_checked_cache[pair] = self.tables.get_last_checked(
                                pair
                            )
                        completion = last_checked_cache[pair].get(trace_id)
                        if completion is not None:
                            work.last_checked[pair] = completion
            work_items.append(work)
        return work_items

    def _write_results(
        self,
        work_items: list[_TraceWork],
        aggregated: _AggregatedBatch,
        partition: str,
        stats: UpdateStats,
    ) -> None:
        stats.pairs_created = aggregated.pairs_created
        for work in work_items:
            self.tables.append_sequence(work.trace_id, work.new_seq)
        for pair, entries in aggregated.index.items():
            self.tables.append_index(pair, entries, partition)
        for first, per_second in aggregated.counts.items():
            self.tables.add_counts(first, per_second)
        for second, per_first in aggregated.reverse.items():
            self.tables.add_reverse_counts(second, per_first)
        for pair, completions in aggregated.checked.items():
            self.tables.update_last_checked(pair, completions)
