"""Pattern-continuation exploration (§3.2.2, Algorithms 3-5).

Given a pattern, propose the events most likely to extend it, ranked by the
paper's Equation (1): ``score = total_completions / average_duration``.

* :meth:`ContinuationExplorer.accurate` (Algorithm 3) runs a full pattern
  detection for every candidate continuation -- exact counts and durations,
  cost grows with log size and alphabet.
* :meth:`ContinuationExplorer.fast` (Algorithm 4) uses only the pre-computed
  ``Count`` statistics -- approximate upper-bound counts, near-constant time.
* :meth:`ContinuationExplorer.hybrid` (Algorithm 5) ranks with Fast, then
  verifies only the top-K candidates with Accurate; ``top_k`` trades
  accuracy for response time (0 = Fast, alphabet size = Accurate).

Extension (§7): :meth:`ContinuationExplorer.explore_at` proposes an event to
*insert* at any position of the pattern, not only to append at the end.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import EmptyPatternError
from repro.core.matches import ContinuationProposal, PatternMatch
from repro.core.query import QueryProcessor
from repro.core.tables import IndexTables


def _sorted_proposals(
    proposals: list[ContinuationProposal],
) -> list[ContinuationProposal]:
    """Equation (1) ranking; ties broken by event name for determinism."""
    return sorted(proposals, key=lambda p: (-p.score, p.event))


class ContinuationExplorer:
    """Implements the three continuation-exploration alternatives."""

    def __init__(self, tables: IndexTables, query: QueryProcessor) -> None:
        self.tables = tables
        self.query = query

    # -- Algorithm 3 ------------------------------------------------------------

    def accurate(
        self,
        pattern: Sequence[str],
        within: float | None = None,
        partition: str | None = "",
        keep_matches: bool = False,
        candidates: set[str] | None = None,
    ) -> list[ContinuationProposal]:
        """Exact continuation ranking: one detection per candidate event.

        ``within`` applies the paper's optional time constraint (line 7):
        completions whose gap between the pattern's last event and the
        appended event exceeds ``within`` are discarded.  ``candidates``
        restricts the evaluated events (Hybrid's shortlist); by default all
        events that ever follow the pattern's last event are checked.
        """
        if not pattern:
            raise EmptyPatternError("continuation needs a non-empty pattern")
        followers = self.tables.get_counts(pattern[-1])
        if candidates is None:
            evaluated = sorted(followers)
        else:
            evaluated = sorted(candidates & set(followers))
        proposals: list[ContinuationProposal] = []
        for event in evaluated:
            extended = list(pattern) + [event]
            matches = self.query.detect(extended, partition)
            if within is not None:
                matches = [
                    match
                    for match in matches
                    if match.timestamps[-1] - match.timestamps[-2] <= within
                ]
            completions = len(matches)
            if completions:
                total_gap = sum(
                    match.timestamps[-1] - match.timestamps[-2] for match in matches
                )
                average = total_gap / completions
            else:
                average = 0.0
            proposals.append(
                ContinuationProposal(
                    event=event,
                    completions=completions,
                    average_duration=average,
                    exact=True,
                    matches=tuple(matches) if keep_matches else (),
                )
            )
        return _sorted_proposals(proposals)

    # -- Algorithm 4 ---------------------------------------------------------------

    def fast(self, pattern: Sequence[str]) -> list[ContinuationProposal]:
        """Heuristic ranking from pre-computed pair statistics only."""
        if not pattern:
            raise EmptyPatternError("continuation needs a non-empty pattern")
        max_completions = None
        for first, second in zip(pattern, pattern[1:]):
            _, completions = self.tables.get_pair_count((first, second))
            if max_completions is None or completions < max_completions:
                max_completions = completions
        proposals: list[ContinuationProposal] = []
        for event, (total_duration, completions) in sorted(
            self.tables.get_counts(pattern[-1]).items()
        ):
            bounded = (
                completions
                if max_completions is None
                else min(max_completions, completions)
            )
            average = total_duration / completions if completions else 0.0
            proposals.append(
                ContinuationProposal(
                    event=event,
                    completions=bounded,
                    average_duration=average,
                    exact=False,
                )
            )
        return _sorted_proposals(proposals)

    # -- Algorithm 5 -----------------------------------------------------------------

    def hybrid(
        self,
        pattern: Sequence[str],
        top_k: int,
        within: float | None = None,
        partition: str | None = "",
    ) -> list[ContinuationProposal]:
        """Fast pre-ranking, Accurate verification of the top ``top_k``."""
        if top_k < 0:
            raise ValueError("top_k must be >= 0")
        fast_proposals = self.fast(pattern)
        if top_k == 0:
            return fast_proposals
        shortlist = {p.event for p in fast_proposals[:top_k]}
        verified = self.accurate(pattern, within, partition, candidates=shortlist)
        return _sorted_proposals(verified)

    # -- §7 extension: insertion at arbitrary positions ----------------------------------

    def explore_at(
        self,
        pattern: Sequence[str],
        position: int,
        partition: str | None = "",
    ) -> list[ContinuationProposal]:
        """Propose events to insert so they become ``pattern[position]``.

        ``position == len(pattern)`` appends (identical to Accurate);
        ``position == 0`` prepends.  Candidates must form an indexed pair
        with both neighbours, then each candidate is verified exactly.
        The reported duration is the average gap to the preceding event
        (or to the following event when prepending).
        """
        if not pattern:
            raise EmptyPatternError("continuation needs a non-empty pattern")
        if not 0 <= position <= len(pattern):
            raise ValueError(f"position must be within [0, {len(pattern)}]")
        if position == len(pattern):
            return self.accurate(pattern, partition=partition)
        if position == 0:
            candidates = set(self.tables.get_reverse_counts(pattern[0]))
        else:
            followers = set(self.tables.get_counts(pattern[position - 1]))
            predecessors = set(self.tables.get_reverse_counts(pattern[position]))
            candidates = followers & predecessors
        proposals: list[ContinuationProposal] = []
        gap_index = position if position > 0 else 1
        for event in sorted(candidates):
            extended = list(pattern)
            extended.insert(position, event)
            matches = self.query.detect(extended, partition)
            completions = len(matches)
            if completions:
                total_gap = sum(
                    match.timestamps[gap_index] - match.timestamps[gap_index - 1]
                    for match in matches
                )
                average = total_gap / completions
            else:
                average = 0.0
            proposals.append(
                ContinuationProposal(
                    event=event,
                    completions=completions,
                    average_duration=average,
                    exact=True,
                )
            )
        return _sorted_proposals(proposals)

    # -- accuracy metric used by the paper's Figure 7 -----------------------------------

    @staticmethod
    def ranking_accuracy(
        reference: list[ContinuationProposal],
        candidate: list[ContinuationProposal],
    ) -> float:
        """Fraction of reference events present in the candidate ranking.

        Matches §5.4.3: with ``k`` = number of propositions the Accurate
        method returns with a positive score, accuracy is the overlap of the
        candidate's top-``k`` events with those reference events.
        """
        reference_events = [p.event for p in reference if p.score > 0]
        if not reference_events:
            return 1.0
        top = {p.event for p in candidate[: len(reference_events)]}
        hits = sum(1 for event in reference_events if event in top)
        return hits / len(reference_events)
