"""The paper's contribution: pair-based sequence indexing and querying.

Modules map one-to-one onto the paper's sections:

* :mod:`repro.core.model`        -- Definition 2.1 (event log formalism)
* :mod:`repro.core.policies`     -- SC / STNM / STAM detection policies (§2.1)
* :mod:`repro.core.pairs`        -- event-pair creation, Algorithms 6-8 (§4)
* :mod:`repro.core.tables`       -- the five index tables (§3.1.2)
* :mod:`repro.core.builder`      -- incremental index update, Algorithm 1 (§3.1.3)
* :mod:`repro.core.query`        -- statistics + pattern detection, Algorithm 2 (§3.2.1)
* :mod:`repro.core.pattern`      -- composite pattern language (SEQ/!/(|)/+/WITHIN)
* :mod:`repro.core.continuation` -- Accurate / Fast / Hybrid, Algorithms 3-5 (§3.2.2)
* :mod:`repro.core.engine`       -- the `SequenceIndex` facade tying it together
"""

from repro.core.engine import SequenceIndex
from repro.core.errors import (
    EmptyPatternError,
    PatternSyntaxError,
    PolicyMismatchError,
    ReproError,
    TraceOrderError,
)
from repro.core.matches import (
    Completion,
    ContinuationProposal,
    PairStats,
    PatternMatch,
    PatternPlan,
)
from repro.core.model import Event, EventLog, Trace
from repro.core.pairs import PairMethod, create_pairs
from repro.core.pattern import Pattern, PatternElement, parse_pattern
from repro.core.policies import Policy

__all__ = [
    "SequenceIndex",
    "Event",
    "Trace",
    "EventLog",
    "Policy",
    "PairMethod",
    "create_pairs",
    "Pattern",
    "PatternElement",
    "parse_pattern",
    "PatternMatch",
    "PatternPlan",
    "Completion",
    "PairStats",
    "ContinuationProposal",
    "ReproError",
    "TraceOrderError",
    "EmptyPatternError",
    "PatternSyntaxError",
    "PolicyMismatchError",
]
