"""The query processor component (§3.2): statistics and pattern detection.

*Statistics* queries read only the ``Count`` and ``LastChecked`` tables --
constant work per pattern pair, fetched as one batched read.  *Pattern
detection* (Algorithm 2) fetches the inverted-index entries of every
consecutive pattern pair and chains them per trace by joining on the shared
event's timestamp.  Because the index's pairs are greedy and
non-overlapping, a chain extends in at most one way, so the join is a hash
lookup per partial chain.

Since the selectivity-driven planner rework, detection no longer evaluates
pairs left-to-right unconditionally.  A :class:`~repro.core.matches.QueryPlan`
is built first from the exact per-pair cardinalities the ``Count`` table
stores anyway (one batched read): the join starts at the *rarest* pair and
extends bidirectionally, cheapest adjacent pair next, so the intermediate
chain set is bounded by the smallest posting list instead of the first one.
Posting lists are fetched with one batched ``multi_get`` per Index table,
per-trace candidate sets are intersected *before* any posting list is
decoded and grouped, and grouping is lazy -- restricted to surviving traces,
skipped entirely for pairs after the chain set empties, and memoized in an
optional decoded-postings LRU (see :class:`repro.core.engine.SequenceIndex`).
The join order never changes the result: extension is unique per chain, so
the planner's output is byte-identical to left-to-right evaluation
(property-tested against it and against a brute-force oracle).

The detection by-product the paper mentions -- matches of every pattern
*prefix* -- is available through :meth:`QueryProcessor.detect_with_prefixes`,
which keeps the old left-to-right order as an explicit plan (prefix
snapshots only exist in that order).

Skip-till-any-match (STAM, §7 future work) is supported as an extension:
the pair index prunes to candidate traces (any STAM match implies the
corresponding STNM pairs exist), then the stored sequence is enumerated
exhaustively per candidate.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.errors import EmptyPatternError
from repro.core.matches import (
    PairStats,
    PatternMatch,
    PatternPlan,
    PatternStats,
    QueryPlan,
)
from repro.core.pattern import Pattern, find_matches
from repro.core.policies import Policy
from repro.core.tables import IndexTables
from repro.obs.trace import current_tracer

Chain = tuple[float, ...]

_MISS = object()


class _PlannedPostings:
    """Posting-list access for one planned query: batch-fetch, lazy group.

    Raw entry lists for all uncached pairs are fetched in one batched read;
    decoding/grouping into per-trace sorted completion lists happens only on
    demand (and only for surviving traces when no postings cache is
    attached, since a partial grouping must not be memoized).

    ``within`` pushes a WITHIN window into pruning: completions whose own
    span exceeds the window are dropped from every grouping and trace set
    this query sees.  That is exact for the plain chain join -- a chain's
    timestamps are monotonic, so every pair completion inside a chain of
    duration <= tau itself spans <= tau, and dropping entries can never
    *create* a chain -- but unsound for composite verification, where the
    STNM matcher may retry from a later occurrence than the greedy pair
    recorded (see DESIGN.md).  Only the filtered *view* is per-query; the
    shared postings cache always stores unfiltered groupings.
    """

    def __init__(
        self,
        query: "QueryProcessor",
        plan: QueryPlan,
        within: float | None = None,
    ) -> None:
        self._query = query
        self._pairs = plan.pairs
        self._partition = plan.partition
        self._within = within
        self._grouped: dict[int, dict[str, list[tuple[float, float]]]] = {}
        self._full: dict[int, dict[str, list[tuple[float, float]]]] = {}
        self._raw: dict[int, list[tuple[str, float, float]]] = {}
        self._trace_sets: dict[int, set[str]] = {}
        span = current_tracer().span("fetch_postings")
        with span:
            missing: list[int] = []
            for i, pair in enumerate(self._pairs):
                hit = query._postings_cache_get(pair, self._partition)
                if hit is not None:
                    self._full[i] = hit
                else:
                    missing.append(i)
            if missing:
                fetched = query.tables.get_index_many(
                    [self._pairs[i] for i in missing], self._partition
                )
                for i in missing:
                    self._raw[i] = fetched[self._pairs[i]]
            if span.enabled:
                span.add("pairs", len(self._pairs))
                span.add("cache_hits", len(self._pairs) - len(missing))
                span.add("fetched", len(missing))
                span.add("entries", sum(len(raw) for raw in self._raw.values()))
                if within is not None:
                    span.add("within_pushdown", 1)

    def trace_set(self, i: int) -> set[str]:
        """Trace ids holding at least one in-window completion of pair ``i``."""
        cached = self._trace_sets.get(i)
        if cached is None:
            within = self._within
            full = self._full.get(i)
            if full is not None:
                if within is None:
                    cached = set(full)
                else:
                    cached = {
                        trace_id
                        for trace_id, completions in full.items()
                        if any(ts_b - ts_a <= within for ts_a, ts_b in completions)
                    }
            elif within is None:
                cached = {entry[0] for entry in self._raw[i]}
            else:
                cached = {
                    trace_id
                    for trace_id, ts_a, ts_b in self._raw[i]
                    if ts_b - ts_a <= within
                }
            self._trace_sets[i] = cached
        return cached

    def group(
        self, i: int, restrict: set[str]
    ) -> dict[str, list[tuple[float, float]]]:
        """Per-trace sorted (window-surviving) completions of pair ``i``.

        With a postings cache attached the full unfiltered grouping is built
        once and memoized (hot pairs skip re-decode/re-group on later
        queries); without one only ``restrict`` traces are decoded.
        """
        grouped = self._grouped.get(i)
        if grouped is not None:
            return grouped
        full = self._full.get(i)
        if full is None:
            raw = self._raw[i]
            if self._query.postings_cache is not None:
                full = _group_entries(raw, None)
                self._query._postings_cache_put(self._pairs[i], self._partition, full)
                self._full[i] = full
            else:
                grouped = _group_entries(raw, restrict, self._within)
                self._grouped[i] = grouped
                return grouped
        if self._within is None:
            grouped = full
        else:
            within = self._within
            grouped = {}
            for trace_id, completions in full.items():
                kept = [c for c in completions if c[1] - c[0] <= within]
                if kept:
                    grouped[trace_id] = kept
        self._grouped[i] = grouped
        return grouped


def _group_entries(
    entries: list[tuple[str, float, float]],
    restrict: set[str] | None,
    within: float | None = None,
) -> dict[str, list[tuple[float, float]]]:
    """Group raw index entries per trace (each list time-ordered)."""
    grouped: dict[str, list[tuple[float, float]]] = {}
    for trace_id, ts_a, ts_b in entries:
        if restrict is not None and trace_id not in restrict:
            continue
        if within is not None and ts_b - ts_a > within:
            continue
        grouped.setdefault(trace_id, []).append((ts_a, ts_b))
    for completions in grouped.values():
        completions.sort()
    return grouped


class QueryProcessor:
    """Executes pattern queries against the index tables.

    ``postings_cache`` is an optional LRU of decoded/grouped posting lists
    keyed by ``(generation, partition, pair)``; ``generation`` supplies the
    owning index's write generation so a batch update invalidates by
    construction.  ``sequence_cache`` is the same idea for decoded Seq-table
    rows, keyed ``(generation, trace_id)`` -- composite-pattern verification
    re-reads the same candidate traces across queries, and decoding a long
    sequence document dominates the verify stage when served cold.
    ``planner_enabled=False`` pins every detection to naive left-to-right
    evaluation (the ablation baseline and the prefix path).
    """

    def __init__(
        self,
        tables: IndexTables,
        postings_cache=None,
        sequence_cache=None,
        generation: Callable[[], int] | None = None,
        planner_enabled: bool = True,
    ) -> None:
        self.tables = tables
        self.postings_cache = postings_cache
        self.sequence_cache = sequence_cache
        self._generation = generation if generation is not None else lambda: 0
        self.planner_enabled = planner_enabled
        # Decoded Count rows keyed (generation, first_event).  Decoding a
        # Count document is O(|alphabet|) -- too expensive to repeat per
        # plan() -- while the rows themselves are bounded by the alphabet,
        # so the planner keeps them warm per write generation (the key
        # embeds the generation, exactly like the postings cache, so an
        # index update invalidates by construction).
        self._count_rows: dict[tuple[int, str], dict] = {}

    def _bump(self, name: str, amount: int = 1) -> None:
        metrics = getattr(self.tables.store, "metrics", None)
        if metrics is not None:
            metrics.bump(name, amount)

    # -- postings cache ----------------------------------------------------------

    def _postings_cache_get(self, pair, partition):
        if self.postings_cache is None:
            return None
        key = (self._generation(), partition, pair)
        hit = self.postings_cache.get(key, _MISS)
        if hit is _MISS:
            self._bump("postings_cache_misses")
            return None
        self._bump("postings_cache_hits")
        return hit

    def _postings_cache_put(self, pair, partition, grouped) -> None:
        if self.postings_cache is not None:
            self.postings_cache.put((self._generation(), partition, pair), grouped)

    def _grouped_full(
        self, pair: tuple[str, str], partition: str | None
    ) -> dict[str, list[tuple[float, float]]]:
        """Fully grouped postings of one pair, through the cache if attached."""
        hit = self._postings_cache_get(pair, partition)
        if hit is not None:
            return hit
        grouped = self.tables.get_index_grouped(pair, partition)
        self._postings_cache_put(pair, partition, grouped)
        return grouped

    # -- statistics (§3.2.1 "Statistics") ---------------------------------------

    def statistics(self, pattern: Sequence[str], all_pairs: bool = False) -> PatternStats:
        """Pairwise statistics for ``pattern`` plus derived aggregates.

        Returns one :class:`PairStats` per consecutive pair; the
        :class:`PatternStats` wrapper exposes the paper's upper bound on
        whole-pattern completions and the summed average duration estimate.

        With ``all_pairs=True``, statistics of every non-adjacent pattern
        pair are also fetched, tightening the completions bound (§3.2.1's
        accuracy/time trade-off).  All O(p^2) ``Count`` and ``LastChecked``
        rows come from two batched reads instead of a point read per pair.
        """
        if len(pattern) < 2:
            raise EmptyPatternError("statistics need a pattern of length >= 2")
        adjacent = list(zip(pattern, pattern[1:]))
        extras: list[tuple[str, str]] = []
        if all_pairs:
            for i in range(len(pattern)):
                for j in range(i + 2, len(pattern)):
                    extras.append((pattern[i], pattern[j]))
        counts = self.tables.get_pair_counts(adjacent + extras)
        checked = self.tables.get_last_checked_many(adjacent + extras)

        def row(pair: tuple[str, str]) -> PairStats:
            total_duration, completions = counts[pair]
            stamps = checked[pair]
            return PairStats(
                pair=pair,
                completions=completions,
                total_duration=total_duration,
                last_completion=max(stamps.values()) if stamps else None,
            )

        return PatternStats(
            pattern=tuple(pattern),
            pairs=tuple(row(pair) for pair in adjacent),
            extra_pairs=tuple(row(pair) for pair in extras),
        )

    def _pair_stats(self, first: str, second: str) -> PairStats:
        total_duration, completions = self.tables.get_pair_count((first, second))
        last = self.tables.get_last_completion((first, second))
        return PairStats(
            pair=(first, second),
            completions=completions,
            total_duration=total_duration,
            last_completion=last,
        )

    # -- planning ----------------------------------------------------------------

    def plan(
        self, pattern: Sequence[str], partition: str | None = ""
    ) -> QueryPlan:
        """Build the execution plan for a detection of ``pattern``.

        One batched ``Count`` read yields every consecutive pair's exact
        global completion count (exact even per partition as an upper
        bound: statistics tables are global, so zero means zero
        everywhere).  The join order starts at the rarest pair and grows
        the covered window towards whichever adjacent pair is cheaper.
        """
        if len(pattern) < 2:
            raise EmptyPatternError("planning needs a pattern of length >= 2")
        span = current_tracer().span("plan")
        with span:
            pairs = tuple(zip(pattern, pattern[1:]))
            cardinalities = self._cardinalities(pairs)
            natural = tuple(range(len(pairs)))
            order = (
                _rarest_first_order(cardinalities) if self.planner_enabled else natural
            )
            if span.enabled:
                span.add("pairs", len(pairs))
                span.add("min_cardinality", min(cardinalities, default=0))
            return QueryPlan(
                pattern=tuple(pattern),
                pairs=pairs,
                cardinalities=cardinalities,
                order=order,
                reordered=order != natural,
                partition=partition,
            )

    def cardinalities(
        self, pairs: Sequence[tuple[str, str]]
    ) -> tuple[int, ...]:
        """Exact ``Count``-table completion counts for arbitrary pairs.

        Public for the scatter-gather coordinator, which sums each shard's
        cardinalities into the merged counts a global plan is built from.
        """
        return self._cardinalities(tuple(pairs))

    def plan_from_cardinalities(
        self,
        pattern: Sequence[str],
        cardinalities: Sequence[int],
        partition: str | None = "",
    ) -> QueryPlan:
        """Build a plan from externally supplied (e.g. cluster-wide merged)
        cardinalities instead of this store's own ``Count`` rows."""
        if len(pattern) < 2:
            raise EmptyPatternError("planning needs a pattern of length >= 2")
        pairs = tuple(zip(pattern, pattern[1:]))
        if len(cardinalities) != len(pairs):
            raise ValueError("need one cardinality per consecutive pair")
        cards = tuple(int(c) for c in cardinalities)
        natural = tuple(range(len(pairs)))
        order = _rarest_first_order(cards) if self.planner_enabled else natural
        return QueryPlan(
            pattern=tuple(pattern),
            pairs=pairs,
            cardinalities=cards,
            order=order,
            reordered=order != natural,
            partition=partition,
        )

    def _cardinalities(self, pairs: tuple[tuple[str, str], ...]) -> tuple[int, ...]:
        """Exact completion counts per pair, through the Count-row cache."""
        generation = self._generation()
        missing = [
            first
            for first in dict.fromkeys(first for first, _ in pairs)
            if (generation, first) not in self._count_rows
        ]
        if missing:
            if len(self._count_rows) > 4096:  # dead generations age out here
                self._count_rows.clear()
            for first, row in self.tables.get_count_rows(missing).items():
                self._count_rows[(generation, first)] = row
        out = []
        for first, second in pairs:
            stats = self._count_rows[(generation, first)].get(second)
            out.append(int(stats[1]) if stats is not None else 0)
        return tuple(out)

    # -- pattern detection (Algorithm 2) ------------------------------------------

    def detect(
        self,
        pattern: Sequence[str],
        partition: str | None = "",
        policy: Policy | None = None,
        max_matches: int | None = None,
        within: float | None = None,
        plan: QueryPlan | None = None,
    ) -> list[PatternMatch]:
        """All completions of ``pattern``, one match per completion.

        ``partition=""`` queries the default index partition, a name queries
        that period's partition, and ``None`` unions all partitions.  With
        ``policy=Policy.STAM`` the relaxed overlapping semantics are used
        (see the module docstring); ``max_matches`` caps STAM explosion.
        ``within`` keeps only matches whose end-to-end span is at most that
        long (a CEP-style WITHIN window); the window is also pushed into the
        planned chain join, where per-completion span filtering is exact.
        ``plan`` overrides planning with a precomputed
        :class:`~repro.core.matches.QueryPlan` (the scatter-gather
        coordinator plans once from merged cardinalities and hands every
        shard the same plan); the plan never changes the result, only the
        join order.
        """
        if len(pattern) == 0:
            raise EmptyPatternError("cannot detect an empty pattern")
        if within is not None and within < 0:
            raise ValueError("within must be non-negative")
        if policy is Policy.STAM:
            matches = self._detect_stam(pattern, partition, max_matches)
        elif len(pattern) == 1:
            matches = self._detect_single(pattern[0])
        else:
            chains = self._chain(pattern, partition, within=within, plan=plan)
            span = current_tracer().span("materialize")
            with span:
                matches = [
                    PatternMatch(trace_id, chain)
                    for trace_id, trace_chains in sorted(chains.items())
                    for chain in trace_chains
                ]
                if span.enabled:
                    span.add("matches", len(matches))
        if within is not None:
            matches = [m for m in matches if m.duration <= within]
        if max_matches is not None and policy is not Policy.STAM:
            matches = matches[:max_matches]
        return matches

    def count(
        self,
        pattern: Sequence[str],
        partition: str | None = "",
        within: float | None = None,
        plan: QueryPlan | None = None,
    ) -> int:
        """Number of completions of ``pattern``.

        Counts the chains directly -- no :class:`PatternMatch` object is
        materialized per completion.
        """
        if len(pattern) == 0:
            raise EmptyPatternError("cannot detect an empty pattern")
        if within is not None and within < 0:
            raise ValueError("within must be non-negative")
        if len(pattern) == 1:
            # Single events span zero time, so any non-negative window keeps
            # them all; count occurrences straight off the Seq table.
            return sum(
                1
                for _, seq in self.tables.iter_sequences()
                for activity, _ in seq
                if activity == pattern[0]
            )
        chains = self._chain(pattern, partition, within=within, plan=plan)
        if within is None:
            return sum(len(trace_chains) for trace_chains in chains.values())
        return sum(
            1
            for trace_chains in chains.values()
            for chain in trace_chains
            if chain[-1] - chain[0] <= within
        )

    def detect_with_prefixes(
        self, pattern: Sequence[str], partition: str | None = ""
    ) -> dict[int, list[PatternMatch]]:
        """Matches for every prefix of ``pattern`` of length >= 2.

        The paper notes these come for free: Algorithm 2 materialises each
        prefix's chains on the way to the full pattern.  Prefix snapshots
        only exist under left-to-right evaluation, so this path keeps the
        naive order as an explicit plan regardless of the planner setting.
        """
        if len(pattern) < 2:
            raise EmptyPatternError("prefix detection needs a pattern of length >= 2")
        result: dict[int, list[PatternMatch]] = {}
        chains = self._chain_left_to_right(pattern, partition, snapshots=result)
        result[len(pattern)] = [
            PatternMatch(trace_id, chain)
            for trace_id, trace_chains in sorted(chains.items())
            for chain in trace_chains
        ]
        return result

    def contains(
        self,
        pattern: Sequence[str],
        partition: str | None = "",
        plan: QueryPlan | None = None,
    ) -> list[str]:
        """Ids of traces containing ``pattern`` at least once.

        Short-circuits per trace: candidate traces are intersected from the
        pair index first, then each candidate stops at its first chain that
        survives every join step -- no match set is materialized.
        """
        if len(pattern) == 0:
            raise EmptyPatternError("cannot detect an empty pattern")
        if len(pattern) == 1:
            return sorted(
                trace_id
                for trace_id, seq in self.tables.iter_sequences()
                if any(activity == pattern[0] for activity, _ in seq)
            )
        if plan is None:
            plan = self.plan(pattern, partition)
            if 0 in plan.cardinalities:
                return []
        self._note_executed(plan)
        postings = _PlannedPostings(self, plan)
        survivors = self._intersect_candidates(plan, postings)
        if not survivors:
            return []
        order = plan.order
        start = order[0]
        start_grouped = postings.group(start, survivors)
        found: list[str] = []
        for trace_id in sorted(survivors):
            entries = start_grouped.get(trace_id)
            if not entries:
                continue
            by_first: dict[int, dict[float, float]] = {}
            by_second: dict[int, dict[float, float]] = {}
            for ts_a, ts_b in entries:
                low, high = ts_a, ts_b
                left = right = start
                alive = True
                for idx in order[1:]:
                    completions = postings.group(idx, survivors).get(trace_id)
                    if not completions:
                        alive = False
                        break
                    if idx > right:
                        step = by_first.get(idx)
                        if step is None:
                            step = by_first[idx] = dict(completions)
                        high = step.get(high)
                        if high is None:
                            alive = False
                            break
                        right = idx
                    else:
                        step = by_second.get(idx)
                        if step is None:
                            step = by_second[idx] = {
                                b: a for a, b in completions
                            }
                        low = step.get(low)
                        if low is None:
                            alive = False
                            break
                        left = idx
                if alive:
                    found.append(trace_id)
                    break
        return found

    # -- composite patterns (prune-then-verify) ----------------------------------

    def plan_pattern(
        self, pattern: Pattern, partition: str | None = ""
    ) -> PatternPlan:
        """Build the pruning plan for a composite-pattern query.

        Each adjacency of *positive* elements becomes one pruning group
        holding every branch pair of the two elements' alternation sets;
        the group's cardinality is the sum of its branch-pair ``Count``
        entries (alternation cardinality is additive).  Negated elements
        are skipped entirely -- a forbidden pair with zero count must not
        prune the query -- and Kleene elements prune like their plain
        selves (a single occurrence satisfies ``+``, so only the base
        pair is required).  Groups intersect cheapest-first under the
        planner, exactly like pair posting lists in :meth:`plan`.
        """
        span = current_tracer().span("plan")
        with span:
            groups = self.pattern_groups(pattern)
            flat = tuple(pair for group in groups for pair in group)
            flat_cards = self._cardinalities(flat) if flat else ()
            cardinalities: list[int] = []
            offset = 0
            for group in groups:
                cardinalities.append(sum(flat_cards[offset : offset + len(group)]))
                offset += len(group)
            natural = tuple(range(len(groups)))
            if self.planner_enabled:
                order = tuple(
                    sorted(natural, key=lambda i: (cardinalities[i], i))
                )
            else:
                order = natural
            if span.enabled:
                span.add("groups", len(groups))
                span.add("min_cardinality", min(cardinalities, default=0))
            return PatternPlan(
                pattern=pattern,
                groups=tuple(groups),
                cardinalities=tuple(cardinalities),
                order=order,
                reordered=order != natural,
                negated=tuple(str(e) for e in pattern.elements if e.negated),
                partition=partition,
            )

    def pattern_groups(
        self, pattern: Pattern
    ) -> tuple[tuple[tuple[str, str], ...], ...]:
        """The pruning groups of ``pattern`` (deterministic, plan-free)."""
        elements = pattern.elements
        positives = pattern.positive_indices
        return tuple(
            tuple(
                (a, b)
                for a in elements[left].types
                for b in elements[right].types
            )
            for left, right in zip(positives, positives[1:])
        )

    def plan_pattern_from_cardinalities(
        self,
        pattern: Pattern,
        cardinalities: Sequence[int],
        partition: str | None = "",
    ) -> PatternPlan:
        """Build a composite plan from externally merged group cardinalities."""
        groups = self.pattern_groups(pattern)
        if len(cardinalities) != len(groups):
            raise ValueError("need one cardinality per pruning group")
        cards = tuple(int(c) for c in cardinalities)
        natural = tuple(range(len(groups)))
        if self.planner_enabled:
            order = tuple(sorted(natural, key=lambda i: (cards[i], i)))
        else:
            order = natural
        return PatternPlan(
            pattern=pattern,
            groups=groups,
            cardinalities=cards,
            order=order,
            reordered=order != natural,
            negated=tuple(str(e) for e in pattern.elements if e.negated),
            partition=partition,
        )

    def detect_pattern(
        self,
        pattern: Pattern,
        partition: str | None = "",
        max_matches: int | None = None,
        plan: PatternPlan | None = None,
    ) -> list[PatternMatch]:
        """All matches of a composite ``pattern`` (STNM-greedy semantics).

        The pair index prunes: a zero-cardinality *positive* adjacency
        proves the result empty before any posting list is read, and the
        surviving groups' trace sets are intersected cheapest-first.
        Candidates are then verified against their stored sequences with
        :func:`repro.core.pattern.find_matches`, enforcing windows and
        negations from the indexed timestamps.  Semantics match the SASE
        oracle (:class:`repro.baselines.sase.nfa.PatternNfa`) exactly --
        the differential suite holds the two paths byte-identical.
        """
        if plan is None:
            plan = self.plan_pattern(pattern, partition)
            if plan.groups and 0 in plan.cardinalities:
                return []
        self._note_executed(plan)
        candidates = self._pattern_candidates(plan)
        if candidates is not None and not candidates:
            return []
        span = current_tracer().span("verify")
        with span:
            matches: list[PatternMatch] = []
            scanned = 0
            for trace_id, seq in self._candidate_sequences(candidates):
                budget = None if max_matches is None else max_matches - len(matches)
                if budget is not None and budget <= 0:
                    break
                activities = [activity for activity, _ in seq]
                stamps = [ts for _, ts in seq]
                for span_ts in find_matches(activities, stamps, pattern, budget):
                    matches.append(PatternMatch(trace_id, span_ts))
                scanned += 1
            if span.enabled:
                span.add("traces", scanned)
                span.add("matches", len(matches))
            return matches

    def count_pattern(
        self,
        pattern: Pattern,
        partition: str | None = "",
        plan: PatternPlan | None = None,
    ) -> int:
        """Number of matches of a composite ``pattern``.

        Same pruning as :meth:`detect_pattern`; no
        :class:`PatternMatch` is materialized per completion, and a
        zero-cardinality positive group short-circuits before any trace
        sequence is fetched.
        """
        if plan is None:
            plan = self.plan_pattern(pattern, partition)
            if plan.groups and 0 in plan.cardinalities:
                return 0
        self._note_executed(plan)
        candidates = self._pattern_candidates(plan)
        if candidates is not None and not candidates:
            return 0
        total = 0
        for _, seq in self._candidate_sequences(candidates):
            activities = [activity for activity, _ in seq]
            stamps = [ts for _, ts in seq]
            total += len(find_matches(activities, stamps, pattern))
        return total

    def contains_pattern(
        self,
        pattern: Pattern,
        partition: str | None = "",
        plan: PatternPlan | None = None,
    ) -> list[str]:
        """Ids of traces with at least one match of a composite ``pattern``.

        Short-circuits per trace at the first match that survives every
        window and negation check.
        """
        if plan is None:
            plan = self.plan_pattern(pattern, partition)
            if plan.groups and 0 in plan.cardinalities:
                return []
        self._note_executed(plan)
        candidates = self._pattern_candidates(plan)
        if candidates is not None and not candidates:
            return []
        found: list[str] = []
        for trace_id, seq in self._candidate_sequences(candidates):
            activities = [activity for activity, _ in seq]
            stamps = [ts for _, ts in seq]
            if find_matches(activities, stamps, pattern, max_matches=1):
                found.append(trace_id)
        return found

    def _pattern_candidates(self, plan: PatternPlan) -> set[str] | None:
        """Traces surviving pair-index pruning; ``None`` = nothing to prune.

        Posting lists of every group pair are fetched in one batched read
        (through the decoded-postings cache where attached), each group's
        trace set is the union of its branch pairs' sets (alternation),
        and groups intersect in plan order -- cheapest first -- with an
        empty-set early exit.
        """
        if not plan.groups:
            return None
        pair_sets: dict[tuple[str, str], set[str]] = {}
        span = current_tracer().span("fetch_postings")
        with span:
            unique = list(
                dict.fromkeys(pair for group in plan.groups for pair in group)
            )
            missing: list[tuple[str, str]] = []
            for pair in unique:
                hit = self._postings_cache_get(pair, plan.partition)
                if hit is not None:
                    pair_sets[pair] = set(hit)
                else:
                    missing.append(pair)
            if missing:
                fetched = self.tables.get_index_many(missing, plan.partition)
                for pair in missing:
                    pair_sets[pair] = {entry[0] for entry in fetched[pair]}
            if span.enabled:
                span.add("pairs", len(unique))
                span.add("cache_hits", len(unique) - len(missing))
                span.add("fetched", len(missing))
        span = current_tracer().span("intersect")
        with span:
            survivors: set[str] | None = None
            for idx in plan.order:
                traces: set[str] = set()
                for pair in plan.groups[idx]:
                    traces |= pair_sets[pair]
                survivors = traces if survivors is None else survivors & traces
                if not survivors:
                    survivors = set()
                    break
            result = survivors if survivors is not None else set()
            if span.enabled:
                span.add("sets", len(plan.groups))
                span.add("survivors", len(result))
            return result

    def _candidate_sequences(self, candidates: set[str] | None):
        """Stored ``(trace_id, sequence)`` rows for verification, id-ordered."""
        if candidates is None:
            yield from sorted(self.tables.iter_sequences())
        else:
            for trace_id in sorted(candidates):
                yield trace_id, self._get_sequence(trace_id)

    def _get_sequence(self, trace_id: str):
        """One decoded Seq-table row, through the sequence cache if attached."""
        if self.sequence_cache is None:
            return self.tables.get_sequence(trace_id)
        key = (self._generation(), trace_id)
        hit = self.sequence_cache.get(key, _MISS)
        if hit is not _MISS:
            self._bump("sequence_cache_hits")
            return hit
        self._bump("sequence_cache_misses")
        seq = self.tables.get_sequence(trace_id)
        self.sequence_cache.put(key, seq)
        return seq

    # -- internals ---------------------------------------------------------------------

    def _detect_single(self, activity: str) -> list[PatternMatch]:
        """Length-1 patterns: scan the Seq table (no pair exists to look up)."""
        matches: list[PatternMatch] = []
        for trace_id, seq in self.tables.iter_sequences():
            for act, ts in seq:
                if act == activity:
                    matches.append(PatternMatch(trace_id, (ts,)))
        return matches

    def _chain(
        self,
        pattern: Sequence[str],
        partition: str | None,
        within: float | None = None,
        plan: QueryPlan | None = None,
    ) -> dict[str, list[Chain]]:
        """Algorithm 2: join consecutive pair entries on shared timestamps."""
        if not self.planner_enabled and plan is None:
            return self._chain_left_to_right(pattern, partition)
        return self._chain_planned(pattern, partition, within=within, plan=plan)

    def _note_executed(self, plan: QueryPlan) -> None:
        if plan.reordered:
            self._bump("planner_reorders")

    def _intersect_candidates(
        self, plan: QueryPlan, postings: _PlannedPostings
    ) -> set[str]:
        """Traces holding every pair, intersected cheapest set first.

        Starting from the rarest pair's trace set keeps every intermediate
        intersection no larger than the smallest one seen so far, and an
        empty result aborts before any posting list is decoded or grouped.
        """
        span = current_tracer().span("intersect")
        with span:
            survivors: set[str] | None = None
            for i in sorted(
                range(len(plan.pairs)), key=lambda i: (plan.cardinalities[i], i)
            ):
                traces = postings.trace_set(i)
                survivors = set(traces) if survivors is None else survivors & traces
                if not survivors:
                    survivors = set()
                    break
            result = survivors or set()
            if span.enabled:
                span.add("sets", len(plan.pairs))
                span.add("survivors", len(result))
            return result

    def _chain_planned(
        self,
        pattern: Sequence[str],
        partition: str | None,
        within: float | None = None,
        plan: QueryPlan | None = None,
    ) -> dict[str, list[Chain]]:
        """Planner execution: rarest pair first, bidirectional extension.

        Produces exactly the left-to-right result (greedy non-overlapping
        pairs make both endpoints of a completion unique within a trace, so
        chains extend uniquely in either direction); each trace's chains are
        sorted, which is the order left-to-right evaluation emits.
        """
        if plan is None:
            plan = self.plan(pattern, partition)
            if 0 in plan.cardinalities:
                # Count is global and exact: a zero-cardinality pair has no
                # postings in any partition, so the chain is dead on arrival.
                return {}
        self._note_executed(plan)
        postings = _PlannedPostings(self, plan, within=within)
        survivors = self._intersect_candidates(plan, postings)
        if not survivors:
            return {}
        span = current_tracer().span("join")
        with span:
            order = plan.order
            start = order[0]
            grouped = postings.group(start, survivors)
            chains: dict[str, list[Chain]] = {}
            for trace_id in survivors:
                entries = grouped.get(trace_id)
                if entries:
                    chains[trace_id] = [tuple(entry) for entry in entries]
            left = right = start
            for idx in order[1:]:
                if not chains:
                    break
                frontier = set(chains)
                step_grouped = postings.group(idx, frontier)
                extended: dict[str, list[Chain]] = {}
                if idx > right:
                    for trace_id, trace_chains in chains.items():
                        completions = step_grouped.get(trace_id)
                        if not completions:
                            continue
                        by_first = dict(completions)
                        new_chains = []
                        for chain in trace_chains:
                            ts_b = by_first.get(chain[-1])
                            if ts_b is not None:
                                new_chains.append(chain + (ts_b,))
                        if new_chains:
                            extended[trace_id] = new_chains
                    right = idx
                else:
                    for trace_id, trace_chains in chains.items():
                        completions = step_grouped.get(trace_id)
                        if not completions:
                            continue
                        by_second = {ts_b: ts_a for ts_a, ts_b in completions}
                        new_chains = []
                        for chain in trace_chains:
                            ts_a = by_second.get(chain[0])
                            if ts_a is not None:
                                new_chains.append((ts_a,) + chain)
                        if new_chains:
                            extended[trace_id] = new_chains
                    left = idx
                chains = extended
            for trace_chains in chains.values():
                trace_chains.sort()
            if span.enabled:
                span.add("steps", len(order))
                span.add("traces", len(chains))
                span.add(
                    "chains", sum(len(trace_chains) for trace_chains in chains.values())
                )
            return chains

    def _chain_left_to_right(
        self,
        pattern: Sequence[str],
        partition: str | None,
        snapshots: dict[int, list[PatternMatch]] | None = None,
    ) -> dict[str, list[Chain]]:
        """Naive left-to-right join (the explicit plan behind prefixes)."""
        span = current_tracer().span("join")
        if span.enabled:
            span.tag(order="left_to_right")
        with span:
            return self._chain_left_to_right_inner(pattern, partition, snapshots)

    def _chain_left_to_right_inner(
        self,
        pattern: Sequence[str],
        partition: str | None,
        snapshots: dict[int, list[PatternMatch]] | None = None,
    ) -> dict[str, list[Chain]]:
        first_pair = (pattern[0], pattern[1])
        grouped = self._grouped_full(first_pair, partition)
        previous: dict[str, list[Chain]] = {
            trace_id: [(ts_a, ts_b) for ts_a, ts_b in entries]
            for trace_id, entries in grouped.items()
        }
        for i in range(1, len(pattern) - 1):
            if snapshots is not None:
                snapshots[i + 1] = [
                    PatternMatch(trace_id, chain)
                    for trace_id, trace_chains in sorted(previous.items())
                    for chain in trace_chains
                ]
            pair = (pattern[i], pattern[i + 1])
            grouped = self._grouped_full(pair, partition)
            extended: dict[str, list[Chain]] = {}
            for trace_id, chains in previous.items():
                completions = grouped.get(trace_id)
                if not completions:
                    continue
                # Non-overlapping pairs make ts_a unique within a trace.
                by_first = {ts_a: ts_b for ts_a, ts_b in completions}
                new_chains = []
                for chain in chains:
                    ts_b = by_first.get(chain[-1])
                    if ts_b is not None:
                        new_chains.append(chain + (ts_b,))
                if new_chains:
                    extended[trace_id] = new_chains
            previous = extended
            if not previous:
                break
        return previous

    def _detect_stam(
        self,
        pattern: Sequence[str],
        partition: str | None,
        max_matches: int | None,
    ) -> list[PatternMatch]:
        """Skip-till-any-match via index pruning + per-trace enumeration."""
        candidates = self._candidate_traces(pattern, partition)
        matches: list[PatternMatch] = []
        for trace_id in candidates:
            seq = self.tables.get_sequence(trace_id)
            budget = None if max_matches is None else max_matches - len(matches)
            for chain in _enumerate_stam(seq, pattern, budget):
                matches.append(PatternMatch(trace_id, chain))
            if max_matches is not None and len(matches) >= max_matches:
                break
        return matches

    def _candidate_traces(
        self, pattern: Sequence[str], partition: str | None
    ) -> list[str]:
        """Traces containing every consecutive pair of the pattern.

        Sound for STAM pruning: if a trace holds a STAM match then each
        consecutive pair occurs in order, so the greedy STNM index has an
        entry for it.  Posting lists are fetched in one batch and the
        intersection runs cheapest set first with early exit.
        """
        if len(pattern) == 1:
            return sorted({m.trace_id for m in self._detect_single(pattern[0])})
        plan = self.plan(pattern, partition)
        if 0 in plan.cardinalities:
            return []
        postings = _PlannedPostings(self, plan)
        return sorted(self._intersect_candidates(plan, postings))


def _rarest_first_order(cardinalities: tuple[int, ...]) -> tuple[int, ...]:
    """Join order: start at the rarest pair, extend towards cheaper sides.

    The covered pair window stays contiguous (only contiguous windows can
    join on shared timestamps), so at each step the choice is between the
    pair just left and just right of the window; the cheaper one goes next,
    ties preferring the right side (closer to natural order).
    """
    n = len(cardinalities)
    start = min(range(n), key=lambda i: (cardinalities[i], i))
    order = [start]
    left, right = start, start
    while len(order) < n:
        take_left = left > 0
        take_right = right < n - 1
        if take_left and take_right:
            take_left = cardinalities[left - 1] < cardinalities[right + 1]
        if take_left:
            left -= 1
            order.append(left)
        else:
            right += 1
            order.append(right)
    return tuple(order)


def _enumerate_stam(
    seq: list[tuple[str, float]],
    pattern: Sequence[str],
    max_matches: int | None,
) -> list[Chain]:
    """All (possibly overlapping) embeddings of ``pattern`` in ``seq``.

    Depth-first over per-activity occurrence positions; ``max_matches``
    bounds the output because the embedding count can be combinatorial.
    """
    positions: dict[str, list[int]] = {}
    for idx, (activity, _) in enumerate(seq):
        positions.setdefault(activity, []).append(idx)
    for activity in pattern:
        if activity not in positions:
            return []
    results: list[Chain] = []
    timestamps = [ts for _, ts in seq]

    def extend(step: int, last_index: int, chain: tuple[float, ...]) -> bool:
        if step == len(pattern):
            results.append(chain)
            return max_matches is not None and len(results) >= max_matches
        for idx in positions[pattern[step]]:
            if idx <= last_index:
                continue
            if extend(step + 1, idx, chain + (timestamps[idx],)):
                return True
        return False

    extend(0, -1, ())
    return results
