"""The query processor component (§3.2): statistics and pattern detection.

*Statistics* queries read only the ``Count`` and ``LastChecked`` tables --
constant work per pattern pair.  *Pattern detection* (Algorithm 2) fetches
the inverted-index entries of every consecutive pattern pair and chains them
per trace by joining on the shared event's timestamp.  Because the index's
pairs are greedy and non-overlapping, a chain extends in at most one way,
so the join is a hash lookup per partial chain.

The detection by-product the paper mentions -- matches of every pattern
*prefix* -- is available through :meth:`QueryProcessor.detect_with_prefixes`.

Skip-till-any-match (STAM, §7 future work) is supported as an extension:
the pair index prunes to candidate traces (any STAM match implies the
corresponding STNM pairs exist), then the stored sequence is enumerated
exhaustively per candidate.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import EmptyPatternError
from repro.core.matches import PairStats, PatternMatch, PatternStats
from repro.core.policies import Policy
from repro.core.tables import IndexTables

Chain = tuple[float, ...]


class QueryProcessor:
    """Executes pattern queries against the index tables."""

    def __init__(self, tables: IndexTables) -> None:
        self.tables = tables

    # -- statistics (§3.2.1 "Statistics") ---------------------------------------

    def statistics(self, pattern: Sequence[str], all_pairs: bool = False) -> PatternStats:
        """Pairwise statistics for ``pattern`` plus derived aggregates.

        Returns one :class:`PairStats` per consecutive pair; the
        :class:`PatternStats` wrapper exposes the paper's upper bound on
        whole-pattern completions and the summed average duration estimate.

        With ``all_pairs=True``, statistics of every non-adjacent pattern
        pair are also fetched, tightening the completions bound at the cost
        of O(p^2) instead of O(p) ``Count`` look-ups (the accuracy/time
        trade-off §3.2.1 describes).
        """
        if len(pattern) < 2:
            raise EmptyPatternError("statistics need a pattern of length >= 2")
        rows = [
            self._pair_stats(first, second)
            for first, second in zip(pattern, pattern[1:])
        ]
        extras = []
        if all_pairs:
            for i in range(len(pattern)):
                for j in range(i + 2, len(pattern)):
                    extras.append(self._pair_stats(pattern[i], pattern[j]))
        return PatternStats(
            pattern=tuple(pattern), pairs=tuple(rows), extra_pairs=tuple(extras)
        )

    def _pair_stats(self, first: str, second: str) -> PairStats:
        total_duration, completions = self.tables.get_pair_count((first, second))
        last = self.tables.get_last_completion((first, second))
        return PairStats(
            pair=(first, second),
            completions=completions,
            total_duration=total_duration,
            last_completion=last,
        )

    # -- pattern detection (Algorithm 2) ------------------------------------------

    def detect(
        self,
        pattern: Sequence[str],
        partition: str | None = "",
        policy: Policy | None = None,
        max_matches: int | None = None,
        within: float | None = None,
    ) -> list[PatternMatch]:
        """All completions of ``pattern``, one match per completion.

        ``partition=""`` queries the default index partition, a name queries
        that period's partition, and ``None`` unions all partitions.  With
        ``policy=Policy.STAM`` the relaxed overlapping semantics are used
        (see the module docstring); ``max_matches`` caps STAM explosion.
        ``within`` keeps only matches whose end-to-end span is at most that
        long (a CEP-style WITHIN window applied at query time).
        """
        if len(pattern) == 0:
            raise EmptyPatternError("cannot detect an empty pattern")
        if within is not None and within < 0:
            raise ValueError("within must be non-negative")
        if policy is Policy.STAM:
            matches = self._detect_stam(pattern, partition, max_matches)
        elif len(pattern) == 1:
            matches = self._detect_single(pattern[0])
        else:
            chains = self._chain(pattern, partition)
            matches = [
                PatternMatch(trace_id, chain)
                for trace_id, trace_chains in sorted(chains.items())
                for chain in trace_chains
            ]
        if within is not None:
            matches = [m for m in matches if m.duration <= within]
        return matches

    def count(
        self,
        pattern: Sequence[str],
        partition: str | None = "",
        within: float | None = None,
    ) -> int:
        """Number of completions of ``pattern`` (detection without keeping
        the matches around is still linear in their count)."""
        return len(self.detect(pattern, partition, within=within))

    def detect_with_prefixes(
        self, pattern: Sequence[str], partition: str | None = ""
    ) -> dict[int, list[PatternMatch]]:
        """Matches for every prefix of ``pattern`` of length >= 2.

        The paper notes these come for free: Algorithm 2 materialises each
        prefix's chains on the way to the full pattern.
        """
        if len(pattern) < 2:
            raise EmptyPatternError("prefix detection needs a pattern of length >= 2")
        result: dict[int, list[PatternMatch]] = {}
        chains = self._chain(pattern, partition, snapshots=result)
        result[len(pattern)] = [
            PatternMatch(trace_id, chain)
            for trace_id, trace_chains in sorted(chains.items())
            for chain in trace_chains
        ]
        return result

    def contains(self, pattern: Sequence[str], partition: str | None = "") -> list[str]:
        """Ids of traces containing ``pattern`` at least once."""
        return sorted({match.trace_id for match in self.detect(pattern, partition)})

    # -- internals ---------------------------------------------------------------------

    def _detect_single(self, activity: str) -> list[PatternMatch]:
        """Length-1 patterns: scan the Seq table (no pair exists to look up)."""
        matches: list[PatternMatch] = []
        for trace_id, seq in self.tables.iter_sequences():
            for act, ts in seq:
                if act == activity:
                    matches.append(PatternMatch(trace_id, (ts,)))
        return matches

    def _chain(
        self,
        pattern: Sequence[str],
        partition: str | None,
        snapshots: dict[int, list[PatternMatch]] | None = None,
    ) -> dict[str, list[Chain]]:
        """Algorithm 2: join consecutive pair entries on shared timestamps."""
        first_pair = (pattern[0], pattern[1])
        grouped = self.tables.get_index_grouped(first_pair, partition)
        previous: dict[str, list[Chain]] = {
            trace_id: [(ts_a, ts_b) for ts_a, ts_b in entries]
            for trace_id, entries in grouped.items()
        }
        for i in range(1, len(pattern) - 1):
            if snapshots is not None:
                snapshots[i + 1] = [
                    PatternMatch(trace_id, chain)
                    for trace_id, trace_chains in sorted(previous.items())
                    for chain in trace_chains
                ]
            pair = (pattern[i], pattern[i + 1])
            grouped = self.tables.get_index_grouped(pair, partition)
            extended: dict[str, list[Chain]] = {}
            for trace_id, chains in previous.items():
                completions = grouped.get(trace_id)
                if not completions:
                    continue
                # Non-overlapping pairs make ts_a unique within a trace.
                by_first = {ts_a: ts_b for ts_a, ts_b in completions}
                new_chains = []
                for chain in chains:
                    ts_b = by_first.get(chain[-1])
                    if ts_b is not None:
                        new_chains.append(chain + (ts_b,))
                if new_chains:
                    extended[trace_id] = new_chains
            previous = extended
            if not previous:
                break
        return previous

    def _detect_stam(
        self,
        pattern: Sequence[str],
        partition: str | None,
        max_matches: int | None,
    ) -> list[PatternMatch]:
        """Skip-till-any-match via index pruning + per-trace enumeration."""
        candidates = self._candidate_traces(pattern, partition)
        matches: list[PatternMatch] = []
        for trace_id in candidates:
            seq = self.tables.get_sequence(trace_id)
            budget = None if max_matches is None else max_matches - len(matches)
            for chain in _enumerate_stam(seq, pattern, budget):
                matches.append(PatternMatch(trace_id, chain))
            if max_matches is not None and len(matches) >= max_matches:
                break
        return matches

    def _candidate_traces(
        self, pattern: Sequence[str], partition: str | None
    ) -> list[str]:
        """Traces containing every consecutive pair of the pattern.

        Sound for STAM pruning: if a trace holds a STAM match then each
        consecutive pair occurs in order, so the greedy STNM index has an
        entry for it.
        """
        if len(pattern) == 1:
            return sorted({m.trace_id for m in self._detect_single(pattern[0])})
        survivors: set[str] | None = None
        for first, second in zip(pattern, pattern[1:]):
            grouped = self.tables.get_index_grouped((first, second), partition)
            traces = set(grouped)
            survivors = traces if survivors is None else survivors & traces
            if not survivors:
                return []
        return sorted(survivors or set())


def _enumerate_stam(
    seq: list[tuple[str, float]],
    pattern: Sequence[str],
    max_matches: int | None,
) -> list[Chain]:
    """All (possibly overlapping) embeddings of ``pattern`` in ``seq``.

    Depth-first over per-activity occurrence positions; ``max_matches``
    bounds the output because the embedding count can be combinatorial.
    """
    positions: dict[str, list[int]] = {}
    for idx, (activity, _) in enumerate(seq):
        positions.setdefault(activity, []).append(idx)
    for activity in pattern:
        if activity not in positions:
            return []
    results: list[Chain] = []
    timestamps = [ts for _, ts in seq]

    def extend(step: int, last_index: int, chain: tuple[float, ...]) -> bool:
        if step == len(pattern):
            results.append(chain)
            return max_matches is not None and len(results) >= max_matches
        for idx in positions[pattern[step]]:
            if idx <= last_index:
                continue
            if extend(step + 1, idx, chain + (timestamps[idx],)):
                return True
        return False

    extend(0, -1, ())
    return results
