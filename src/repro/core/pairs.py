"""Event-pair creation (§4 of the paper).

Given one trace, produce -- for every ordered pair of event types ``(a, b)``
present -- the list of timestamp pairs at which the two-event pattern
``a .. b`` completes under the chosen policy:

* **Strict contiguity (SC)**: consecutive events only.  ``(a, b)`` pairs are
  exactly ``zip(trace, trace[1:])``.
* **Skip-till-next-match (STNM)**: for each type pair independently, a
  greedy left-to-right non-overlapping matching: take the earliest pending
  occurrence of ``a``, the first ``b`` strictly after it, emit, and resume
  searching for ``a`` after the emitted ``b`` (Table 3 of the paper).

The three STNM flavors (Algorithms 6-8) are distinct computation strategies
for the *same* output; the test suite enforces that they agree with each
other and with :func:`reference_stnm_pairs` on arbitrary traces.

All functions accept plain parallel lists ``activities`` / ``timestamps``
(what :class:`repro.core.model.Trace` exposes) so they can run inside
process-pool workers without dragging heavier objects along.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Sequence

from repro.core.policies import PairMethod

Pair = tuple[str, str]
TsPair = tuple[float, float]
PairDict = dict[Pair, list[TsPair]]


def create_pairs(
    activities: Sequence[str],
    timestamps: Sequence[float],
    method: PairMethod = PairMethod.INDEXING,
) -> PairDict:
    """Create the event pairs of one trace using the selected flavor."""
    if len(activities) != len(timestamps):
        raise ValueError("activities and timestamps must have equal length")
    if method is PairMethod.STRICT:
        return strict_pairs(activities, timestamps)
    if method is PairMethod.PARSING:
        return parsing_pairs(activities, timestamps)
    if method is PairMethod.INDEXING:
        return indexing_pairs(activities, timestamps)
    if method is PairMethod.STATE:
        return state_pairs(activities, timestamps)
    raise ValueError(f"unknown pair method {method!r}")


# --- §4.1 strict contiguity --------------------------------------------------


def strict_pairs(
    activities: Sequence[str], timestamps: Sequence[float]
) -> PairDict:
    """SC pairs: one pair per adjacent event couple; O(n)."""
    pairs: PairDict = {}
    for i in range(len(activities) - 1):
        key = (activities[i], activities[i + 1])
        pairs.setdefault(key, []).append((timestamps[i], timestamps[i + 1]))
    return pairs


# --- §4.2 STNM: Indexing method ----------------------------------------------


def occurrence_lists(
    activities: Sequence[str], timestamps: Sequence[float]
) -> dict[str, list[float]]:
    """Per-type sorted timestamp lists (the Indexing method's first pass)."""
    occurrences: dict[str, list[float]] = {}
    for activity, ts in zip(activities, timestamps):
        occurrences.setdefault(activity, []).append(ts)
    return occurrences


def greedy_pair_match(
    occ_a: Sequence[float], occ_b: Sequence[float], same_type: bool
) -> list[TsPair]:
    """Greedy non-overlapping matching of two sorted occurrence lists.

    This is the two-pointer merge at the core of the Indexing method --
    O(len(occ_a) + len(occ_b)) since both cursors only advance -- also
    reused for per-pair incremental updates (Algorithm 1's ``create_pairs``
    restricted to events newer than ``LastChecked``).
    """
    if same_type:
        # Consecutive disjoint couples: (o0,o1), (o2,o3), ...
        return [
            (occ_a[i], occ_a[i + 1]) for i in range(0, len(occ_a) - 1, 2)
        ]
    result: list[TsPair] = []
    i = j = 0
    len_a, len_b = len(occ_a), len(occ_b)
    while i < len_a:
        first = occ_a[i]
        while j < len_b and occ_b[j] <= first:
            j += 1
        if j >= len_b:
            break
        second = occ_b[j]
        result.append((first, second))
        j += 1
        i += 1
        while i < len_a and occ_a[i] <= second:
            i += 1
    return result


def indexing_pairs(
    activities: Sequence[str], timestamps: Sequence[float]
) -> PairDict:
    """STNM pairs via per-type occurrence lists (the paper's recommended flavor).

    One O(n) pass builds the occurrence lists; every ordered type
    combination is matched with the two-pointer greedy merge.  Enumerating
    combinations is O(l^2) but each occurrence participates in at most l
    merges, giving O(n + l^2 + n*l) per trace -- the lowest constants of
    the three flavors, which is why the paper recommends it for periodic
    batch indexing.
    """
    occurrences = occurrence_lists(activities, timestamps)
    types = list(occurrences)
    pairs: PairDict = {}
    for a in types:
        occ_a = occurrences[a]
        if len(occ_a) >= 2:
            pairs[(a, a)] = greedy_pair_match(occ_a, occ_a, same_type=True)
        for b in types:
            if b == a:
                continue
            matched = greedy_pair_match(occ_a, occurrences[b], same_type=False)
            if matched:
                pairs[(a, b)] = matched
    return pairs


# --- §4.2 STNM: Parsing method -----------------------------------------------


def parsing_pairs(
    activities: Sequence[str], timestamps: Sequence[float]
) -> PairDict:
    """STNM pairs computed while parsing the trace (Algorithm 6).

    Faithful to the paper's pseudocode structure *and cost profile*: for
    every distinct start type ``x`` (skipped once handled via the
    ``checkedList``), the trace suffix is scanned once, tracking the
    in-between event types in plain lists with linear membership tests --
    the representation Algorithm 6 uses.  Every event of the scan pays an
    O(l) membership check, giving the paper's O(n l^2) worst case (and its
    super-linear growth in the number of distinct activities, visible in
    Figure 3's third plot).
    """
    n = len(activities)
    pairs: PairDict = {}
    checked: list[str] = []
    for start in range(n):
        x = activities[start]
        if x in checked:  # O(l) membership, as in the pseudocode's checkedList
            continue
        checked.append(x)
        first_x = timestamps[start]
        xx_anchor: float | None = None
        # Types with an open (x, y) pair waiting for y, parallel to anchors.
        anchored: list[str] = []
        anchors: list[float] = []
        # Types whose (x, y) pair closed and now wait for a fresh x anchor.
        blocked: list[str] = []
        blocked_ts: list[float] = []
        for j in range(start, n):
            y = activities[j]
            ts = timestamps[j]
            if y == x:
                if xx_anchor is None:
                    xx_anchor = ts
                else:
                    pairs.setdefault((x, x), []).append((xx_anchor, ts))
                    xx_anchor = None
                # A fresh x re-anchors every pair closed before it.
                for k in range(len(blocked) - 1, -1, -1):
                    if blocked_ts[k] < ts:
                        anchored.append(blocked[k])
                        anchors.append(ts)
                        del blocked[k]
                        del blocked_ts[k]
                continue
            if y in anchored:  # O(l) list membership, as in inter_events
                k = anchored.index(y)
                pairs.setdefault((x, y), []).append((anchors[k], ts))
                del anchored[k]
                del anchors[k]
                blocked.append(y)
                blocked_ts.append(ts)
            elif y in blocked:  # O(l): pair closed, no fresh x yet -> skip
                continue
            else:
                # First y of the scan: the earliest x (scan start) anchors it.
                pairs.setdefault((x, y), []).append((first_x, ts))
                blocked.append(y)
                blocked_ts.append(ts)
    return pairs


# --- §4.2 STNM: State method ---------------------------------------------------


def state_pairs(
    activities: Sequence[str], timestamps: Sequence[float]
) -> PairDict:
    """STNM pairs via a per-pair open/closed state hash map (Algorithm 8).

    A first pass collects the alphabet; a second pass feeds each event into
    the state: an event of type ``t`` always appends to the ``(t, t)`` list
    (alternately opening and closing it), opens every ``(t, y)`` list of even
    length and closes every ``(y, t)`` list of odd length.  Odd-length lists
    are trimmed at the end.  O(n l) updates, O(l^2) space.
    """
    alphabet: list[str] = []
    seen: set[str] = set()
    for activity in activities:
        if activity not in seen:
            seen.add(activity)
            alphabet.append(activity)
    state: dict[Pair, list[float]] = {}
    for t, ts in zip(activities, timestamps):
        self_list = state.setdefault((t, t), [])
        self_list.append(ts)
        for y in alphabet:
            if y == t:
                continue
            opening = state.setdefault((t, y), [])
            if len(opening) % 2 == 0:
                opening.append(ts)
            closing = state.setdefault((y, t), [])
            if len(closing) % 2 == 1:
                closing.append(ts)
    pairs: PairDict = {}
    for key, stamps in state.items():
        usable = len(stamps) - (len(stamps) % 2)
        if usable:
            pairs[key] = [
                (stamps[i], stamps[i + 1]) for i in range(0, usable, 2)
            ]
    return pairs


# --- reference implementation (tests + documentation) ---------------------------


def reference_stnm_pairs(
    activities: Sequence[str], timestamps: Sequence[float]
) -> PairDict:
    """Direct-from-definition STNM pairs; O(n) per type pair, used as oracle.

    For each ordered type pair, walk the raw trace: find the next ``a``,
    then the next ``b`` strictly after it, emit, continue after the ``b``.
    Deliberately shares no code with the three production flavors.
    """
    types = sorted(set(activities))
    n = len(activities)
    pairs: PairDict = {}
    for a in types:
        for b in types:
            matched: list[TsPair] = []
            i = 0
            while i < n:
                while i < n and activities[i] != a:
                    i += 1
                if i >= n:
                    break
                j = i + 1
                while j < n and activities[j] != b:
                    j += 1
                if j >= n:
                    break
                matched.append((timestamps[i], timestamps[j]))
                i = j + 1
            if matched:
                pairs[(a, b)] = matched
    return pairs


def pairs_after(
    occurrences: dict[str, list[float]],
    a: str,
    b: str,
    after: float | None,
) -> list[TsPair]:
    """Greedy pairs for one type pair restricted to events newer than ``after``.

    The incremental-update primitive of Algorithm 1: re-running the matching
    on the suffix strictly after the pair's last completion yields exactly
    the pairs a full rebuild would add, because greedy matching never forms
    a pair spanning an already-committed completion boundary.
    """
    occ_a = occurrences.get(a)
    occ_b = occurrences.get(b)
    if not occ_a or not occ_b:
        return []
    if after is not None:
        occ_a = occ_a[bisect_right(occ_a, after) :]
        if a == b:
            occ_b = occ_a
        else:
            occ_b = occ_b[bisect_right(occ_b, after) :]
    return greedy_pair_match(occ_a, occ_b, same_type=(a == b))
