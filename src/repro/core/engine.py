"""`SequenceIndex`: the facade tying pre-processing and querying together.

This is the class downstream users interact with::

    from repro import SequenceIndex, Policy
    from repro.kvstore import LSMStore

    index = SequenceIndex(LSMStore("/data/index"), policy=Policy.STNM)
    index.update(new_log)                      # periodic batch (Algorithm 1)
    index.detect(["search", "search", "buy"])  # pattern detection
    index.statistics(["a", "b", "c"])          # pairwise statistics
    index.continuations(["a", "b"], mode="hybrid", top_k=5)

The store argument accepts any :class:`~repro.kvstore.api.KeyValueStore`;
omitting it uses an in-memory store (useful for exploration and tests).
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Hashable, Iterable, Sequence

from repro.core.builder import IndexBuilder, UpdateStats
from repro.core.continuation import ContinuationExplorer
from repro.core.errors import PolicyMismatchError
from repro.core.matches import (
    ContinuationProposal,
    PatternMatch,
    PatternPlan,
    PatternStats,
    QueryPlan,
)
from repro.core.model import Event, EventLog
from repro.core.pattern import Pattern, parse_pattern
from repro.core.policies import PairMethod, Policy
from repro.core.query import QueryProcessor
from repro.executor import ParallelExecutor
from repro.kvstore import InMemoryStore
from repro.kvstore.cache import LRUCache
from repro.kvstore.api import KeyValueStore
from repro.obs.profile import QueryProfile, profile_from_tracer
from repro.obs.registry import REGISTRY
from repro.obs.slowlog import SlowQueryEntry, SlowQueryLog
from repro.obs.trace import Tracer, activate, current_tracer

_MODES = ("accurate", "fast", "hybrid")
_MISS = object()


class SequenceIndex:
    """Inverted event-pair index over an event log collection.

    Read queries (``detect``/``count``/``contains``/``statistics``/
    ``continuations``) are memoized in a small LRU **query-result cache**.
    Cache keys embed the index's *write generation* -- a counter bumped by
    every :meth:`update` and :meth:`prune_trace` -- so a batch update
    invalidates every stale entry by construction: post-update queries
    simply never hash to a pre-update key, and the dead generation ages out
    of the LRU.  Set ``query_cache_size=0`` to disable.

    A second, lower-level **decoded-postings cache** memoizes per-pair
    posting lists after decode/group (keyed by ``(generation, partition,
    pair)``), so repeated detections sharing pairs skip re-decoding even
    when the full query differs.  Set ``postings_cache_size=0`` to disable.
    ``planner`` and ``batched_reads`` toggle the selectivity-driven join
    reordering and the batched ``multi_get`` read path; both exist for the
    planner ablation benchmark and should stay on otherwise.
    ``postings_codec`` toggles the delta/varint packing of new Index
    writes (:mod:`repro.core.postings`); reads always understand both
    formats, and decode happens once per postings-cache fill either way.

    Every query API call is timed; with ``slow_query_threshold`` set (in
    seconds, or via the ``REPRO_SLOW_QUERY_MS`` environment variable) calls
    at or above the threshold land in :attr:`slow_query_log`.  The engine
    also registers its caches and write generation with the process-wide
    metrics registry (``python -m repro metrics``), and
    ``detect(..., explain_profile=True)`` returns a per-stage
    :class:`~repro.obs.profile.QueryProfile` alongside the plan.
    """

    def __init__(
        self,
        store: KeyValueStore | None = None,
        policy: Policy = Policy.STNM,
        method: PairMethod | None = None,
        executor: ParallelExecutor | None = None,
        query_cache_size: int = 128,
        postings_cache_size: int = 64,
        sequence_cache_size: int = 256,
        planner: bool = True,
        batched_reads: bool = True,
        postings_codec: bool = True,
        slow_query_threshold: float | None = None,
    ) -> None:
        self.store = store if store is not None else InMemoryStore()
        self.builder = IndexBuilder(self.store, policy, method, executor)
        self.tables = self.builder.tables
        self.tables.batched_reads = batched_reads
        self.tables.postings_codec = postings_codec
        self._postings_cache = (
            LRUCache(postings_cache_size) if postings_cache_size > 0 else None
        )
        self._sequence_cache = (
            LRUCache(sequence_cache_size) if sequence_cache_size > 0 else None
        )
        self.query = QueryProcessor(
            self.tables,
            postings_cache=self._postings_cache,
            sequence_cache=self._sequence_cache,
            generation=lambda: self._generation,
            planner_enabled=planner,
        )
        self.explorer = ContinuationExplorer(self.tables, self.query)
        self._query_cache = LRUCache(query_cache_size) if query_cache_size > 0 else None
        self._generation = 0
        if slow_query_threshold is None:
            env_ms = os.environ.get("REPRO_SLOW_QUERY_MS", "").strip()
            if env_ms:
                slow_query_threshold = float(env_ms) / 1e3
        self.slow_query_log = (
            SlowQueryLog(slow_query_threshold)
            if slow_query_threshold is not None
            else None
        )
        self._obs_handle = REGISTRY.register(
            {"index": getattr(self.store, "obs_name", "index")},
            self._collect_obs_metrics,
        )

    @property
    def policy(self) -> Policy:
        return self.builder.policy

    @property
    def method(self) -> PairMethod:
        return self.builder.method

    @property
    def write_generation(self) -> int:
        """Monotonic counter of index mutations (query-cache epoch)."""
        return self._generation

    def query_cache_stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters of the query-result cache."""
        return self._query_cache.stats() if self._query_cache is not None else {}

    def postings_cache_stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters of the decoded-postings cache."""
        return self._postings_cache.stats() if self._postings_cache is not None else {}

    def sequence_cache_stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters of the decoded-sequence cache."""
        return self._sequence_cache.stats() if self._sequence_cache is not None else {}

    def slow_queries(self) -> list[SlowQueryEntry]:
        """Recent slow queries (empty when no threshold is configured)."""
        return self.slow_query_log.entries if self.slow_query_log is not None else []

    def _collect_obs_metrics(self) -> dict[str, float]:
        """Metrics-registry collector: engine caches, generation, slowlog."""
        samples: dict[str, float] = {
            "repro_index_write_generation": self._generation
        }
        for prefix, stats in (
            ("repro_query_cache", self.query_cache_stats()),
            ("repro_postings_cache", self.postings_cache_stats()),
            ("repro_sequence_cache", self.sequence_cache_stats()),
        ):
            if stats:
                samples[f"{prefix}_hits_total"] = stats.get("hits", 0)
                samples[f"{prefix}_misses_total"] = stats.get("misses", 0)
                samples[f"{prefix}_evictions_total"] = stats.get("evictions", 0)
                samples[f"{prefix}_entries"] = stats.get("entries", 0)
        if self.slow_query_log is not None:
            samples["repro_slow_queries_total"] = self.slow_query_log.stats()["slow"]
        return samples

    def _observe_query(
        self, kind: str, detail: str, compute: Callable[[], Any]
    ) -> Any:
        """Run one query call under a span and the slow-query timer."""
        span = current_tracer().span(kind)
        start = time.perf_counter()
        try:
            with span:
                return compute()
        finally:
            if self.slow_query_log is not None:
                self.slow_query_log.observe(
                    kind, detail, time.perf_counter() - start
                )

    def _cached(self, key: tuple[Hashable, ...], compute: Callable[[], Any]) -> Any:
        """Memoize ``compute()`` under the current write generation.

        List results are stored as tuples and returned as fresh lists, so a
        caller reordering/extending its list cannot poison later cache hits.
        The elements themselves (:class:`PatternMatch`, :class:`PatternStats`,
        :class:`ContinuationProposal`, plain strings/ints) are shared between
        the cache and every caller -- safe because they are all immutable
        (frozen dataclasses with tuple fields).
        """
        if self._query_cache is None:
            return compute()
        full_key = (self._generation,) + key
        sentinel = _MISS
        cached = self._query_cache.get(full_key, sentinel)
        if cached is not sentinel:
            return list(cached) if isinstance(cached, tuple) else cached
        result = compute()
        self._query_cache.put(
            full_key, tuple(result) if isinstance(result, list) else result
        )
        return result

    # -- pre-processing -----------------------------------------------------------

    def update(
        self, new_events: EventLog | Iterable[Event], partition: str = ""
    ) -> UpdateStats:
        """Index a batch of new events (incremental, duplicate-free).

        The write generation is bumped *after* the batch is applied (in a
        ``finally``, so a partially applied failed update also invalidates):
        a query racing the update caches its possibly-partial result under
        the pre-update generation, which no post-update query ever reads.
        Bumping before the update would let such a partial result be cached
        under the new generation and served as a hit indefinitely.
        """
        try:
            return self.builder.update(new_events, partition)
        finally:
            self._generation += 1

    def prune_trace(self, trace_id: str) -> None:
        """Forget a completed trace's update bookkeeping (§3.1.3).

        Queries over already-indexed pairs keep working; the trace simply
        can no longer receive incremental appends.  As in :meth:`update`,
        the generation bump happens after the mutation.
        """
        try:
            seq = self.tables.get_sequence(trace_id)
            alphabet = {activity for activity, _ in seq}
            self.tables.prune_trace(trace_id, alphabet)
        finally:
            self._generation += 1

    def flush(self) -> None:
        """Flush the underlying store (durable backends)."""
        self.store.flush()

    def close(self) -> None:
        REGISTRY.unregister(self._obs_handle)
        self.store.close()

    def __enter__(self) -> "SequenceIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- queries ----------------------------------------------------------------------

    def _composite(self, pattern: object) -> Pattern | None:
        """Route :class:`Pattern` objects and expression strings.

        Plain lists/tuples of activities keep the Algorithm 2 chain-join
        path; a :class:`~repro.core.pattern.Pattern` or a pattern
        expression string (``"SEQ(A, !B, (C|D)+) WITHIN 10"``) takes the
        composite prune-then-verify path.
        """
        if isinstance(pattern, Pattern):
            return pattern
        if isinstance(pattern, str):
            return parse_pattern(pattern)
        return None

    def _check_composite(
        self, policy: Policy | None = None, within: float | None = None
    ) -> None:
        """Guard composite-pattern queries against unsupported arguments.

        Composite semantics are skip-till-next-match by definition and the
        pair-index pruning is sound only over STNM pairs (an SC index
        records strictly-contiguous pairs, so a trace can match a composite
        pattern while holding none of its index pairs).  The window lives
        in the expression (``WITHIN``), not in the ``within=`` post-filter.
        """
        if policy is not None:
            raise ValueError(
                "composite patterns fix the skip-till-next-match strategy; "
                "the policy argument applies to plain sequence patterns only"
            )
        if within is not None:
            raise ValueError(
                "composite patterns carry their window inside the expression "
                "(WITHIN ...); the within= argument applies to plain "
                "sequence patterns only"
            )
        if self.policy is not Policy.STNM:
            raise PolicyMismatchError(
                "composite pattern queries need an index built with "
                f"Policy.STNM; this index uses {self.policy.value!r}, whose "
                "pairs cannot prune skip-till-next-match candidates soundly"
            )

    def detect(
        self,
        pattern: Sequence[str] | Pattern | str,
        partition: str | None = "",
        policy: Policy | None = None,
        max_matches: int | None = None,
        within: float | None = None,
        explain: bool = False,
        explain_profile: bool = False,
    ) -> (
        list[PatternMatch]
        | tuple[list[PatternMatch], QueryPlan | PatternPlan]
        | tuple[list[PatternMatch], QueryPlan | PatternPlan, QueryProfile]
    ):
        """All completions of ``pattern`` (Algorithm 2).

        ``pattern`` may also be a :class:`~repro.core.pattern.Pattern` or a
        pattern expression string -- e.g. ``"SEQ(A, !B, (C|D)+) WITHIN 10"``
        -- which routes to the composite prune-then-verify path (requires a
        STNM index; ``policy``/``within`` must stay unset).

        With ``explain=True`` the return value is ``(matches, plan)`` where
        ``plan`` records the pair cardinalities and join order the planner
        chose; explain calls bypass the query-result cache so the plan
        always reflects a real execution.  ``explain_profile=True``
        (implies ``explain``) additionally runs the detection under a fresh
        tracer and returns ``(matches, plan, profile)``, where ``profile``
        breaks the call into stages (plan / fetch_postings / intersect /
        join / materialize -- or plan / fetch_postings / intersect / verify
        on the composite path).
        """
        composite = self._composite(pattern)
        if composite is not None:
            self._check_composite(policy, within)
            detail = f"pattern={str(composite)!r} partition={partition!r}"
            if explain_profile:
                tracer = Tracer()
                with activate(tracer):
                    matches = self._observe_query(
                        "query.detect",
                        detail,
                        lambda: self.query.detect_pattern(
                            composite, partition, max_matches
                        ),
                    )
                plan = self.query.plan_pattern(composite, partition)
                profile = profile_from_tracer(tracer, "query.detect")
                return matches, plan, profile
            if explain:
                plan = self.query.plan_pattern(composite, partition)
                matches = self._observe_query(
                    "query.detect",
                    detail,
                    lambda: self.query.detect_pattern(
                        composite, partition, max_matches
                    ),
                )
                return matches, plan
            return self._observe_query(
                "query.detect",
                detail,
                lambda: self._cached(
                    ("detect", composite, partition, max_matches),
                    lambda: self.query.detect_pattern(
                        composite, partition, max_matches
                    ),
                ),
            )
        detail = f"pattern={list(pattern)!r} partition={partition!r}"
        if explain_profile:
            tracer = Tracer()
            with activate(tracer):
                matches = self._observe_query(
                    "query.detect",
                    detail,
                    lambda: self.query.detect(
                        pattern, partition, policy, max_matches, within
                    ),
                )
            plan = self.explain(pattern, partition)
            profile = profile_from_tracer(tracer, "query.detect")
            return matches, plan, profile
        if explain:
            plan = self.explain(pattern, partition)
            matches = self._observe_query(
                "query.detect",
                detail,
                lambda: self.query.detect(
                    pattern, partition, policy, max_matches, within
                ),
            )
            return matches, plan
        return self._observe_query(
            "query.detect",
            detail,
            lambda: self._cached(
                ("detect", tuple(pattern), partition, policy, max_matches, within),
                lambda: self.query.detect(
                    pattern, partition, policy, max_matches, within
                ),
            ),
        )

    def explain(
        self, pattern: Sequence[str] | Pattern | str, partition: str | None = ""
    ) -> QueryPlan | PatternPlan:
        """The execution plan a detection of ``pattern`` would use."""
        composite = self._composite(pattern)
        if composite is not None:
            self._check_composite()
            return self.query.plan_pattern(composite, partition)
        if len(pattern) < 2:
            # Length-0/1 patterns never reach the join; report a trivial plan.
            return QueryPlan(
                pattern=tuple(pattern),
                pairs=(),
                cardinalities=(),
                order=(),
                reordered=False,
                partition=partition,
            )
        return self.query.plan(pattern, partition)

    def count(
        self,
        pattern: Sequence[str] | Pattern | str,
        partition: str | None = "",
        within: float | None = None,
    ) -> int:
        """Number of completions of ``pattern``."""
        composite = self._composite(pattern)
        if composite is not None:
            self._check_composite(within=within)
            return self._observe_query(
                "query.count",
                f"pattern={str(composite)!r} partition={partition!r}",
                lambda: self._cached(
                    ("count", composite, partition),
                    lambda: self.query.count_pattern(composite, partition),
                ),
            )
        return self._observe_query(
            "query.count",
            f"pattern={list(pattern)!r} partition={partition!r}",
            lambda: self._cached(
                ("count", tuple(pattern), partition, within),
                lambda: self.query.count(pattern, partition, within),
            ),
        )

    def detect_with_prefixes(
        self, pattern: Sequence[str], partition: str | None = ""
    ) -> dict[int, list[PatternMatch]]:
        """Completions of the pattern and every prefix (free by-product)."""
        return self.query.detect_with_prefixes(pattern, partition)

    def contains(
        self, pattern: Sequence[str] | Pattern | str, partition: str | None = ""
    ) -> list[str]:
        """Ids of traces containing ``pattern``."""
        composite = self._composite(pattern)
        if composite is not None:
            self._check_composite()
            return self._observe_query(
                "query.contains",
                f"pattern={str(composite)!r} partition={partition!r}",
                lambda: self._cached(
                    ("contains", composite, partition),
                    lambda: self.query.contains_pattern(composite, partition),
                ),
            )
        return self._observe_query(
            "query.contains",
            f"pattern={list(pattern)!r} partition={partition!r}",
            lambda: self._cached(
                ("contains", tuple(pattern), partition),
                lambda: self.query.contains(pattern, partition),
            ),
        )

    def statistics(self, pattern: Sequence[str], all_pairs: bool = False) -> PatternStats:
        """Pairwise statistics of ``pattern`` (constant-time per pair).

        ``all_pairs=True`` also reads every non-adjacent pattern pair for a
        tighter completions bound (§3.2.1's accuracy/time trade-off).
        """
        return self._observe_query(
            "query.statistics",
            f"pattern={list(pattern)!r} all_pairs={all_pairs}",
            lambda: self._cached(
                ("statistics", tuple(pattern), all_pairs),
                lambda: self.query.statistics(pattern, all_pairs),
            ),
        )

    def continuations(
        self,
        pattern: Sequence[str],
        mode: str = "hybrid",
        top_k: int = 5,
        within: float | None = None,
        partition: str | None = "",
    ) -> list[ContinuationProposal]:
        """Ranked candidate next events (Algorithms 3-5, Equation 1)."""
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")

        def compute() -> list[ContinuationProposal]:
            if mode == "accurate":
                return self.explorer.accurate(pattern, within, partition)
            if mode == "fast":
                return self.explorer.fast(pattern)
            return self.explorer.hybrid(pattern, top_k, within, partition)

        return self._observe_query(
            "query.continuations",
            f"pattern={list(pattern)!r} mode={mode!r} top_k={top_k}",
            lambda: self._cached(
                ("continuations", tuple(pattern), mode, top_k, within, partition),
                compute,
            ),
        )

    def explore_at(
        self, pattern: Sequence[str], position: int, partition: str | None = ""
    ) -> list[ContinuationProposal]:
        """Propose insertions at arbitrary pattern positions (§7 extension)."""
        return self.explorer.explore_at(pattern, position, partition)

    # -- introspection -------------------------------------------------------------------

    def trace_ids(self) -> list[str]:
        """Ids of traces currently tracked in the Seq table."""
        return [trace_id for trace_id, _ in self.tables.iter_sequences()]

    def get_trace(self, trace_id: str) -> list[tuple[str, float]]:
        """The indexed ``(activity, timestamp)`` sequence of one trace."""
        return self.tables.get_sequence(trace_id)

    def indexed_tail(self, trace_id: str) -> float | None:
        """Timestamp of the trace's last indexed event (``None`` if unknown).

        The streaming ingester's replay filter compares feed events against
        this tail to make crash replay idempotent (docs/INGEST.md); a trace
        pruned via :meth:`prune_trace` reads as unknown again, matching the
        builder's refusal to append to pruned traces.
        """
        seq = self.tables.get_sequence(trace_id)
        return seq[-1][1] if seq else None

    def top_pairs(self, k: int = 10) -> list[tuple[tuple[str, str], int]]:
        """The ``k`` most frequent event pairs, from the Count table.

        A cheap exploratory primitive (one table scan, no detection): which
        follow-relations dominate the log.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        frequencies: list[tuple[tuple[str, str], int]] = []
        for key, per_second in self.store.scan("count"):
            first = key[0]
            for second, stats in per_second.items():
                frequencies.append(((first, second), int(stats[1])))
        frequencies.sort(key=lambda item: (-item[1], item[0]))
        return frequencies[:k]

    def activities(self) -> set[str]:
        """Activity alphabet observed by the index (via the Count tables)."""
        alphabet: set[str] = set()
        for key, value in self.store.scan("count"):
            alphabet.add(key[0])
            alphabet.update(value)
        for key, value in self.store.scan("reverse_count"):
            alphabet.add(key[0])
            alphabet.update(value)
        return alphabet
