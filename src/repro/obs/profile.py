"""Per-query stage profiles built from a tracer's span tree.

The engine's ``explain_profile=True`` runs one query under a fresh
:class:`~repro.obs.trace.Tracer` and condenses the result into a
:class:`QueryProfile`: the root span's direct children become *stages*
(``plan``, ``fetch_postings``, ``intersect``, ``join``, ``materialize``,
with store-level spans like ``lsm.multi_get`` nested beneath them), so the
breakdown answers the paper's §5 question -- where does query time go --
for a single execution.  Stage wall times are measured inside the root
span, so ``accounted_fraction`` is always in ``[0, 1]``; the remainder is
untraced glue (cache lookups, result copies).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.trace import Tracer


@dataclass(frozen=True)
class StageTiming:
    """One top-level stage of a profiled query."""

    name: str
    wall_s: float
    cpu_s: float
    counters: tuple[tuple[str, int], ...] = ()

    def describe(self) -> str:
        extras = " ".join(f"{key}={value}" for key, value in self.counters)
        return (
            f"{self.name:<16} wall={self.wall_s * 1e3:8.3f}ms "
            f"cpu={self.cpu_s * 1e3:8.3f}ms" + (f"  {extras}" if extras else "")
        )


@dataclass(frozen=True)
class QueryProfile:
    """Stage breakdown of one query execution (``explain_profile=True``)."""

    query: str
    total_wall_s: float
    total_cpu_s: float
    stages: tuple[StageTiming, ...]
    span_count: int

    @property
    def accounted_wall_s(self) -> float:
        """Wall time covered by the stages (the rest is untraced glue)."""
        return sum(stage.wall_s for stage in self.stages)

    @property
    def accounted_fraction(self) -> float:
        """``accounted_wall_s / total_wall_s`` (0.0 for an instant query)."""
        if self.total_wall_s <= 0:
            return 0.0
        return min(1.0, self.accounted_wall_s / self.total_wall_s)

    def stage_seconds(self) -> dict[str, float]:
        """Stage name -> total wall seconds (stages of one name summed)."""
        out: dict[str, float] = {}
        for stage in self.stages:
            out[stage.name] = out.get(stage.name, 0.0) + stage.wall_s
        return out

    def describe(self) -> str:
        """Multi-line rendering for ``detect --profile`` output."""
        lines = [
            f"{self.query}: wall={self.total_wall_s * 1e3:.3f}ms "
            f"cpu={self.total_cpu_s * 1e3:.3f}ms "
            f"({self.accounted_fraction:.0%} accounted in "
            f"{len(self.stages)} stages, {self.span_count} spans)"
        ]
        lines.extend(f"  {stage.describe()}" for stage in self.stages)
        return "\n".join(lines)


def profile_from_tracer(tracer: Tracer, root_name: str) -> QueryProfile:
    """Condense ``tracer``'s spans into a :class:`QueryProfile`.

    The first recorded span named ``root_name`` is the query; its direct
    children (in execution order) become the stages.
    """
    root = next((span for span in tracer.spans if span.name == root_name), None)
    if root is None:
        return QueryProfile(root_name, 0.0, 0.0, (), len(tracer.spans))
    stages = tuple(
        StageTiming(
            name=child.name,
            wall_s=child.wall_s,
            cpu_s=child.cpu_s,
            counters=tuple(sorted(child.counters.items())),
        )
        for child in tracer.children(root)
    )
    return QueryProfile(
        query=root_name,
        total_wall_s=root.wall_s,
        total_cpu_s=root.cpu_s,
        stages=stages,
        span_count=len(tracer.spans) + tracer.dropped,
    )
