"""Slow-query log: record queries whose wall time crosses a threshold.

Attached to the engine via ``SequenceIndex(slow_query_threshold=...)`` (or
the ``REPRO_SLOW_QUERY_MS`` environment variable); every query API call is
timed, and calls at or above the threshold are appended to a bounded ring
and echoed to the ``repro.slowlog`` standard logger at WARNING level.  The
ring keeps the most recent ``capacity`` entries so a long-running server
can always answer "what was slow lately" without unbounded growth.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from dataclasses import dataclass, field

_LOGGER = logging.getLogger("repro.slowlog")


@dataclass(frozen=True)
class SlowQueryEntry:
    """One recorded slow query."""

    query: str  #: query kind, e.g. ``query.detect``
    detail: str  #: pattern / arguments rendering
    wall_s: float  #: measured wall time of the call
    recorded_at: float = field(default_factory=time.time)  #: unix timestamp

    def describe(self) -> str:
        return f"{self.query} {self.detail} took {self.wall_s * 1e3:.1f}ms"


class SlowQueryLog:
    """Thread-safe bounded log of queries slower than ``threshold_s``."""

    def __init__(
        self,
        threshold_s: float,
        capacity: int = 128,
        logger: logging.Logger | None = None,
    ) -> None:
        if threshold_s < 0:
            raise ValueError("slow-query threshold must be non-negative")
        if capacity <= 0:
            raise ValueError("slow-query log capacity must be positive")
        self.threshold_s = threshold_s
        self._entries: deque[SlowQueryEntry] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._logger = logger if logger is not None else _LOGGER
        self._observed = 0
        self._recorded = 0

    def observe(self, query: str, detail: str, wall_s: float) -> bool:
        """Record the call if it crossed the threshold; returns whether it did."""
        with self._lock:
            self._observed += 1
            if wall_s < self.threshold_s:
                return False
            entry = SlowQueryEntry(query=query, detail=detail, wall_s=wall_s)
            self._entries.append(entry)
            self._recorded += 1
        self._logger.warning("slow query: %s", entry.describe())
        return True

    @property
    def entries(self) -> list[SlowQueryEntry]:
        """Most recent slow queries, oldest first."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> dict[str, int]:
        """Counters: calls observed, slow calls recorded, entries retained."""
        with self._lock:
            return {
                "observed": self._observed,
                "slow": self._recorded,
                "retained": len(self._entries),
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
