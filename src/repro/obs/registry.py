"""Process-wide metrics registry with Prometheus-style text exposition.

Every store (and every :class:`~repro.core.engine.SequenceIndex`) registers
a *collector* -- a zero-argument callable returning ``{exposition_name:
value}`` samples -- labelled with its identity.  :meth:`MetricsRegistry.render`
then produces the standard text format::

    # HELP repro_store_gets_total Point reads served (each multi_get key counts once).
    # TYPE repro_store_gets_total counter
    repro_store_gets_total{backend="lsm",store="/data/ix"} 1042

Collectors are held through :class:`weakref.WeakMethod`, so a store that is
garbage-collected without ``close()`` simply disappears from the next
collection instead of leaking; ``close()`` unregisters eagerly.  Every
exposition name must appear in :data:`METRIC_CATALOG` (type + help text),
and the doc-coverage test (`tests/test_docs.py`) requires each catalogued
name and each raw ``StoreMetrics`` counter to be documented in
``docs/METRICS.md`` -- adding a counter without documenting it fails CI.

The module-level :data:`REGISTRY` is the default registry used by the
stores, the engine, and ``python -m repro metrics``.
"""

from __future__ import annotations

import threading
import weakref
from typing import Any, Callable

#: exposition name -> (prometheus type, help text).  ``*_total`` names are
#: monotonic counters; bare names are point-in-time gauges.
METRIC_CATALOG: dict[str, tuple[str, str]] = {
    # -- StoreMetrics counters (one exposition line per counter) ------------
    "repro_store_puts_total": ("counter", "put() writes accepted."),
    "repro_store_merges_total": ("counter", "merge() delta writes accepted."),
    "repro_store_deletes_total": ("counter", "delete() tombstone writes."),
    "repro_store_gets_total": (
        "counter",
        "Point reads served (each multi_get key counts once).",
    ),
    "repro_store_scans_total": ("counter", "scan()/scan_range() calls."),
    "repro_store_flushes_total": ("counter", "Memtable flushes persisted."),
    "repro_store_compactions_total": ("counter", "Compaction rounds swapped in."),
    "repro_store_compaction_aborts_total": (
        "counter",
        "Compactions discarded by the pre-swap integrity check.",
    ),
    "repro_store_bloom_skips_total": (
        "counter",
        "SSTables skipped by a negative bloom-filter probe.",
    ),
    "repro_store_sstable_reads_total": (
        "counter",
        "SSTable point probes that passed the bloom filter.",
    ),
    "repro_store_block_cache_hits_total": ("counter", "Block-cache hits."),
    "repro_store_block_cache_misses_total": ("counter", "Block-cache misses."),
    "repro_store_multi_get_batches_total": ("counter", "Batched multi_get calls."),
    "repro_store_compressed_blocks_total": (
        "counter",
        "SSTable blocks written compressed (blocks that actually shrank).",
    ),
    "repro_store_mmap_block_hits_total": (
        "counter",
        "SSTable blocks served from a memory map instead of pread.",
    ),
    "repro_store_postings_cache_hits_total": (
        "counter",
        "Decoded-postings cache hits (bumped by the query layer).",
    ),
    "repro_store_postings_cache_misses_total": (
        "counter",
        "Decoded-postings cache misses (bumped by the query layer).",
    ),
    "repro_store_sequence_cache_hits_total": (
        "counter",
        "Decoded-sequence cache hits (bumped by the query layer).",
    ),
    "repro_store_sequence_cache_misses_total": (
        "counter",
        "Decoded-sequence cache misses (bumped by the query layer).",
    ),
    "repro_store_planner_reorders_total": (
        "counter",
        "Executed plans that deviated from left-to-right order.",
    ),
    "repro_store_flush_bytes_written_total": (
        "counter",
        "Data bytes persisted by memtable flushes.",
    ),
    "repro_store_compaction_bytes_rewritten_total": (
        "counter",
        "Data bytes re-persisted by compaction merges (write amplification).",
    ),
    "repro_store_compaction_moves_total": (
        "counter",
        "Leveled trivial moves: promotions that rewrote zero bytes.",
    ),
    "repro_store_block_reads_total": (
        "counter",
        "Physical SSTable data-block loads (block-cache hits excluded).",
    ),
    "repro_store_lazy_meta_loads_total": (
        "counter",
        "Lazily-opened SSTables that materialized index/bloom metadata.",
    ),
    # -- store shape gauges -------------------------------------------------
    "repro_store_sstables": ("gauge", "Live SSTables on disk."),
    "repro_store_level_count": (
        "gauge",
        "Distinct populated LSM levels (1 for a pure-L0 size-tiered store).",
    ),
    "repro_store_tables": ("gauge", "Logical tables created."),
    "repro_sstable_bytes_on_disk": (
        "gauge",
        "Total size of live SSTable files (post-compression bytes).",
    ),
    # -- block cache occupancy ---------------------------------------------
    "repro_block_cache_entries": ("gauge", "Blocks currently cached."),
    "repro_block_cache_bytes": ("gauge", "Bytes currently cached."),
    "repro_block_cache_evictions_total": ("counter", "Blocks evicted by LRU."),
    # -- engine caches ------------------------------------------------------
    "repro_query_cache_hits_total": ("counter", "Query-result cache hits."),
    "repro_query_cache_misses_total": ("counter", "Query-result cache misses."),
    "repro_query_cache_evictions_total": ("counter", "Query-result cache evictions."),
    "repro_query_cache_entries": ("gauge", "Query-result cache entries."),
    "repro_postings_cache_hits_total": ("counter", "Postings-LRU hits."),
    "repro_postings_cache_misses_total": ("counter", "Postings-LRU misses."),
    "repro_sequence_cache_hits_total": (
        "counter",
        "Sequence-LRU hits (engine view).",
    ),
    "repro_sequence_cache_misses_total": (
        "counter",
        "Sequence-LRU misses (engine view).",
    ),
    "repro_sequence_cache_evictions_total": (
        "counter",
        "Sequence-LRU evictions (engine view).",
    ),
    "repro_sequence_cache_entries": (
        "gauge",
        "Sequence-LRU entries (engine view).",
    ),
    "repro_postings_cache_evictions_total": ("counter", "Postings-LRU evictions."),
    "repro_postings_cache_entries": ("gauge", "Postings-LRU entries."),
    # -- engine state -------------------------------------------------------
    "repro_index_write_generation": (
        "gauge",
        "Write generation (query-cache epoch) of the index.",
    ),
    # -- slow-query log -----------------------------------------------------
    "repro_slow_queries_total": (
        "counter",
        "Queries that exceeded the slow-query threshold.",
    ),
    # -- sharded coordinator ------------------------------------------------
    "repro_shard_count": ("gauge", "Shards behind the sharded index."),
    "repro_shard_fanout_total": (
        "counter",
        "Scatter-gather fan-outs issued (one per coordinator query stage).",
    ),
    "repro_shard_fanout_deadline_total": (
        "counter",
        "Fan-outs cancelled because the per-request deadline expired.",
    ),
    # -- query service ------------------------------------------------------
    "repro_service_requests_total": ("counter", "Requests received."),
    "repro_service_rejected_total": (
        "counter",
        "Queries refused by admission control ('overloaded').",
    ),
    "repro_service_ingest_rejected_total": (
        "counter",
        "Ingest batches refused after the bounded backpressure wait.",
    ),
    "repro_service_deadline_exceeded_total": (
        "counter",
        "Requests that missed their deadline (before or during execution).",
    ),
    "repro_service_errors_total": (
        "counter",
        "Requests that failed with an unexpected server-side error.",
    ),
    "repro_service_connections_total": ("counter", "Client connections accepted."),
    "repro_service_active_requests": (
        "gauge",
        "Requests currently executing inside the engine.",
    ),
    # -- streaming ingest ---------------------------------------------------
    "repro_ingest_batches_total": (
        "counter",
        "Micro-batches applied and checkpointed by the tailing ingester.",
    ),
    "repro_ingest_events_total": (
        "counter",
        "Feed events read by the tailing ingester (applied + deduped).",
    ),
    "repro_ingest_deduped_total": (
        "counter",
        "Replayed events dropped by the indexed-tail dedup filter.",
    ),
    "repro_ingest_lag_bytes": (
        "gauge",
        "Feed bytes appended but not yet applied (checkpoint lag).",
    ),
    # -- ingest freshness (append -> visible-in-detect latency) -------------
    # Cumulative histogram buckets: each counts events whose freshness was
    # at or under the bound; *_events_total is the +Inf bucket.
    "repro_ingest_freshness_le_10ms_total": (
        "counter",
        "Events visible within 10 ms of feed append.",
    ),
    "repro_ingest_freshness_le_50ms_total": (
        "counter",
        "Events visible within 50 ms of feed append.",
    ),
    "repro_ingest_freshness_le_100ms_total": (
        "counter",
        "Events visible within 100 ms of feed append.",
    ),
    "repro_ingest_freshness_le_500ms_total": (
        "counter",
        "Events visible within 500 ms of feed append.",
    ),
    "repro_ingest_freshness_le_1s_total": (
        "counter",
        "Events visible within 1 s of feed append.",
    ),
    "repro_ingest_freshness_le_5s_total": (
        "counter",
        "Events visible within 5 s of feed append.",
    ),
    "repro_ingest_freshness_events_total": (
        "counter",
        "Events with a freshness observation (the +Inf bucket).",
    ),
    "repro_ingest_freshness_max_seconds": (
        "gauge",
        "Worst append-to-visible latency observed since start.",
    ),
    "repro_ingest_freshness_p50_seconds": (
        "gauge",
        "Median append-to-visible latency over the recent window.",
    ),
    "repro_ingest_freshness_p95_seconds": (
        "gauge",
        "95th-percentile append-to-visible latency over the recent window.",
    ),
    "repro_ingest_freshness_p99_seconds": (
        "gauge",
        "99th-percentile append-to-visible latency over the recent window.",
    ),
    # -- fault injection ----------------------------------------------------
    "repro_faults_injected_total": (
        "counter",
        "Faults injected by FaultyIO schedules (process-wide; 0 in production).",
    ),
}

Collector = Callable[[], dict[str, float]]


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class MetricsRegistry:
    """Named collection of metric sources; renders consistent snapshots.

    A *collection* calls every live collector exactly once and assembles
    all samples before rendering, so one exposition document is internally
    consistent per source (each source contributes one atomic
    ``StoreMetrics.snapshot()`` -- see ``docs/METRICS.md`` for the exact
    guarantee).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sources: dict[int, tuple[dict[str, str], Any]] = {}
        self._next_handle = 1

    def register(self, labels: dict[str, str], collector: Collector) -> int:
        """Add a metric source; returns a handle for :meth:`unregister`.

        Bound methods are held weakly (via their ``__self__``), plain
        callables strongly.
        """
        ref: Any
        if hasattr(collector, "__self__"):
            ref = weakref.WeakMethod(collector)  # type: ignore[arg-type]
        else:
            ref = collector
        with self._lock:
            handle = self._next_handle
            self._next_handle += 1
            self._sources[handle] = (dict(labels), ref)
        return handle

    def unregister(self, handle: int) -> None:
        with self._lock:
            self._sources.pop(handle, None)

    def collect(self) -> dict[str, list[tuple[dict[str, str], float]]]:
        """One sample pass: ``{name: [(labels, value), ...]}``, pruning
        sources whose owner was garbage-collected or raised on collect."""
        with self._lock:
            sources = list(self._sources.items())
        samples: dict[str, list[tuple[dict[str, str], float]]] = {}
        dead: list[int] = []
        for handle, (labels, ref) in sources:
            collector = ref() if isinstance(ref, weakref.WeakMethod) else ref
            if collector is None:
                dead.append(handle)
                continue
            try:
                source_samples = collector()
            except Exception:
                dead.append(handle)  # closed mid-collect: drop the source
                continue
            for name, value in source_samples.items():
                samples.setdefault(name, []).append((labels, value))
        if dead:
            with self._lock:
                for handle in dead:
                    self._sources.pop(handle, None)
        return samples

    def render(self) -> str:
        """Prometheus text exposition of one consistent collection pass."""
        samples = self.collect()
        lines: list[str] = []
        for name in sorted(samples):
            metric_type, help_text = METRIC_CATALOG.get(
                name, ("untyped", "Undocumented metric.")
            )
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {metric_type}")
            rows = sorted(
                samples[name], key=lambda item: sorted(item[0].items())
            )
            for labels, value in rows:
                if labels:
                    label_body = ",".join(
                        f'{key}="{_escape_label(str(val))}"'
                        for key, val in sorted(labels.items())
                    )
                    lines.append(f"{name}{{{label_body}}} {_format_value(value)}")
                else:
                    lines.append(f"{name} {_format_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def store_samples(
    metrics_snapshot: dict[str, int],
    sstables: int | None = None,
    tables: int | None = None,
    cache_stats: dict[str, int] | None = None,
    bytes_on_disk: int | None = None,
    level_count: int | None = None,
) -> dict[str, float]:
    """Map a :class:`~repro.kvstore.lsm.StoreMetrics` snapshot (plus shape
    gauges and block-cache occupancy) to exposition names."""
    samples: dict[str, float] = {
        f"repro_store_{name}_total": value
        for name, value in metrics_snapshot.items()
    }
    if sstables is not None:
        samples["repro_store_sstables"] = sstables
    if tables is not None:
        samples["repro_store_tables"] = tables
    if level_count is not None:
        samples["repro_store_level_count"] = level_count
    if bytes_on_disk is not None:
        samples["repro_sstable_bytes_on_disk"] = bytes_on_disk
    if cache_stats:
        samples["repro_block_cache_entries"] = cache_stats.get("entries", 0)
        samples["repro_block_cache_bytes"] = cache_stats.get("weight", 0)
        samples["repro_block_cache_evictions_total"] = cache_stats.get("evictions", 0)
    return samples


#: the default process-wide registry
REGISTRY = MetricsRegistry()
