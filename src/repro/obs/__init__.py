"""Observability substrate: tracing, metrics exposition, slow-query log.

Three pieces, documented for operators in ``docs/METRICS.md`` and
``docs/OPERATIONS.md``:

* :mod:`repro.obs.trace` -- a structured tracer of nestable spans
  (wall/CPU time, counters, tags) threaded through the query processor,
  the LSM store's batched read path, and flush/compaction.  Disabled by
  default at effectively zero cost; activated per query by
  ``SequenceIndex.detect(..., explain_profile=True)`` and per experiment
  by ``repro.bench.runner``.
* :mod:`repro.obs.registry` -- a process-wide :class:`MetricsRegistry`
  aggregating every live store's :class:`~repro.kvstore.lsm.StoreMetrics`
  (and the engine's caches) into consistent snapshots with
  Prometheus-style text exposition (``python -m repro metrics``).
* :mod:`repro.obs.slowlog` -- a bounded log of queries slower than a
  configurable threshold (``SequenceIndex(slow_query_threshold=...)`` or
  ``REPRO_SLOW_QUERY_MS``).
"""

from repro.obs.profile import QueryProfile, StageTiming, profile_from_tracer
from repro.obs.registry import METRIC_CATALOG, REGISTRY, MetricsRegistry, store_samples
from repro.obs.slowlog import SlowQueryEntry, SlowQueryLog
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    activate,
    current_tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "activate",
    "current_tracer",
    "QueryProfile",
    "StageTiming",
    "profile_from_tracer",
    "MetricsRegistry",
    "METRIC_CATALOG",
    "REGISTRY",
    "store_samples",
    "SlowQueryLog",
    "SlowQueryEntry",
]
