"""Lightweight structured tracer: nestable spans, near-zero cost when off.

A :class:`Tracer` records a tree of **spans** -- named, tagged intervals
with wall-clock and thread-CPU time plus free-form integer counters.  Code
never holds a tracer directly; it asks for the *ambient* one::

    from repro.obs import current_tracer

    with current_tracer().span("lsm.multi_get") as span:
        ...
        span.add("keys", len(keys))

By default the ambient tracer is :data:`NULL_TRACER`, whose ``span()``
returns a shared no-op singleton: the disabled hot path performs one
context-variable read, one method call, and **zero allocations** (pinned by
a test, and benchmarked at well under 2% on the planner benchmark -- see
``docs/METRICS.md``).  A real tracer is installed for the duration of a
``with activate(tracer):`` block -- per-query by the engine's
``explain_profile``, per-experiment by ``repro.bench.runner``.

The context variable is per-thread (and per-``contextvars`` context), so a
tracer only ever records from the thread that activated it; background
flush/compaction workers stay untraced unless they activate their own.
A tracer is therefore single-threaded by construction and takes no locks.

Spans are capped at ``max_spans`` to bound memory on long experiment runs;
beyond the cap, per-name aggregates (:meth:`Tracer.summary`) keep counting
while the detailed tree stops growing (``dropped`` records how many).
"""

from __future__ import annotations

import contextvars
import time
from contextlib import contextmanager
from typing import Any, Iterator


class Span:
    """One timed interval in a trace.  Use only as a context manager.

    ``wall_s``/``cpu_s`` are filled in at exit; ``counters`` accumulates
    :meth:`add` calls; ``tags`` holds the keyword arguments given to
    :meth:`Tracer.span` plus later :meth:`tag` calls.
    """

    __slots__ = (
        "tracer",
        "name",
        "tags",
        "depth",
        "index",
        "parent_index",
        "counters",
        "wall_s",
        "cpu_s",
        "_t0",
        "_c0",
    )

    #: class-level so ``span.enabled`` needs no per-instance storage
    enabled = True

    def __init__(self, tracer: "Tracer", name: str, tags: dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.tags = tags
        self.depth = 0
        self.index = -1
        self.parent_index = -1
        self.counters: dict[str, int] = {}
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self._t0 = 0.0
        self._c0 = 0.0

    def add(self, counter: str, amount: int = 1) -> None:
        """Accumulate an integer counter on this span."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def tag(self, **tags: Any) -> None:
        """Attach (or overwrite) tags after the span was opened."""
        self.tags.update(tags)

    def __enter__(self) -> "Span":
        self.tracer._enter(self)
        self._t0 = time.perf_counter()
        self._c0 = time.thread_time()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.wall_s = time.perf_counter() - self._t0
        self.cpu_s = time.thread_time() - self._c0
        self.tracer._exit(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, wall={self.wall_s:.6f}s, {self.counters})"


class _NullSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()
    enabled = False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def add(self, counter: str, amount: int = 1) -> None:
        pass

    def tag(self, **tags: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every ``span()`` is the same allocation-free no-op."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, **tags: Any) -> _NullSpan:
        # NOTE: calling with keyword tags allocates the kwargs dict even
        # here; hot paths pass only the name and set tags via span.tag()
        # (a no-op on the null span) to stay allocation-free when disabled.
        return _NULL_SPAN


NULL_TRACER = NullTracer()


class Tracer:
    """Collects spans from the thread that activated it.

    ``spans`` lists spans in *opening* order (pre-order of the tree);
    ``summary()`` aggregates totals per span name and is maintained even
    for spans dropped by the ``max_spans`` cap.
    """

    enabled = True

    def __init__(self, max_spans: int = 100_000) -> None:
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0
        self._stack: list[Span] = []
        # name -> [calls, total wall, total cpu, aggregated counters]
        self._aggregate: dict[str, list[Any]] = {}

    def span(self, name: str, **tags: Any) -> Span:
        """Open a new span; must be used as a context manager."""
        return Span(self, name, tags)

    # -- span lifecycle (called by Span) ------------------------------------

    def _enter(self, span: Span) -> None:
        parent = self._stack[-1] if self._stack else None
        span.depth = parent.depth + 1 if parent is not None else 0
        span.parent_index = parent.index if parent is not None else -1
        if len(self.spans) < self.max_spans:
            span.index = len(self.spans)
            self.spans.append(span)
        else:
            self.dropped += 1
        self._stack.append(span)

    def _exit(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # mis-nested exit: drop up to the span
            while self._stack.pop() is not span:
                pass
        agg = self._aggregate.get(span.name)
        if agg is None:
            agg = self._aggregate[span.name] = [0, 0.0, 0.0, {}]
        agg[0] += 1
        agg[1] += span.wall_s
        agg[2] += span.cpu_s
        for counter, amount in span.counters.items():
            agg[3][counter] = agg[3].get(counter, 0) + amount

    # -- reporting ----------------------------------------------------------

    def children(self, span: Span) -> list[Span]:
        """Direct children of ``span`` among the recorded spans."""
        return [s for s in self.spans if s.parent_index == span.index]

    def summary(self) -> list[tuple[str, int, float, float, dict[str, int]]]:
        """Per-name aggregates ``(name, calls, wall_s, cpu_s, counters)``,
        heaviest total wall time first."""
        rows = [
            (name, agg[0], agg[1], agg[2], dict(agg[3]))
            for name, agg in self._aggregate.items()
        ]
        rows.sort(key=lambda row: -row[2])
        return rows

    def format_summary(self) -> str:
        """Fixed-width per-span-name aggregate table."""
        lines = [
            f"{'span':<28} {'calls':>8} {'wall_s':>10} {'cpu_s':>10}  counters"
        ]
        for name, calls, wall, cpu, counters in self.summary():
            extras = " ".join(
                f"{key}={value}" for key, value in sorted(counters.items())
            )
            lines.append(f"{name:<28} {calls:>8} {wall:>10.4f} {cpu:>10.4f}  {extras}")
        if self.dropped:
            lines.append(f"({self.dropped} spans beyond max_spans aggregated only)")
        return "\n".join(lines)

    def format_tree(self, max_lines: int = 400) -> str:
        """Indented pre-order rendering of the recorded span tree."""
        lines = []
        for span in self.spans[:max_lines]:
            extras = " ".join(
                f"{key}={value}" for key, value in sorted(span.counters.items())
            )
            tags = " ".join(f"{k}={v}" for k, v in sorted(span.tags.items()))
            detail = " ".join(part for part in (tags, extras) if part)
            lines.append(
                f"{'  ' * span.depth}{span.name}  wall={span.wall_s * 1e3:.3f}ms "
                f"cpu={span.cpu_s * 1e3:.3f}ms{'  ' + detail if detail else ''}"
            )
        hidden = len(self.spans) - max_lines + self.dropped
        if hidden > 0:
            lines.append(f"... {hidden} more spans (see summary)")
        return "\n".join(lines)


#: ambient tracer; per-thread, defaults to the disabled singleton
_CURRENT: contextvars.ContextVar = contextvars.ContextVar(
    "repro_tracer", default=NULL_TRACER
)


def current_tracer():
    """The ambient tracer of this thread (:data:`NULL_TRACER` when off)."""
    return _CURRENT.get()


@contextmanager
def activate(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the ambient tracer for the enclosed block."""
    token = _CURRENT.set(tracer)
    try:
        yield tracer
    finally:
        _CURRENT.reset(token)
