"""Synthetic stand-ins for the BPI Challenge logs (§5.1).

The real BPI 2013 / 2017 / 2020 logs cannot ship with this repository, but
the paper publishes exactly the statistics its experiments exploit: number
of traces, alphabet size, and the mean/min/max events per trace.  This
module generates Markov-chain process logs calibrated to those profiles:

==========  =======  ==========  =====================  =================
dataset     traces   activities  events (total)         events per trace
==========  =======  ==========  =====================  =================
bpi_2013    7,554    4           65,533                 8.6 / 1 / 123
bpi_2017    31,509   26          1,202,267              38.15 / 10 / 180
bpi_2020    6,886    19          36,796                 5.3 / 1 / 20
==========  =======  ==========  =====================  =================

A sparse right-stochastic transition matrix (each activity has 2-3 likely
successors) gives the strong follow-relations of real process logs; trace
lengths are drawn from a clipped lognormal fitted to the published
mean/min/max.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.model import EventLog, Trace
from repro.logs.generator import activity_alphabet


@dataclass(frozen=True)
class BpiProfile:
    """Published shape of one BPI Challenge log."""

    name: str
    num_traces: int
    num_activities: int
    mean_events: float
    min_events: int
    max_events: int


BPI_PROFILES: dict[str, BpiProfile] = {
    "bpi_2013": BpiProfile("bpi_2013", 7554, 4, 8.6, 1, 123),
    "bpi_2017": BpiProfile("bpi_2017", 31509, 26, 38.15, 10, 180),
    "bpi_2020": BpiProfile("bpi_2020", 6886, 19, 5.3, 1, 20),
}


def _lognormal_params(mean: float, maximum: int) -> tuple[float, float]:
    """Pick (mu, sigma) so the clipped lognormal tracks the published shape.

    sigma is set so the 99.9th percentile lands near the published maximum,
    then mu is solved from the target mean: mean = exp(mu + sigma^2 / 2).
    """
    sigma = max(0.25, math.log(max(maximum / mean, 1.5)) / 3.1)
    mu = math.log(mean) - sigma * sigma / 2.0
    return mu, sigma


def _transition_matrix(
    activities: list[str], rng: random.Random
) -> dict[str, list[tuple[str, float]]]:
    """Sparse successor distribution: 2-3 dominant followers per activity."""
    matrix: dict[str, list[tuple[str, float]]] = {}
    for i, activity in enumerate(activities):
        num_successors = min(len(activities), rng.randint(2, 3))
        # Bias successors toward "nearby" activities so the chain has the
        # phased structure of a business process (start tasks feed middle
        # tasks feed end tasks) instead of uniform noise.
        candidates = sorted(
            activities,
            key=lambda other: abs(activities.index(other) - i - 1)
            + rng.random() * len(activities) * 0.3,
        )[:num_successors]
        weights = [rng.uniform(1.0, 4.0) for _ in candidates]
        total = sum(weights)
        matrix[activity] = [
            (candidate, weight / total)
            for candidate, weight in zip(candidates, weights)
        ]
    return matrix


def generate_bpi_like_log(
    profile: BpiProfile, seed: int = 0, scale: float = 1.0
) -> EventLog:
    """Generate a log matching ``profile``, optionally scaled down.

    ``scale`` < 1 shrinks the trace count (the per-trace shape is kept) so
    that the full benchmark suite stays laptop-sized; ``scale=1`` reproduces
    the published trace counts.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    rng = random.Random(seed)
    activities = activity_alphabet(profile.num_activities, prefix=profile.name)
    matrix = _transition_matrix(activities, rng)
    mu, sigma = _lognormal_params(profile.mean_events, profile.max_events)
    num_traces = max(1, round(profile.num_traces * scale))
    traces = []
    for t in range(num_traces):
        length = int(round(rng.lognormvariate(mu, sigma)))
        length = max(profile.min_events, min(profile.max_events, length))
        current = activities[0] if rng.random() < 0.8 else rng.choice(activities[:2])
        ts = 0
        pairs = []
        for _ in range(length):
            ts += rng.randint(60, 7200)  # seconds between process tasks
            pairs.append((current, ts))
            successors = matrix[current]
            roll = rng.random()
            acc = 0.0
            for candidate, weight in successors:
                acc += weight
                if roll <= acc:
                    current = candidate
                    break
            else:
                current = successors[-1][0]
        traces.append(Trace.from_pairs(f"{profile.name}_t{t}", pairs))
    return EventLog(traces, name=profile.name)


def load_bpi_log(name: str, seed: int = 0, scale: float = 1.0) -> EventLog:
    """Generate the BPI-like log registered under ``name``."""
    try:
        profile = BPI_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown BPI profile {name!r}; available: {sorted(BPI_PROFILES)}"
        ) from None
    return generate_bpi_like_log(profile, seed=seed, scale=scale)
