"""The named dataset registry: every log used in the paper's evaluation.

Synthetic process-like datasets reproduce Table 4's trace/activity profiles
via the PLG2-style generator; the three BPI datasets come from the
calibrated profiles in :mod:`repro.logs.bpi`.  All generation is seeded, so
``load_dataset("max_1000")`` returns the identical log in every process.

``scale`` shrinks trace counts proportionally (per-trace shape untouched) so
benchmarks can run the whole evaluation quickly; ``scale=1.0`` reproduces
the paper's dataset sizes.  The benchmark harness reads the default from the
``REPRO_BENCH_SCALE`` environment variable.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass

from repro.core.model import EventLog
from repro.logs.bpi import BPI_PROFILES, load_bpi_log
from repro.logs.process_generator import generate_process_log


@dataclass(frozen=True)
class SyntheticSpec:
    """Registry entry for one PLG2-style dataset (a Table 4 row).

    ``target_mean_events`` encodes the "max"/"med"/"min" naming of the
    paper: max logs have long traces, min logs short ones (Figure 2).
    """

    name: str
    num_traces: int
    num_activities: int
    seed: int
    target_mean_events: float


#: the seven synthetic process-like logs of Table 4
SYNTHETIC_SPECS: dict[str, SyntheticSpec] = {
    spec.name: spec
    for spec in (
        SyntheticSpec("max_100", 100, 150, seed=100, target_mean_events=50.0),
        SyntheticSpec("max_500", 500, 159, seed=500, target_mean_events=45.0),
        SyntheticSpec("max_1000", 1000, 160, seed=1000, target_mean_events=40.0),
        SyntheticSpec("med_5000", 5000, 95, seed=5000, target_mean_events=30.0),
        SyntheticSpec("max_5000", 5000, 160, seed=5001, target_mean_events=40.0),
        SyntheticSpec("max_10000", 10000, 160, seed=10000, target_mean_events=40.0),
        SyntheticSpec("min_10000", 10000, 15, seed=10001, target_mean_events=8.0),
    )
}

#: every dataset name of Table 4, in the paper's presentation order
DATASETS: tuple[str, ...] = (
    "max_100",
    "max_500",
    "max_1000",
    "med_5000",
    "max_5000",
    "max_10000",
    "min_10000",
    "bpi_2013",
    "bpi_2020",
    "bpi_2017",
)


def bench_scale(default: float = 1.0) -> float:
    """The dataset scale requested via ``REPRO_BENCH_SCALE`` (else ``default``)."""
    raw = os.environ.get("REPRO_BENCH_SCALE")
    if raw is None:
        return default
    value = float(raw)
    if value <= 0:
        raise ValueError("REPRO_BENCH_SCALE must be positive")
    return value


_CALIBRATION_CACHE: dict[str, tuple[float, int]] = {}

_CALIBRATION_GRID = (0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)
_CALIBRATION_SEED_OFFSETS = (0, 17, 31, 53)


def _calibrated_parameters(spec: SyntheticSpec) -> tuple[float, int]:
    """Find (choice_probability, seed) hitting the spec's trace length.

    Trace length responds chaotically to the branching rate (changing it
    reshuffles the whole random model), so instead of bisecting we scan a
    small deterministic grid of branching rates and seed offsets with a
    40-trace pilot each and keep the combination closest to the target.
    Cached per dataset name for the lifetime of the process.
    """
    cached = _CALIBRATION_CACHE.get(spec.name)
    if cached is not None:
        return cached
    best = (0.5, spec.seed)
    best_error = float("inf")
    for offset in _CALIBRATION_SEED_OFFSETS:
        seed = spec.seed + offset
        for probability in _CALIBRATION_GRID:
            pilot = generate_process_log(
                num_traces=40,
                num_activities=spec.num_activities,
                seed=seed,
                choice_probability=probability,
            )
            mean = pilot.num_events / max(1, len(pilot))
            error = abs(mean - spec.target_mean_events)
            if error < best_error:
                best, best_error = (probability, seed), error
        if best_error <= spec.target_mean_events * 0.1:
            break
    _CALIBRATION_CACHE[spec.name] = best
    return best


def load_dataset(name: str, scale: float = 1.0) -> EventLog:
    """Generate the dataset registered under ``name`` at ``scale``."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    if name in SYNTHETIC_SPECS:
        spec = SYNTHETIC_SPECS[name]
        num_traces = max(1, round(spec.num_traces * scale))
        probability, seed = _calibrated_parameters(spec)
        return generate_process_log(
            num_traces=num_traces,
            num_activities=spec.num_activities,
            seed=seed,
            name=name,
            choice_probability=probability,
        )
    if name in BPI_PROFILES:
        # zlib.crc32 is stable across processes, unlike str hashing.
        return load_bpi_log(name, seed=zlib.crc32(name.encode()) % (2**31), scale=scale)
    raise KeyError(f"unknown dataset {name!r}; available: {list(DATASETS)}")
