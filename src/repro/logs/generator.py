"""Uniform random log generation: the paper's "random datasets" (§5.2).

These logs deliberately have *no* correlation between event appearances
("which is not the typical case in practice, and renders the indexing
problem more challenging"), making them the stress test for the three STNM
pair-creation flavors in Figure 3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.model import EventLog, Trace


def activity_alphabet(num_activities: int, prefix: str = "act") -> list[str]:
    """Stable activity names ``act_000 .. act_NNN`` (zero-padded, sortable)."""
    width = max(3, len(str(max(num_activities - 1, 0))))
    return [f"{prefix}_{i:0{width}d}" for i in range(num_activities)]


@dataclass(frozen=True)
class RandomLogConfig:
    """Knobs of the random generator, mirroring the paper's sweep axes.

    ``max_events_per_trace`` bounds a uniformly drawn per-trace length in
    ``[min_events_per_trace, max_events_per_trace]``; activities are drawn
    uniformly from an alphabet of ``num_activities``.  ``timestamp_gap_max``
    > 1 draws integer gaps uniformly in ``[1, timestamp_gap_max]`` so that
    durations are non-trivial; 1 yields pure position timestamps.
    """

    num_traces: int
    max_events_per_trace: int
    num_activities: int
    min_events_per_trace: int = 1
    timestamp_gap_max: int = 1
    seed: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        if self.num_traces < 0:
            raise ValueError("num_traces must be >= 0")
        if self.num_activities <= 0:
            raise ValueError("num_activities must be positive")
        if not 1 <= self.min_events_per_trace <= self.max_events_per_trace:
            raise ValueError(
                "need 1 <= min_events_per_trace <= max_events_per_trace"
            )
        if self.timestamp_gap_max < 1:
            raise ValueError("timestamp_gap_max must be >= 1")


def generate_random_log(config: RandomLogConfig) -> EventLog:
    """Generate a reproducible uniform random :class:`EventLog`."""
    rng = random.Random(config.seed)
    alphabet = activity_alphabet(config.num_activities)
    traces = []
    for t in range(config.num_traces):
        length = rng.randint(config.min_events_per_trace, config.max_events_per_trace)
        ts = 0
        pairs = []
        for _ in range(length):
            ts += 1 if config.timestamp_gap_max == 1 else rng.randint(
                1, config.timestamp_gap_max
            )
            pairs.append((rng.choice(alphabet), ts))
        traces.append(Trace.from_pairs(f"trace_{t}", pairs))
    name = config.name or (
        f"random_t{config.num_traces}_e{config.max_events_per_trace}"
        f"_a{config.num_activities}"
    )
    return EventLog(traces, name=name)


def random_patterns(
    log: EventLog,
    length: int,
    count: int,
    seed: int = 0,
    existing: bool = True,
) -> list[list[str]]:
    """Query workload: ``count`` random patterns of ``length`` events.

    With ``existing=True`` each pattern is a (possibly gapped) subsequence
    sampled from a real trace, so detection queries have matches -- the
    paper's query workloads search for patterns drawn from the logs.
    Otherwise patterns are uniform over the alphabet.
    """
    rng = random.Random(seed)
    alphabet = sorted(log.activities())
    if not alphabet:
        raise ValueError("log has no activities to sample patterns from")
    traces = [trace for trace in log if len(trace) >= length]
    patterns: list[list[str]] = []
    for _ in range(count):
        if existing and traces:
            trace = rng.choice(traces)
            positions = sorted(rng.sample(range(len(trace)), length))
            patterns.append([trace.activities[i] for i in positions])
        else:
            patterns.append([rng.choice(alphabet) for _ in range(length)])
    return patterns
