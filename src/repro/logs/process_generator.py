"""Block-structured process-model generation and simulation (PLG2 stand-in).

The paper builds its synthetic "process-like" logs with the PLG2 tool: a
random business-process model is generated, then simulated into traces.
This module does the same with the classic block-structured model family:

* ``Activity``  -- a leaf task;
* ``Sequence``  -- children execute in order;
* ``Xor``       -- exactly one child executes (weighted choice);
* ``And``       -- all children execute, interleaved arbitrarily;
* ``Loop``      -- the body repeats with a geometric number of iterations.

Every activity name appears in exactly one leaf, so the model's alphabet is
exact -- the dataset registry relies on that to hit Table 4's activity
counts.  Simulation draws integer inter-event gaps, so durations are
meaningful for the ``Count`` statistics tables.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence as SeqType

from repro.core.model import EventLog, Trace
from repro.logs.generator import activity_alphabet


class Block:
    """Base class of process-model nodes."""

    def play(self, rng: random.Random) -> list[str]:
        """Produce one execution of this block as an activity list."""
        raise NotImplementedError

    def alphabet(self) -> list[str]:
        """All activity names reachable in this block."""
        raise NotImplementedError


@dataclass(frozen=True)
class Activity(Block):
    name: str

    def play(self, rng: random.Random) -> list[str]:
        return [self.name]

    def alphabet(self) -> list[str]:
        return [self.name]


@dataclass(frozen=True)
class Sequence(Block):
    children: tuple[Block, ...]

    def play(self, rng: random.Random) -> list[str]:
        out: list[str] = []
        for child in self.children:
            out.extend(child.play(rng))
        return out

    def alphabet(self) -> list[str]:
        names: list[str] = []
        for child in self.children:
            names.extend(child.alphabet())
        return names


@dataclass(frozen=True)
class Xor(Block):
    children: tuple[Block, ...]
    weights: tuple[float, ...] = ()

    def play(self, rng: random.Random) -> list[str]:
        weights = self.weights or tuple(1.0 for _ in self.children)
        (choice,) = rng.choices(self.children, weights=weights)
        return choice.play(rng)

    def alphabet(self) -> list[str]:
        names: list[str] = []
        for child in self.children:
            names.extend(child.alphabet())
        return names


@dataclass(frozen=True)
class And(Block):
    children: tuple[Block, ...]

    def play(self, rng: random.Random) -> list[str]:
        branches = [child.play(rng) for child in self.children]
        out: list[str] = []
        cursors = [0] * len(branches)
        remaining = sum(len(branch) for branch in branches)
        while remaining:
            live = [i for i, branch in enumerate(branches) if cursors[i] < len(branch)]
            pick = rng.choice(live)
            out.append(branches[pick][cursors[pick]])
            cursors[pick] += 1
            remaining -= 1
        return out

    def alphabet(self) -> list[str]:
        names: list[str] = []
        for child in self.children:
            names.extend(child.alphabet())
        return names


@dataclass(frozen=True)
class Loop(Block):
    body: Block
    repeat_probability: float = 0.3
    max_iterations: int = 3

    def play(self, rng: random.Random) -> list[str]:
        out = list(self.body.play(rng))
        iterations = 1
        while (
            iterations < self.max_iterations
            and rng.random() < self.repeat_probability
        ):
            out.extend(self.body.play(rng))
            iterations += 1
        return out

    def alphabet(self) -> list[str]:
        return self.body.alphabet()


@dataclass
class ProcessModel:
    """A generated process: a root block plus its exact activity alphabet."""

    root: Block
    activities: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.activities:
            self.activities = self.root.alphabet()

    def play(self, rng: random.Random) -> list[str]:
        """One end-to-end execution (an activity sequence)."""
        return self.root.play(rng)


def random_process_model(
    num_activities: int,
    seed: int = 0,
    loop_probability: float = 0.15,
    parallel_probability: float = 0.15,
    choice_probability: float = 0.25,
    max_branching: int = 4,
) -> ProcessModel:
    """Generate a random block-structured model over ``num_activities`` tasks.

    The recursive construction partitions the activity list: small groups
    become sequences; larger ones are split into 2..``max_branching`` parts
    combined with a randomly chosen operator, optionally wrapped in a loop.
    """
    if num_activities <= 0:
        raise ValueError("num_activities must be positive")
    rng = random.Random(seed)
    names = activity_alphabet(num_activities)

    def build(group: SeqType[str]) -> Block:
        if len(group) == 1:
            return Activity(group[0])
        if len(group) <= 3 and rng.random() < 0.6:
            block: Block = Sequence(tuple(Activity(name) for name in group))
        else:
            num_parts = rng.randint(2, min(max_branching, len(group)))
            cuts = sorted(rng.sample(range(1, len(group)), num_parts - 1))
            parts = []
            start = 0
            for cut in cuts + [len(group)]:
                parts.append(build(group[start:cut]))
                start = cut
            roll = rng.random()
            if roll < choice_probability:
                block = Xor(
                    tuple(parts),
                    tuple(rng.uniform(0.5, 2.0) for _ in parts),
                )
            elif roll < choice_probability + parallel_probability:
                block = And(tuple(parts))
            else:
                block = Sequence(tuple(parts))
        if rng.random() < loop_probability:
            block = Loop(block, rng.uniform(0.2, 0.5), rng.randint(2, 3))
        return block

    # A start and end task sandwich the body, like PLG2's source/sink tasks.
    if num_activities >= 3:
        body = build(names[1:-1])
        root: Block = Sequence((Activity(names[0]), body, Activity(names[-1])))
    else:
        root = build(names)
    return ProcessModel(root=root, activities=list(names))


def simulate(
    model: ProcessModel,
    num_traces: int,
    seed: int = 0,
    gap_max: int = 10,
    name: str = "",
) -> EventLog:
    """Play ``model`` out ``num_traces`` times with integer event gaps."""
    rng = random.Random(seed)
    traces = []
    for t in range(num_traces):
        activities = model.play(rng)
        ts = 0
        pairs = []
        for activity in activities:
            ts += rng.randint(1, gap_max)
            pairs.append((activity, ts))
        traces.append(Trace.from_pairs(f"trace_{t}", pairs))
    return EventLog(traces, name=name)


def generate_process_log(
    num_traces: int,
    num_activities: int,
    seed: int = 0,
    name: str = "",
    choice_probability: float = 0.5,
    parallel_probability: float = 0.12,
    loop_probability: float = 0.07,
) -> EventLog:
    """One-call helper: random model + simulation (the PLG2 workflow).

    The default branching probabilities are calibrated so that models over
    Table 4's alphabet sizes play out into the paper's trace lengths
    (roughly 40 events per trace for the ``max_*`` logs).
    """
    model = random_process_model(
        num_activities,
        seed=seed,
        choice_probability=choice_probability,
        parallel_probability=parallel_probability,
        loop_probability=loop_probability,
    )
    return simulate(model, num_traces, seed=seed + 1, name=name)
