"""Dataset profiling: the numbers behind Table 4 and Figure 2.

:func:`profile_log` computes, for one log, the trace/activity counts plus
the distributions of events-per-trace and unique-activities-per-trace that
Figure 2 plots; :func:`format_profile_table` prints the Table 4 layout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import EventLog


@dataclass(frozen=True)
class Distribution:
    """Summary of a per-trace quantity (five-number-ish profile)."""

    minimum: float
    mean: float
    median: float
    p95: float
    maximum: float

    @classmethod
    def from_values(cls, values: list[float]) -> "Distribution":
        if not values:
            return cls(0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(values)
        count = len(ordered)
        return cls(
            minimum=float(ordered[0]),
            mean=sum(ordered) / count,
            median=float(ordered[count // 2]),
            p95=float(ordered[min(count - 1, int(count * 0.95))]),
            maximum=float(ordered[-1]),
        )

    def row(self) -> str:
        return (
            f"min={self.minimum:g} mean={self.mean:.2f} median={self.median:g} "
            f"p95={self.p95:g} max={self.maximum:g}"
        )


@dataclass(frozen=True)
class DatasetProfile:
    """One dataset's shape (Table 4 row + Figure 2 distributions)."""

    name: str
    num_traces: int
    num_events: int
    num_activities: int
    events_per_trace: Distribution
    activities_per_trace: Distribution

    def table4_row(self) -> tuple[str, int, int]:
        """(log file, number of traces, activities) as printed in Table 4."""
        return (self.name, self.num_traces, self.num_activities)


def profile_log(log: EventLog, name: str | None = None) -> DatasetProfile:
    """Compute the full shape profile of ``log``."""
    events_per_trace = [float(len(trace)) for trace in log]
    activities_per_trace = [float(len(trace.alphabet())) for trace in log]
    return DatasetProfile(
        name=name if name is not None else log.name,
        num_traces=len(log),
        num_events=log.num_events,
        num_activities=len(log.activities()),
        events_per_trace=Distribution.from_values(events_per_trace),
        activities_per_trace=Distribution.from_values(activities_per_trace),
    )


def format_profile_table(profiles: list[DatasetProfile]) -> str:
    """Render profiles in the layout of the paper's Table 4."""
    lines = [
        f"{'Log file':<14} {'Traces':>8} {'Activities':>11} {'Events':>9}",
        "-" * 46,
    ]
    for profile in profiles:
        lines.append(
            f"{profile.name:<14} {profile.num_traces:>8} "
            f"{profile.num_activities:>11} {profile.num_events:>9}"
        )
    return "\n".join(lines)


def format_distributions(profiles: list[DatasetProfile]) -> str:
    """Render the Figure 2 distribution summaries as text."""
    lines = []
    for profile in profiles:
        lines.append(f"{profile.name}:")
        lines.append(f"  events/trace:     {profile.events_per_trace.row()}")
        lines.append(f"  activities/trace: {profile.activities_per_trace.row()}")
    return "\n".join(lines)
