"""XES (eXtensible Event Stream) reading and writing.

Supports the subset of the IEEE XES standard that event-log analysis tools
actually exchange: per-trace ``concept:name`` identifiers and per-event
``concept:name`` (activity) plus ``time:timestamp`` (ISO-8601 date)
attributes.  Timestamps are converted to epoch seconds on read; traces whose
events carry no timestamps fall back to position numbering, mirroring the
paper's position-as-timestamp note.

The parser is namespace-tolerant (XES files appear both with and without the
``http://www.xes-standard.org/`` default namespace) and streams with
``iterparse`` so million-event logs do not materialise a DOM.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from datetime import datetime, timezone
from typing import IO

from repro.core.model import Event, EventLog, Trace


def _local_name(tag: str) -> str:
    return tag.rsplit("}", 1)[-1]


def _parse_timestamp(value: str) -> float:
    """ISO-8601 -> epoch seconds (Zulu suffix normalised for fromisoformat)."""
    text = value.strip()
    if text.endswith("Z"):
        text = text[:-1] + "+00:00"
    moment = datetime.fromisoformat(text)
    if moment.tzinfo is None:
        moment = moment.replace(tzinfo=timezone.utc)
    return moment.timestamp()


def read_xes(source: str | IO[bytes], name: str = "") -> EventLog:
    """Parse an XES file (path or binary file object) into an :class:`EventLog`.

    Duplicate timestamps inside a trace are disambiguated by adding a
    fraction of the event's position -- real logs round timestamps to
    seconds, while Definition 2.1 needs a strict order.
    """
    traces: list[Trace] = []
    trace_count = 0
    context = ET.iterparse(source, events=("end",))
    for _, element in context:
        if _local_name(element.tag) != "trace":
            continue
        trace_count += 1
        trace_id = f"trace_{trace_count}"
        events: list[tuple[str, float | None]] = []
        for child in element:
            local = _local_name(child.tag)
            if local == "string" and child.get("key") == "concept:name":
                trace_id = child.get("value", trace_id)
            elif local == "event":
                activity = None
                timestamp: float | None = None
                for attr in child:
                    key = attr.get("key")
                    if key == "concept:name":
                        activity = attr.get("value")
                    elif key == "time:timestamp":
                        raw = attr.get("value")
                        if raw:
                            timestamp = _parse_timestamp(raw)
                if activity is not None:
                    events.append((activity, timestamp))
        traces.append(_build_trace(trace_id, events))
        element.clear()
    return EventLog(traces, name=name)


def _build_trace(trace_id: str, events: list[tuple[str, float | None]]) -> Trace:
    if any(ts is None for _, ts in events):
        return Trace.from_activities(trace_id, (activity for activity, _ in events))
    ordered = sorted(range(len(events)), key=lambda i: events[i][1])
    adjusted: list[tuple[str, float]] = []
    previous: float | None = None
    for rank, idx in enumerate(ordered):
        activity, ts = events[idx]
        assert ts is not None
        if previous is not None and ts <= previous:
            ts = previous + 1e-6  # strictify rounded equal timestamps
        previous = ts
        adjusted.append((activity, ts))
    return Trace.from_pairs(trace_id, adjusted)


def write_xes(log: EventLog, destination: str | IO[bytes]) -> None:
    """Serialize ``log`` as a minimal standards-compliant XES document.

    Timestamps are emitted as UTC ISO-8601 dates (epoch-second
    interpretation, fractional parts preserved).
    """
    root = ET.Element("log", {"xes.version": "1.0"})
    for trace in log:
        trace_el = ET.SubElement(root, "trace")
        ET.SubElement(
            trace_el, "string", {"key": "concept:name", "value": trace.trace_id}
        )
        for activity, ts in zip(trace.activities, trace.timestamps):
            event_el = ET.SubElement(trace_el, "event")
            ET.SubElement(
                event_el, "string", {"key": "concept:name", "value": activity}
            )
            moment = datetime.fromtimestamp(float(ts), tz=timezone.utc)
            ET.SubElement(
                event_el,
                "date",
                {"key": "time:timestamp", "value": moment.isoformat()},
            )
    tree = ET.ElementTree(root)
    if isinstance(destination, str):
        tree.write(destination, encoding="utf-8", xml_declaration=True)
    else:
        tree.write(destination, encoding="utf-8", xml_declaration=True)
