"""Log substrate: parsing, writing, generating and profiling event logs.

The paper evaluates on XES logs from the BPI Challenges plus synthetic logs
from the PLG2 process generator and fully random logs.  None of those inputs
are redistributable here, so this package provides:

* :mod:`repro.logs.xes` / :mod:`repro.logs.csv_log` -- XES and CSV log IO;
* :mod:`repro.logs.generator` -- uniform random logs (the paper's "random
  datasets" for the Figure 3 scalability sweeps);
* :mod:`repro.logs.process_generator` -- block-structured process models
  (sequence / XOR / AND / loop) played out into traces, PLG2-style;
* :mod:`repro.logs.bpi` -- Markov-chain logs calibrated to the published
  BPI 2013 / 2017 / 2020 dataset statistics;
* :mod:`repro.logs.stats` -- per-dataset profiles (Table 4 / Figure 2);
* :mod:`repro.logs.datasets` -- the named dataset registry used by every
  benchmark.
"""

from repro.logs.csv_log import read_csv_log, write_csv_log
from repro.logs.datasets import DATASETS, load_dataset
from repro.logs.generator import RandomLogConfig, generate_random_log
from repro.logs.process_generator import ProcessModel, generate_process_log
from repro.logs.stats import DatasetProfile, profile_log
from repro.logs.xes import read_xes, write_xes

__all__ = [
    "read_xes",
    "write_xes",
    "read_csv_log",
    "write_csv_log",
    "RandomLogConfig",
    "generate_random_log",
    "ProcessModel",
    "generate_process_log",
    "DatasetProfile",
    "profile_log",
    "DATASETS",
    "load_dataset",
]
