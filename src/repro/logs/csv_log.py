"""CSV event-log IO: the paper's "typical relational form" (§3.1).

Each row is one event: trace identifier, event type and timestamp, plus any
extra application-specific columns (kept as string attributes on read).
"""

from __future__ import annotations

import csv
from typing import IO

from repro.core.model import Event, EventLog

DEFAULT_COLUMNS = ("trace_id", "activity", "timestamp")


def read_csv_log(
    source: str | IO[str],
    name: str = "",
    trace_column: str = "trace_id",
    activity_column: str = "activity",
    timestamp_column: str = "timestamp",
) -> EventLog:
    """Read a CSV event table into an :class:`EventLog`.

    The timestamp column may be empty on *every* row of a trace (position
    numbering is then applied), and extra columns become event attributes.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8", newline="") as fh:
            return _read_rows(fh, name, trace_column, activity_column, timestamp_column)
    return _read_rows(source, name, trace_column, activity_column, timestamp_column)


def _read_rows(
    fh: IO[str],
    name: str,
    trace_column: str,
    activity_column: str,
    timestamp_column: str,
) -> EventLog:
    reader = csv.DictReader(fh)
    if reader.fieldnames is None:
        return EventLog(name=name)
    required = {trace_column, activity_column}
    missing = required - set(reader.fieldnames)
    if missing:
        raise ValueError(f"CSV log is missing required columns: {sorted(missing)}")
    core_columns = {trace_column, activity_column, timestamp_column}
    events = []
    for row in reader:
        raw_ts = row.get(timestamp_column)
        timestamp = float(raw_ts) if raw_ts not in (None, "") else None
        attributes = {
            key: value for key, value in row.items() if key not in core_columns
        }
        events.append(
            Event(
                trace_id=row[trace_column],
                activity=row[activity_column],
                timestamp=timestamp,
                attributes=attributes or None,
            )
        )
    return EventLog.from_events(events, name=name)


def write_csv_log(log: EventLog, destination: str | IO[str]) -> None:
    """Write ``log`` as a three-column CSV event table."""
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8", newline="") as fh:
            _write_rows(log, fh)
    else:
        _write_rows(log, destination)


def _write_rows(log: EventLog, fh: IO[str]) -> None:
    writer = csv.writer(fh)
    writer.writerow(DEFAULT_COLUMNS)
    for trace in log:
        for activity, ts in zip(trace.activities, trace.timestamps):
            writer.writerow([trace.trace_id, activity, repr(float(ts))])
