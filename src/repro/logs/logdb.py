"""The log database: durable event storage feeding periodic index updates.

The paper's architecture (§3, Figure 1) has a "database infrastructure
containing old logs" to which new events are appended continuously, and a
pre-processing component that periodically pulls *the recent log entries
that have not been indexed yet*.  This module is that piece:

* :class:`LogDatabase` -- an append-only, durable event table (CSV rows:
  trace id, activity, timestamp), with a persisted **indexing checkpoint**
  marking how far the index has consumed it;
* :class:`IndexingPipeline` -- glue that drains unindexed events into a
  :class:`~repro.core.engine.SequenceIndex` batch by batch, the paper's
  "update procedure called periodically".

The storage format is deliberately the paper's "typical relational form":
one row per event, append-only, human-readable.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.engine import SequenceIndex
from repro.core.model import Event

_EVENTS_FILE = "events.csv"
_CHECKPOINT_FILE = "CHECKPOINT"
_HEADER = ["trace_id", "activity", "timestamp"]


@dataclass(frozen=True)
class PipelineStats:
    """Outcome of one :meth:`IndexingPipeline.run_once` call."""

    events_read: int
    events_indexed: int
    pairs_created: int
    checkpoint: int


class LogDatabase:
    """Append-only durable event table with an indexing checkpoint.

    Events append to a CSV file; the checkpoint is a byte offset into that
    file, atomically persisted, so "give me everything not yet indexed" is
    a sequential read from the checkpoint to EOF -- O(batch), not O(log).
    """

    def __init__(self, path: str) -> None:
        self._path = path
        os.makedirs(path, exist_ok=True)
        self._events_path = os.path.join(path, _EVENTS_FILE)
        self._checkpoint_path = os.path.join(path, _CHECKPOINT_FILE)
        if not os.path.exists(self._events_path):
            with open(self._events_path, "w", encoding="utf-8", newline="") as fh:
                csv.writer(fh).writerow(_HEADER)

    # -- writes --------------------------------------------------------------

    def append(self, events: Iterable[Event]) -> int:
        """Append events (they must carry timestamps); returns the count."""
        count = 0
        with open(self._events_path, "a", encoding="utf-8", newline="") as fh:
            writer = csv.writer(fh)
            for event in events:
                if event.timestamp is None:
                    raise ValueError(
                        f"log-database events need timestamps: {event!r}"
                    )
                writer.writerow(
                    [event.trace_id, event.activity, repr(float(event.timestamp))]
                )
                count += 1
            fh.flush()
            os.fsync(fh.fileno())
        return count

    # -- reads ----------------------------------------------------------------

    def __iter__(self) -> Iterator[Event]:
        """All events, oldest first."""
        yield from self._read_from(self._header_end())

    def unindexed_events(self) -> list[Event]:
        """Events appended since the last :meth:`mark_indexed` checkpoint."""
        return list(self._read_from(self.checkpoint()))

    def _read_from(self, offset: int) -> Iterator[Event]:
        with open(self._events_path, "r", encoding="utf-8", newline="") as fh:
            fh.seek(offset)
            for row in csv.reader(fh):
                if not row:
                    continue
                trace_id, activity, raw_ts = row
                yield Event(trace_id, activity, float(raw_ts))

    def _header_end(self) -> int:
        with open(self._events_path, "r", encoding="utf-8", newline="") as fh:
            fh.readline()
            return fh.tell()

    # -- checkpointing -----------------------------------------------------------

    def checkpoint(self) -> int:
        """Byte offset of the first unindexed event."""
        if not os.path.exists(self._checkpoint_path):
            return self._header_end()
        with open(self._checkpoint_path, "r", encoding="utf-8") as fh:
            return int(fh.read().strip() or self._header_end())

    def mark_indexed(self) -> int:
        """Move the checkpoint to the current end of the event file."""
        end = os.path.getsize(self._events_path)
        tmp = self._checkpoint_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(str(end))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._checkpoint_path)
        return end

    @property
    def size_bytes(self) -> int:
        return os.path.getsize(self._events_path)


class IndexingPipeline:
    """Periodically drains a :class:`LogDatabase` into a sequence index.

    One ``run_once()`` call is one tick of the paper's periodic update: read
    the unindexed suffix, feed it through Algorithm 1, then move the
    checkpoint.  The checkpoint only advances after the index store has
    flushed, so a crash between the two replays the batch on the next tick;
    replay is made idempotent by dropping events at-or-before each trace's
    already-indexed tail before calling the builder.
    """

    def __init__(
        self,
        database: LogDatabase,
        index: SequenceIndex,
        partition_fn=None,
    ) -> None:
        """``partition_fn(event) -> str`` routes events to per-period Index
        partitions; partition names must sort in time order (ISO dates do)
        so a trace straddling periods is appended oldest-first."""
        self.database = database
        self.index = index
        self.partition_fn = partition_fn

    def run_once(self) -> PipelineStats:
        """Index everything currently unindexed; returns what happened."""
        events = self.database.unindexed_events()
        events = self._drop_replayed(events)
        if not events:
            checkpoint = self.database.mark_indexed()
            return PipelineStats(0, 0, 0, checkpoint)
        if self.partition_fn is None:
            partitions: dict[str, list[Event]] = {"": events}
        else:
            partitions = {}
            for event in events:
                partitions.setdefault(self.partition_fn(event), []).append(event)
        indexed = 0
        pairs = 0
        for partition, batch in sorted(partitions.items()):
            stats = self.index.update(batch, partition=partition)
            indexed += stats.events_indexed
            pairs += stats.pairs_created
        self.index.flush()
        checkpoint = self.database.mark_indexed()
        return PipelineStats(len(events), indexed, pairs, checkpoint)

    def _drop_replayed(self, events: list[Event]) -> list[Event]:
        """Filter out events already indexed (crash-replay idempotence)."""
        tails: dict[str, float | None] = {}
        fresh: list[Event] = []
        for event in events:
            if event.trace_id not in tails:
                seq = self.index.tables.get_sequence(event.trace_id)
                tails[event.trace_id] = seq[-1][1] if seq else None
            tail = tails[event.trace_id]
            if tail is None or event.timestamp > tail:
                fresh.append(event)
        return fresh
