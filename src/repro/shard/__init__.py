"""Sharded pair index: N independent LSM shards + scatter-gather queries.

A :class:`~repro.shard.index.ShardedSequenceIndex` partitions traces across
independent single-store engines by a stable hash of the trace id
(:func:`~repro.shard.hashing.shard_for_trace`), fans ``update()`` out per
shard, and answers queries scatter-gather: plan once from the merged Count
cardinalities, fetch from every shard concurrently, merge candidate/match
sets before returning.  Because a trace's pairs colocate on one shard,
per-trace pruning stays shard-local and every merge is a disjoint union.
"""

from repro.shard.hashing import HASH_NAME, shard_for_trace
from repro.shard.index import (
    MANIFEST_NAME,
    ShardedSequenceIndex,
    is_sharded_store,
    read_manifest,
    shard_paths,
    write_manifest,
)

__all__ = [
    "HASH_NAME",
    "MANIFEST_NAME",
    "ShardedSequenceIndex",
    "is_sharded_store",
    "read_manifest",
    "shard_for_trace",
    "shard_paths",
    "write_manifest",
]
