"""Stable, process-independent shard assignment.

The shard of a trace is ``crc32(utf8(trace_id)) % num_shards``.  CRC-32 is
fully specified (IEEE 802.3, the polynomial :func:`zlib.crc32` implements),
so the assignment is identical across interpreter runs, machines and Python
versions -- a sharded store written by one process can be reopened by any
other.  Python's builtin ``hash()`` must never be used here: it is salted
per process (``PYTHONHASHSEED``), so a restart would scatter every trace to
a different shard and silently split traces across stores.

The invariant is documented in DESIGN.md and pinned by a regression test
that recomputes assignments in a fresh interpreter.
"""

from __future__ import annotations

import zlib

#: name recorded in the shard manifest; a future scheme must use a new name
HASH_NAME = "crc32"


def shard_for_trace(trace_id: str, num_shards: int) -> int:
    """The shard owning ``trace_id`` (deterministic across processes)."""
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    return zlib.crc32(trace_id.encode("utf-8")) % num_shards
