"""`ShardedSequenceIndex`: scatter-gather over N independent engine shards.

Every shard is a full single-store :class:`~repro.core.engine.SequenceIndex`
over its own :class:`~repro.kvstore.api.KeyValueStore`; traces are assigned
by :func:`~repro.shard.hashing.shard_for_trace`, so one trace's Seq row,
Index postings, Count contributions and LastChecked bookkeeping all live on
the same shard and per-trace pruning never crosses a shard boundary.

Reads run scatter-gather:

1. **plan once** -- per-pair cardinalities are summed across shards (each
   shard answers from its Count rows, served warm by its planner cache) and
   one global :class:`~repro.core.matches.QueryPlan` is built from the
   merged counts; a globally-zero pair proves the result empty before any
   posting list is touched;
2. **fan out** -- every shard executes the same plan concurrently on the
   shared :class:`~repro.executor.ParallelExecutor` (persistent thread
   pool), each against its own generation-keyed postings/sequence caches;
3. **merge** -- per-shard results are disjoint by construction (traces do
   not span shards), so merging is concatenation + a stable sort by trace
   id, byte-identical to the single-store engine's output order.

Writes fan out the same way: the batch is split by trace shard and each
sub-batch applies under that shard's ingest lock, so only the written
shards' cache generations move -- a query touching the other shards keeps
every warm cache entry, which is where the mixed read/write throughput win
comes from (see BENCH_sharded_service.json).

Cross-shard consistency is per-shard read-committed: a query racing an
``update()`` may see the new batch on some shards and not yet on others;
each trace's result is always consistent because a trace lives on exactly
one shard.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, Callable, Hashable, Iterable, Sequence

from repro.core.builder import UpdateStats
from repro.core.engine import SequenceIndex
from repro.core.errors import DeadlineExceeded, EmptyPatternError
from repro.core.matches import PairStats, PatternMatch, PatternStats
from repro.core.model import Event, EventLog
from repro.core.pattern import Pattern, parse_pattern
from repro.core.policies import Policy
from repro.executor import ParallelExecutor
from repro.kvstore.cache import LRUCache
from repro.obs.registry import REGISTRY
from repro.obs.trace import current_tracer
from repro.shard.hashing import HASH_NAME, shard_for_trace

MANIFEST_NAME = "SHARDS.json"
_MANIFEST_VERSION = 1
_MISS = object()


def write_manifest(root: str | Path, num_shards: int) -> None:
    """Persist the shard layout of a sharded store directory."""
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    manifest = {
        "version": _MANIFEST_VERSION,
        "num_shards": int(num_shards),
        "hash": HASH_NAME,
    }
    path = root / MANIFEST_NAME
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(manifest, indent=2) + "\n", encoding="utf-8")
    tmp.replace(path)


def read_manifest(root: str | Path) -> dict[str, Any]:
    """Load and validate a shard manifest; raises on unknown layouts."""
    path = Path(root) / MANIFEST_NAME
    manifest = json.loads(path.read_text(encoding="utf-8"))
    if manifest.get("version") != _MANIFEST_VERSION:
        raise ValueError(f"unsupported shard manifest version: {manifest!r}")
    if manifest.get("hash") != HASH_NAME:
        raise ValueError(
            f"unsupported shard hash {manifest.get('hash')!r}; this build "
            f"only understands {HASH_NAME!r}"
        )
    num_shards = manifest.get("num_shards")
    if not isinstance(num_shards, int) or num_shards <= 0:
        raise ValueError(f"invalid num_shards in shard manifest: {manifest!r}")
    return manifest


def is_sharded_store(root: str | Path) -> bool:
    """True when ``root`` holds a shard manifest."""
    return (Path(root) / MANIFEST_NAME).is_file()


def shard_paths(root: str | Path, num_shards: int) -> list[Path]:
    """Per-shard store directories under a sharded store root."""
    return [Path(root) / f"shard-{i:02d}" for i in range(num_shards)]


class _ShardMetrics:
    """Coordinator-level counters, registry-collected."""

    def __init__(self, num_shards: int) -> None:
        self.num_shards = num_shards
        self._lock = threading.Lock()
        self.fanouts = 0
        self.deadline_exceeded = 0

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def collect(self) -> dict[str, float]:
        with self._lock:
            return {
                "repro_shard_count": self.num_shards,
                "repro_shard_fanout_total": self.fanouts,
                "repro_shard_fanout_deadline_total": self.deadline_exceeded,
            }


class ShardedSequenceIndex:
    """Scatter-gather facade over N single-store engine shards.

    Mirrors the read/write surface of :class:`~repro.core.engine.SequenceIndex`
    (``update``/``detect``/``count``/``contains``/``statistics``/``prune_trace``
    plus the introspection helpers); ``continuations`` and prefix detection
    are not distributed yet and raise :class:`NotImplementedError`.

    Query methods accept an optional absolute ``deadline``
    (``time.monotonic()`` instant); on expiry the pending shard fan-out is
    cancelled and :class:`~repro.core.errors.DeadlineExceeded` propagates --
    the serving layer maps it to a ``deadline`` error response.
    """

    def __init__(
        self,
        shards: Sequence[SequenceIndex],
        executor: ParallelExecutor | None = None,
        query_cache_size: int = 128,
        name: str = "sharded",
    ) -> None:
        if not shards:
            raise ValueError("need at least one shard")
        self.shards = list(shards)
        if executor is None:
            executor = ParallelExecutor(
                backend="thread" if len(self.shards) > 1 else "serial",
                max_workers=len(self.shards),
                persistent=True,
            )
            self._owns_executor = True
        else:
            self._owns_executor = False
        self.executor = executor
        self._ingest_locks = [threading.Lock() for _ in self.shards]
        self._query_cache = LRUCache(query_cache_size) if query_cache_size > 0 else None
        self.metrics = _ShardMetrics(len(self.shards))
        self._obs_handle = REGISTRY.register(
            {"index": name}, self.metrics.collect
        )
        self._closed = False

    # -- construction over on-disk stores ----------------------------------------

    @classmethod
    def open(
        cls,
        root: str | Path,
        store_factory: Callable[[str], Any],
        num_shards: int | None = None,
        executor: ParallelExecutor | None = None,
        query_cache_size: int = 128,
        **engine_kwargs: Any,
    ) -> "ShardedSequenceIndex":
        """Open (or create) a sharded store rooted at ``root``.

        ``store_factory(path)`` builds one shard's
        :class:`~repro.kvstore.api.KeyValueStore`.  An existing manifest
        wins over ``num_shards`` (reopening with a different count would
        strand traces on the wrong shard); creating a new store requires
        ``num_shards``.
        """
        root = Path(root)
        if is_sharded_store(root):
            manifest = read_manifest(root)
            if num_shards is not None and num_shards != manifest["num_shards"]:
                raise ValueError(
                    f"store at {root} has {manifest['num_shards']} shards; "
                    f"cannot reopen with {num_shards} (resharding is not "
                    "supported)"
                )
            num_shards = manifest["num_shards"]
        else:
            if num_shards is None:
                raise ValueError("num_shards is required to create a new store")
            write_manifest(root, num_shards)
        shards = [
            SequenceIndex(store_factory(str(path)), **engine_kwargs)
            for path in shard_paths(root, num_shards)
        ]
        return cls(
            shards,
            executor=executor,
            query_cache_size=query_cache_size,
            name=str(root),
        )

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def policy(self) -> Policy:
        return self.shards[0].policy

    def shard_of(self, trace_id: str) -> int:
        """The shard index owning ``trace_id``."""
        return shard_for_trace(trace_id, len(self.shards))

    @property
    def write_generations(self) -> tuple[int, ...]:
        """Per-shard write generations (the coordinator cache epoch)."""
        return tuple(shard.write_generation for shard in self.shards)

    # -- lifecycle ----------------------------------------------------------------

    def flush(self) -> None:
        for shard in self.shards:
            shard.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        REGISTRY.unregister(self._obs_handle)
        errors: list[Exception] = []
        for shard in self.shards:
            try:
                shard.close()
            except Exception as exc:  # close every shard before re-raising
                errors.append(exc)
        if self._owns_executor:
            self.executor.close()
        if errors:
            raise errors[0]

    def __enter__(self) -> "ShardedSequenceIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- writes -------------------------------------------------------------------

    def update(
        self, new_events: EventLog | Iterable[Event], partition: str = ""
    ) -> UpdateStats:
        """Index a batch, fanned out to the owning shards.

        The batch is split by trace hash; each non-empty sub-batch applies
        under its shard's ingest lock (concurrent ``update()`` calls
        interleave across shards but serialize per shard, keeping the
        builder's read-modify-write bookkeeping safe).  Only written shards
        bump their write generation, so queries keep their warm cache
        entries on every untouched shard.
        """
        per_shard = self._split_events(new_events)
        touched = [i for i, batch in enumerate(per_shard) if batch is not None]
        if not touched:
            return UpdateStats(partition=partition)

        def apply(i: int) -> UpdateStats:
            with self._ingest_locks[i]:
                return self.shards[i].update(per_shard[i], partition)

        results = self.executor.gather([
            (lambda i=i: apply(i)) for i in touched
        ])
        merged = UpdateStats(partition=partition)
        for stats in results:
            merged.traces_seen += stats.traces_seen
            merged.new_traces += stats.new_traces
            merged.events_indexed += stats.events_indexed
            merged.pairs_created += stats.pairs_created
        return merged

    def _split_events(
        self, new_events: EventLog | Iterable[Event]
    ) -> list[EventLog | list[Event] | None]:
        """Partition a batch by owning shard, preserving input order."""
        n = len(self.shards)
        if isinstance(new_events, EventLog):
            buckets: list[list[Any] | None] = [None] * n
            for trace in new_events:
                i = shard_for_trace(trace.trace_id, n)
                if buckets[i] is None:
                    buckets[i] = []
                buckets[i].append(trace)
            return [
                EventLog(bucket, name=new_events.name) if bucket is not None else None
                for bucket in buckets
            ]
        event_buckets: list[list[Event] | None] = [None] * n
        for event in new_events:
            i = shard_for_trace(event.trace_id, n)
            if event_buckets[i] is None:
                event_buckets[i] = []
            event_buckets[i].append(event)
        return list(event_buckets)

    def prune_trace(self, trace_id: str) -> None:
        """Forget one trace's update bookkeeping (shard-local)."""
        i = self.shard_of(trace_id)
        with self._ingest_locks[i]:
            self.shards[i].prune_trace(trace_id)

    # -- scatter-gather helpers ---------------------------------------------------

    def _gather(
        self, thunks: Sequence[Callable[[], Any]], deadline: float | None
    ) -> list[Any]:
        self.metrics.bump("fanouts")
        span = current_tracer().span("shard.fanout")
        with span:
            if span.enabled:
                span.add("shards", len(thunks))
            try:
                return self.executor.gather(thunks, deadline=deadline)
            except DeadlineExceeded:
                self.metrics.bump("deadline_exceeded")
                raise

    def _cached(
        self, key: tuple[Hashable, ...], compute: Callable[[], Any]
    ) -> Any:
        """Coordinator query-result memo, keyed by all shard generations."""
        if self._query_cache is None:
            return compute()
        full_key = (self.write_generations,) + key
        cached = self._query_cache.get(full_key, _MISS)
        if cached is not _MISS:
            return list(cached) if isinstance(cached, tuple) else cached
        result = compute()
        self._query_cache.put(
            full_key, tuple(result) if isinstance(result, list) else result
        )
        return result

    def _composite(self, pattern: object) -> Pattern | None:
        if isinstance(pattern, Pattern):
            return pattern
        if isinstance(pattern, str):
            return parse_pattern(pattern)
        return None

    def _merged_plan(self, pattern: Sequence[str], partition: str | None):
        """One global plan from summed per-shard Count cardinalities.

        Returns ``None`` when some pair has zero completions on *every*
        shard -- the global zero-cardinality early exit.
        """
        span = current_tracer().span("shard.plan")
        with span:
            pairs = tuple(zip(pattern, pattern[1:]))
            per_shard = self._gather(
                [
                    (lambda s=shard: s.query.cardinalities(pairs))
                    for shard in self.shards
                ],
                deadline=None,
            )
            merged = tuple(sum(cards) for cards in zip(*per_shard))
            if span.enabled:
                span.add("pairs", len(pairs))
                span.add("min_cardinality", min(merged, default=0))
            if 0 in merged:
                return None
            return self.shards[0].query.plan_from_cardinalities(
                pattern, merged, partition
            )

    def _merged_pattern_plan(self, pattern: Pattern, partition: str | None):
        """Global composite plan from summed per-shard group cardinalities.

        Returns ``None`` when a positive adjacency is empty on every shard.
        """
        span = current_tracer().span("shard.plan")
        with span:
            query0 = self.shards[0].query
            groups = query0.pattern_groups(pattern)
            flat = tuple(pair for group in groups for pair in group)
            per_shard = self._gather(
                [
                    (lambda s=shard: s.query.cardinalities(flat))
                    for shard in self.shards
                ],
                deadline=None,
            )
            flat_merged = [sum(cards) for cards in zip(*per_shard)]
            merged: list[int] = []
            offset = 0
            for group in groups:
                merged.append(sum(flat_merged[offset : offset + len(group)]))
                offset += len(group)
            if span.enabled:
                span.add("groups", len(groups))
                span.add("min_cardinality", min(merged, default=0))
            if groups and 0 in merged:
                return None
            return query0.plan_pattern_from_cardinalities(
                pattern, merged, partition
            )

    @staticmethod
    def _merge_matches(
        per_shard: list[list[PatternMatch]], max_matches: int | None
    ) -> list[PatternMatch]:
        """Disjoint-union merge: stable sort by trace id, then truncate.

        Stability preserves each trace's chronological match order, and the
        per-shard ``max_matches`` caps compose exactly: any match within the
        global first ``k`` has fewer than ``k`` predecessors globally, hence
        fewer than ``k`` on its own shard, so its shard returned it.
        """
        span = current_tracer().span("shard.merge")
        with span:
            merged = [m for matches in per_shard for m in matches]
            merged.sort(key=lambda m: m.trace_id)
            if max_matches is not None:
                merged = merged[:max_matches]
            if span.enabled:
                span.add("matches", len(merged))
            return merged

    # -- reads --------------------------------------------------------------------

    def detect(
        self,
        pattern: Sequence[str] | Pattern | str,
        partition: str | None = "",
        policy: Policy | None = None,
        max_matches: int | None = None,
        within: float | None = None,
        deadline: float | None = None,
    ) -> list[PatternMatch]:
        """All completions of ``pattern``, byte-identical to the single-store
        engine's result on the same data."""
        composite = self._composite(pattern)
        if composite is not None:
            self._check_composite(policy, within)
            return self._cached(
                ("detect", composite, partition, max_matches),
                lambda: self._detect_composite(
                    composite, partition, max_matches, deadline
                ),
            )
        if len(pattern) == 0:
            raise EmptyPatternError("cannot detect an empty pattern")
        key = ("detect", tuple(pattern), partition, policy, max_matches, within)
        return self._cached(
            key,
            lambda: self._detect_plain(
                pattern, partition, policy, max_matches, within, deadline
            ),
        )

    def _detect_plain(
        self,
        pattern: Sequence[str],
        partition: str | None,
        policy: Policy | None,
        max_matches: int | None,
        within: float | None,
        deadline: float | None,
    ) -> list[PatternMatch]:
        plan = None
        if policy is not Policy.STAM and len(pattern) >= 2:
            plan = self._merged_plan(pattern, partition)
            if plan is None:
                return []
        per_shard = self._gather(
            [
                (
                    lambda s=shard: s.query.detect(
                        pattern, partition, policy, max_matches, within, plan
                    )
                )
                for shard in self.shards
            ],
            deadline,
        )
        return self._merge_matches(per_shard, max_matches)

    def _detect_composite(
        self,
        pattern: Pattern,
        partition: str | None,
        max_matches: int | None,
        deadline: float | None,
    ) -> list[PatternMatch]:
        plan = self._merged_pattern_plan(pattern, partition)
        if plan is None:
            return []
        per_shard = self._gather(
            [
                (
                    lambda s=shard: s.query.detect_pattern(
                        pattern, partition, max_matches, plan
                    )
                )
                for shard in self.shards
            ],
            deadline,
        )
        return self._merge_matches(per_shard, max_matches)

    def count(
        self,
        pattern: Sequence[str] | Pattern | str,
        partition: str | None = "",
        within: float | None = None,
        deadline: float | None = None,
    ) -> int:
        """Number of completions of ``pattern`` across all shards."""
        composite = self._composite(pattern)
        if composite is not None:
            self._check_composite(within=within)
            return self._cached(
                ("count", composite, partition),
                lambda: self._count_composite(composite, partition, deadline),
            )
        if len(pattern) == 0:
            raise EmptyPatternError("cannot detect an empty pattern")
        return self._cached(
            ("count", tuple(pattern), partition, within),
            lambda: self._count_plain(pattern, partition, within, deadline),
        )

    def _count_plain(
        self,
        pattern: Sequence[str],
        partition: str | None,
        within: float | None,
        deadline: float | None,
    ) -> int:
        plan = None
        if len(pattern) >= 2:
            plan = self._merged_plan(pattern, partition)
            if plan is None:
                return 0
        per_shard = self._gather(
            [
                (lambda s=shard: s.query.count(pattern, partition, within, plan))
                for shard in self.shards
            ],
            deadline,
        )
        return sum(per_shard)

    def _count_composite(
        self, pattern: Pattern, partition: str | None, deadline: float | None
    ) -> int:
        plan = self._merged_pattern_plan(pattern, partition)
        if plan is None:
            return 0
        per_shard = self._gather(
            [
                (lambda s=shard: s.query.count_pattern(pattern, partition, plan))
                for shard in self.shards
            ],
            deadline,
        )
        return sum(per_shard)

    def contains(
        self,
        pattern: Sequence[str] | Pattern | str,
        partition: str | None = "",
        deadline: float | None = None,
    ) -> list[str]:
        """Sorted ids of traces containing ``pattern``."""
        composite = self._composite(pattern)
        if composite is not None:
            self._check_composite()
            return self._cached(
                ("contains", composite, partition),
                lambda: self._contains_compute(
                    lambda s, plan: s.query.contains_pattern(
                        composite, partition, plan
                    ),
                    lambda: self._merged_pattern_plan(composite, partition),
                    deadline,
                ),
            )
        if len(pattern) == 0:
            raise EmptyPatternError("cannot detect an empty pattern")
        if len(pattern) == 1:
            return self._cached(
                ("contains", tuple(pattern), partition),
                lambda: self._contains_compute(
                    lambda s, plan: s.query.contains(pattern, partition),
                    None,
                    deadline,
                ),
            )
        return self._cached(
            ("contains", tuple(pattern), partition),
            lambda: self._contains_compute(
                lambda s, plan: s.query.contains(pattern, partition, plan),
                lambda: self._merged_plan(pattern, partition),
                deadline,
            ),
        )

    def _contains_compute(
        self,
        run: Callable[[SequenceIndex, Any], list[str]],
        make_plan: Callable[[], Any] | None,
        deadline: float | None,
    ) -> list[str]:
        plan = None
        if make_plan is not None:
            plan = make_plan()
            if plan is None:
                return []
        span_input = self._gather(
            [(lambda s=shard: run(s, plan)) for shard in self.shards],
            deadline,
        )
        merged = [trace_id for found in span_input for trace_id in found]
        merged.sort()
        return merged

    def statistics(
        self,
        pattern: Sequence[str],
        all_pairs: bool = False,
        deadline: float | None = None,
    ) -> PatternStats:
        """Pairwise statistics merged across shards (sums and max)."""
        per_shard = self._gather(
            [
                (lambda s=shard: s.query.statistics(pattern, all_pairs))
                for shard in self.shards
            ],
            deadline,
        )

        def merge_pairs(rows: tuple[PairStats, ...]) -> PairStats:
            lasts = [r.last_completion for r in rows if r.last_completion is not None]
            return PairStats(
                pair=rows[0].pair,
                completions=sum(r.completions for r in rows),
                total_duration=sum(r.total_duration for r in rows),
                last_completion=max(lasts) if lasts else None,
            )

        return PatternStats(
            pattern=tuple(pattern),
            pairs=tuple(
                merge_pairs(rows)
                for rows in zip(*(stats.pairs for stats in per_shard))
            ),
            extra_pairs=tuple(
                merge_pairs(rows)
                for rows in zip(*(stats.extra_pairs for stats in per_shard))
            ),
        )

    def continuations(self, *args: Any, **kwargs: Any) -> Any:
        raise NotImplementedError(
            "continuation exploration is not distributed yet; open each "
            "shard as a single-store SequenceIndex for shard-local proposals"
        )

    def detect_with_prefixes(self, *args: Any, **kwargs: Any) -> Any:
        raise NotImplementedError(
            "prefix detection snapshots only exist under single-store "
            "left-to-right evaluation"
        )

    def _check_composite(
        self, policy: Policy | None = None, within: float | None = None
    ) -> None:
        if policy is not None:
            raise ValueError(
                "composite patterns fix the skip-till-next-match strategy; "
                "the policy argument applies to plain sequence patterns only"
            )
        if within is not None:
            raise ValueError(
                "composite patterns carry their window inside the expression "
                "(WITHIN ...); the within= argument applies to plain "
                "sequence patterns only"
            )
        # Per-shard engines re-validate the policy; check eagerly so the
        # error surfaces before any fan-out.
        self.shards[0]._check_composite()

    # -- introspection ------------------------------------------------------------

    def trace_ids(self) -> list[str]:
        """Ids of all tracked traces, globally sorted."""
        merged = [tid for shard in self.shards for tid in shard.trace_ids()]
        merged.sort()
        return merged

    def get_trace(self, trace_id: str) -> list[tuple[str, float]]:
        """The indexed sequence of one trace (shard-local lookup)."""
        return self.shards[self.shard_of(trace_id)].get_trace(trace_id)

    def indexed_tail(self, trace_id: str) -> float | None:
        """Last indexed timestamp of one trace (shard-local lookup).

        Routes to the owning shard, so the streaming ingester's replay
        filter works identically over sharded and single-store engines.
        """
        return self.shards[self.shard_of(trace_id)].indexed_tail(trace_id)

    def top_pairs(self, k: int = 10) -> list[tuple[tuple[str, str], int]]:
        """The ``k`` globally most frequent pairs (summed across shards)."""
        if k <= 0:
            raise ValueError("k must be positive")
        totals: dict[tuple[str, str], int] = {}
        for shard in self.shards:
            # Unbounded per-shard top list: global top-k needs every pair a
            # shard knows, since a pair rare on one shard may be hot overall.
            for key, per_second in shard.store.scan("count"):
                first = key[0]
                for second, stats in per_second.items():
                    pair = (first, second)
                    totals[pair] = totals.get(pair, 0) + int(stats[1])
        frequencies = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
        return frequencies[:k]

    def activities(self) -> set[str]:
        """Union of every shard's observed activity alphabet."""
        alphabet: set[str] = set()
        for shard in self.shards:
            alphabet |= shard.activities()
        return alphabet

    def storage_stats(self) -> dict[str, Any]:
        """Aggregated storage accounting: per-shard breakdown plus totals."""
        per_shard = []
        totals = {
            "sstables": 0,
            "records": 0,
            "data_bytes": 0,
            "raw_data_bytes": 0,
            "file_bytes": 0,
        }
        for i, shard in enumerate(self.shards):
            stats_fn = getattr(shard.store, "storage_stats", None)
            stats = stats_fn() if stats_fn is not None else {}
            per_shard.append({"shard": i, **stats})
            totals["sstables"] += len(stats.get("sstables", ()))
            for name in ("records", "data_bytes", "raw_data_bytes", "file_bytes"):
                totals[name] += stats.get(name, 0)
        raw = totals["raw_data_bytes"]
        disk = totals["data_bytes"]
        totals["compression_ratio"] = (raw / disk) if disk else 1.0
        return {
            "num_shards": len(self.shards),
            "shards": per_shard,
            "totals": totals,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardedSequenceIndex(num_shards={len(self.shards)})"
