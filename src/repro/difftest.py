"""Differential testing harness: indexed pattern queries vs the SASE oracle.

The composite pattern language has two deliberately independent
implementations -- the prune-then-verify indexed path
(:meth:`repro.core.engine.SequenceIndex.detect` via
:func:`repro.core.pattern.find_matches`) and the streaming automaton
oracle (:class:`repro.baselines.sase.nfa.PatternNfa` via
:meth:`repro.baselines.sase.engine.SaseEngine.query`).  This module pits
them against each other on seeded random inputs:

1. ``run_case(seed)`` derives a random log and a random composite pattern
   from one integer seed, evaluates both engines, and compares the full
   match sets (trace id + timestamp tuple, byte for byte);
2. on divergence, :func:`shrink` greedily minimizes the log and the
   pattern while preserving the disagreement, so the report shows a
   near-minimal counterexample;
3. every failure renders a one-line reproducer --
   ``python -m repro diffcheck --seed N`` -- that replays the exact case.

The same entry points back the ``diffcheck`` CLI subcommand and the
property-based suite in ``tests/core/test_differential.py``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.baselines.sase.engine import SaseEngine
from repro.core.engine import SequenceIndex
from repro.core.model import Event, EventLog, Trace
from repro.core.pattern import Pattern, PatternElement
from repro.core.policies import Policy

#: Small alphabet on purpose: collisions between pattern and log types are
#: what exercise skip/absorb/guard interactions.
ALPHABET = ("A", "B", "C", "D", "E")

#: (trace id -> [(activity, timestamp), ...]) -- the shrinkable log form.
CaseLog = dict[str, list[tuple[str, float]]]


# -- generators (everything derives from one integer seed) -------------------


def random_log(
    rng: random.Random,
    alphabet: tuple[str, ...] = ALPHABET,
    max_traces: int = 8,
    max_events: int = 16,
) -> CaseLog:
    """A random log with integer-gap timestamps (gaps 1..4).

    Non-unit gaps matter: they separate "window counts events" bugs from
    "window compares timestamps" correctness.
    """
    log: CaseLog = {}
    for t in range(rng.randint(1, max_traces)):
        ts = 0.0
        events: list[tuple[str, float]] = []
        for _ in range(rng.randint(0, max_events)):
            events.append((rng.choice(alphabet), ts))
            ts += rng.randint(1, 4)
        log[f"t{t}"] = events
    return log


def random_pattern(
    rng: random.Random,
    alphabet: tuple[str, ...] = ALPHABET,
    max_elements: int = 5,
) -> Pattern:
    """A random composite pattern exercising every operator.

    Elements are negated with p=0.25 (never the first -- the language
    requires a positive anchor), Kleene with p=0.25, and alternations of
    up to three types with p=0.3; a WITHIN window is attached with p=0.4.
    """
    elements: list[PatternElement] = []
    count = rng.randint(1, max_elements)
    for i in range(count):
        if rng.random() < 0.3:
            types = tuple(rng.sample(alphabet, rng.randint(2, 3)))
        else:
            types = (rng.choice(alphabet),)
        negated = i > 0 and rng.random() < 0.25
        kleene = not negated and rng.random() < 0.25
        elements.append(PatternElement(types=types, kleene=kleene, negated=negated))
    within = float(rng.randint(2, 20)) if rng.random() < 0.4 else None
    return Pattern(elements=tuple(elements), within=within)


# -- evaluation --------------------------------------------------------------


def _to_event_log(log: CaseLog) -> EventLog:
    return EventLog(
        Trace(tid, (Event(tid, act, ts) for act, ts in events))
        for tid, events in log.items()
    )


def evaluate_both(
    log: CaseLog, pattern: Pattern
) -> tuple[set[tuple[str, tuple[float, ...]]], set[tuple[str, tuple[float, ...]]]]:
    """(indexed matches, oracle matches) as comparable sets."""
    event_log = _to_event_log(log)
    with SequenceIndex(policy=Policy.STNM) as index:
        index.update(event_log)
        indexed = {
            (m.trace_id, m.timestamps) for m in index.detect(pattern)
        }
    oracle = {
        (m.trace_id, m.timestamps)
        for m in SaseEngine(event_log).query(pattern)
    }
    return indexed, oracle


@dataclass(frozen=True)
class CaseResult:
    """Outcome of one differential case (after shrinking, when it failed)."""

    seed: int
    pattern: Pattern
    log: CaseLog
    indexed: set = field(repr=False)
    oracle: set = field(repr=False)

    @property
    def ok(self) -> bool:
        return self.indexed == self.oracle

    @property
    def reproducer(self) -> str:
        return f"python -m repro diffcheck --seed {self.seed}"

    def report(self) -> str:
        """Human-readable divergence report with the shrunk counterexample."""
        if self.ok:
            return f"seed {self.seed}: ok ({len(self.oracle)} matches)"
        lines = [
            f"seed {self.seed}: DIVERGENCE",
            f"  pattern: {self.pattern}",
            "  log (shrunk):",
        ]
        for tid, events in sorted(self.log.items()):
            rendered = " ".join(f"{act}@{ts:g}" for act, ts in events)
            lines.append(f"    {tid}: {rendered or '(empty)'}")
        lines.append(f"  indexed only: {sorted(self.indexed - self.oracle)}")
        lines.append(f"  oracle only:  {sorted(self.oracle - self.indexed)}")
        lines.append(f"  reproduce: {self.reproducer}")
        return "\n".join(lines)


def run_case(seed: int, shrink_failures: bool = True) -> CaseResult:
    """Generate, evaluate and (on divergence) shrink one seeded case."""
    rng = random.Random(seed)
    log = random_log(rng)
    pattern = random_pattern(rng)
    indexed, oracle = evaluate_both(log, pattern)
    if indexed != oracle and shrink_failures:
        log, pattern = shrink(log, pattern)
        indexed, oracle = evaluate_both(log, pattern)
    return CaseResult(seed, pattern, log, indexed, oracle)


def run_sweep(
    seeds: range | list[int], fail_fast: bool = True
) -> list[CaseResult]:
    """Run many seeded cases; with ``fail_fast`` stop at the first divergence."""
    results = []
    for seed in seeds:
        result = run_case(seed)
        results.append(result)
        if not result.ok and fail_fast:
            break
    return results


# -- shrinking ---------------------------------------------------------------


def _diverges(log: CaseLog, pattern: Pattern) -> bool:
    if not log:
        return False
    indexed, oracle = evaluate_both(log, pattern)
    return indexed != oracle


def _pattern_candidates(pattern: Pattern):
    """Strictly simpler patterns, most aggressive first."""
    elements = pattern.elements
    if pattern.within is not None:
        yield Pattern(elements=elements, within=None)
    for i in range(len(elements)):
        rest = elements[:i] + elements[i + 1 :]
        if rest and not rest[0].negated:
            yield Pattern(elements=rest, within=pattern.within)
    for i, elem in enumerate(elements):
        if len(elem.types) > 1:
            for j in range(len(elem.types)):
                types = elem.types[:j] + elem.types[j + 1 :]
                slim = PatternElement(
                    types=types, kleene=elem.kleene, negated=elem.negated
                )
                yield Pattern(
                    elements=elements[:i] + (slim,) + elements[i + 1 :],
                    within=pattern.within,
                )
        if elem.kleene:
            plain = PatternElement(types=elem.types)
            yield Pattern(
                elements=elements[:i] + (plain,) + elements[i + 1 :],
                within=pattern.within,
            )


def _log_candidates(log: CaseLog):
    """Strictly smaller logs: drop a trace, then drop single events."""
    for tid in list(log):
        smaller = {k: v for k, v in log.items() if k != tid}
        if smaller:
            yield smaller
    for tid, events in log.items():
        for i in range(len(events)):
            yield {
                k: (v[:i] + v[i + 1 :] if k == tid else v)
                for k, v in log.items()
            }


def shrink(log: CaseLog, pattern: Pattern) -> tuple[CaseLog, Pattern]:
    """Greedily minimize a diverging case while it keeps diverging.

    Alternates pattern- and log-level reductions to a fixpoint; every
    accepted step strictly shrinks the case, so termination is bounded by
    the total size.  The result is locally minimal (no single reduction
    preserves the divergence), which in practice is small enough to read.
    """
    changed = True
    while changed:
        changed = False
        for candidate in _pattern_candidates(pattern):
            if _diverges(log, candidate):
                pattern = candidate
                changed = True
                break
        for candidate in _log_candidates(log):
            if _diverges(candidate, pattern):
                log = candidate
                changed = True
                break
    return log, pattern
