"""The SASE pattern language subset used by the paper's experiments.

``SEQ(a, b, c)`` under a selection strategy, optionally constrained by a
time window (``WITHIN``).  The SASE+ **Kleene plus** extension ([9] in the
paper) is supported by suffixing an element with ``+``: ``SEQ(a, b+, c)``
matches one or more ``b`` events between the ``a`` and the ``c``.  Event
predicates beyond type equality are out of the paper's experimental scope,
but the structure leaves room for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.policies import Policy


@dataclass(frozen=True)
class SasePattern:
    """A sequence pattern: event types, strategy, optional window.

    ``kleene[i]`` marks element ``i`` as Kleene-plus (one or more
    occurrences, maximal-munch under SC/STNM).
    """

    event_types: tuple[str, ...]
    strategy: Policy = Policy.STNM
    within: float | None = None
    kleene: tuple[bool, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.event_types:
            raise ValueError("a SASE pattern needs at least one event type")
        if self.within is not None and self.within <= 0:
            raise ValueError("the WITHIN window must be positive")
        if not self.kleene:
            object.__setattr__(self, "kleene", tuple(False for _ in self.event_types))
        elif len(self.kleene) != len(self.event_types):
            raise ValueError("kleene flags must align with event_types")

    @classmethod
    def seq(
        cls,
        *event_types: str,
        strategy: Policy = Policy.STNM,
        within: float | None = None,
    ) -> "SasePattern":
        """``SEQ(e1, e2+, ...)`` constructor, reading like the SASE language.

        A trailing ``+`` on an element marks it Kleene-plus.
        """
        names = []
        flags = []
        for raw in event_types:
            if raw.endswith("+") and len(raw) > 1:
                names.append(raw[:-1])
                flags.append(True)
            else:
                names.append(raw)
                flags.append(False)
        return cls(tuple(names), strategy, within, tuple(flags))

    @property
    def has_kleene(self) -> bool:
        return any(self.kleene)

    def to_pattern(self):
        """Bridge to the composite AST of :mod:`repro.core.pattern`.

        Only STNM patterns translate -- the composite language is
        skip-till-next-match by definition -- and the result evaluates
        identically under both :class:`~repro.baselines.sase.nfa.Nfa`
        and the composite engines (``find_matches`` / ``PatternNfa``).
        """
        from repro.core.pattern import Pattern, PatternElement

        if self.strategy is not Policy.STNM:
            raise ValueError(
                "only STNM SASE patterns map onto the composite language; "
                f"this pattern uses {self.strategy.value!r}"
            )
        return Pattern(
            elements=tuple(
                PatternElement(types=(name,), kleene=flag)
                for name, flag in zip(self.event_types, self.kleene)
            ),
            within=self.within,
        )

    def __len__(self) -> int:
        return len(self.event_types)

    def __str__(self) -> str:
        body = ", ".join(
            f"{name}+" if flag else name
            for name, flag in zip(self.event_types, self.kleene)
        )
        suffix = f" WITHIN {self.within}" if self.within is not None else ""
        return f"SEQ({body}) [{self.strategy.value}]{suffix}"
