"""A SASE-style complex-event-processing engine (no pre-processing).

SASE compiles a sequence pattern into an NFA and evaluates it over the
event stream at query time; the paper uses it as the "process everything on
the fly" comparison point, showing acceptable times on small logs and
two-orders-of-magnitude slowdowns on large ones (Table 8).

* :mod:`repro.baselines.sase.pattern` -- the pattern language: SEQ of event
  types, selection strategy, optional time window;
* :mod:`repro.baselines.sase.nfa`     -- NFA compilation and run semantics
  for strict contiguity, skip-till-next-match and skip-till-any-match;
* :mod:`repro.baselines.sase.engine`  -- evaluation over a whole event log.
"""

from repro.baselines.sase.engine import SaseEngine
from repro.baselines.sase.pattern import SasePattern

__all__ = ["SaseEngine", "SasePattern"]
