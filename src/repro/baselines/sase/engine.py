"""`SaseEngine`: evaluate CEP patterns over a full event log, no indexes."""

from __future__ import annotations

from repro.baselines.sase.nfa import Nfa, PatternNfa
from repro.baselines.sase.pattern import SasePattern
from repro.core.matches import PatternMatch
from repro.core.model import EventLog
from repro.core.pattern import Pattern
from repro.core.policies import Policy


class SaseEngine:
    """On-the-fly pattern evaluation: every query scans every trace.

    This is deliberately index-free -- the engine's whole cost profile
    (fine on small logs, orders of magnitude slower on BPI-2017-sized ones)
    is the point of the comparison in Table 8.
    """

    def __init__(self, log: EventLog) -> None:
        self.log = log

    def query(
        self,
        pattern: SasePattern | Pattern | list[str],
        strategy: Policy = Policy.STNM,
        within: float | None = None,
        max_matches: int | None = None,
    ) -> list[PatternMatch]:
        """All matches of ``pattern`` across the log.

        A plain list of event types is promoted to a :class:`SasePattern`
        with the given ``strategy``/``within``.  A composite
        :class:`~repro.core.pattern.Pattern` (alternation / negation /
        Kleene / WITHIN) evaluates through :class:`PatternNfa`, the
        streaming oracle of the differential suite; ``strategy`` and
        ``within`` must stay at their defaults for it.
        """
        if isinstance(pattern, Pattern):
            if strategy is not Policy.STNM or within is not None:
                raise ValueError(
                    "composite patterns are STNM by definition and carry "
                    "their window in the expression"
                )
            nfa = PatternNfa(pattern)
        else:
            if not isinstance(pattern, SasePattern):
                pattern = SasePattern.seq(
                    *pattern, strategy=strategy, within=within
                )
            nfa = Nfa(pattern)
        matches: list[PatternMatch] = []
        for trace in self.log:
            budget = None if max_matches is None else max_matches - len(matches)
            if budget is not None and budget <= 0:
                break
            for span in nfa.evaluate(trace.activities, trace.timestamps, budget):
                matches.append(PatternMatch(trace.trace_id, span))
        return matches

    def contains(
        self,
        pattern: SasePattern | Pattern | list[str],
        strategy: Policy = Policy.STNM,
    ) -> list[str]:
        """Trace ids with at least one match (early-exit per trace)."""
        if isinstance(pattern, Pattern):
            nfa = PatternNfa(pattern)
        elif isinstance(pattern, SasePattern):
            nfa = Nfa(pattern)
        else:
            pattern = SasePattern.seq(*pattern, strategy=strategy)
            nfa = Nfa(pattern)
        found = []
        for trace in self.log:
            if nfa.evaluate(trace.activities, trace.timestamps, max_matches=1):
                found.append(trace.trace_id)
        return sorted(found)
