"""NFA compilation and evaluation for sequence patterns.

A pattern of length ``p`` compiles to ``p + 1`` states; state ``i`` expects
the pattern's ``i``-th event type.  What happens on a non-matching event is
the *selection strategy*:

* **strict contiguity** -- a partially matched run dies;
* **skip-till-next-match** -- the run ignores the event and keeps waiting;
  runs never overlap, so at most one run is alive at a time and a completed
  match restarts matching after its last event (this reproduces the
  paper's §2.1 example: AAB over <AAABAACB> matches at positions (1,2,4)
  and (5,6,8));
* **skip-till-any-match** -- on a matching event the run forks: one branch
  consumes it, one skips it; all embeddings are produced.

``WITHIN`` windows prune runs whose span exceeds the budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.sase.pattern import SasePattern
from repro.core.policies import Policy


@dataclass(frozen=True)
class NfaState:
    """One automaton state: the event type it waits for (None = accepting)."""

    index: int
    expects: str | None

    @property
    def accepting(self) -> bool:
        return self.expects is None


class Nfa:
    """Compiled automaton for one :class:`SasePattern`."""

    def __init__(self, pattern: SasePattern) -> None:
        self.pattern = pattern
        self.states = tuple(
            NfaState(i, pattern.event_types[i] if i < len(pattern) else None)
            for i in range(len(pattern) + 1)
        )

    def evaluate(
        self,
        activities: list[str],
        timestamps: list[float],
        max_matches: int | None = None,
    ) -> list[tuple[float, ...]]:
        """All matches of the pattern over one trace, as timestamp tuples.

        Kleene-plus elements contribute every absorbed event's timestamp,
        so match tuples may be longer than the pattern.
        """
        strategy = self.pattern.strategy
        if self.pattern.has_kleene:
            if strategy is Policy.STAM:
                raise NotImplementedError(
                    "Kleene plus is supported for SC and STNM strategies only"
                )
            return self._evaluate_kleene(activities, timestamps, max_matches)
        if strategy is Policy.SC:
            return self._evaluate_sc(activities, timestamps, max_matches)
        if strategy is Policy.STNM:
            return self._evaluate_stnm(activities, timestamps, max_matches)
        if strategy is Policy.STAM:
            return self._evaluate_stam(activities, timestamps, max_matches)
        raise ValueError(f"unsupported strategy {strategy}")

    # -- Kleene plus (SASE+ extension) -------------------------------------------

    def _evaluate_kleene(
        self,
        activities: list[str],
        timestamps: list[float],
        max_matches: int | None,
    ) -> list[tuple[float, ...]]:
        """Maximal-munch Kleene evaluation for SC and STNM.

        A ``+`` element absorbs every occurrence of its type until the next
        pattern element's type appears (STNM) or until contiguity breaks
        (SC); the final element, if Kleene, absorbs to the end of trace.
        """
        strict = self.pattern.strategy is Policy.SC
        n = len(activities)
        matches: list[tuple[float, ...]] = []
        search_from = 0
        while search_from < n:
            chain = self._kleene_run(activities, search_from, strict)
            if chain is None:
                if strict:
                    search_from += 1
                    continue
                break
            span = tuple(timestamps[i] for i in chain)
            if self._within(span):
                matches.append(span)
                if max_matches is not None and len(matches) >= max_matches:
                    return matches
                search_from = chain[-1] + 1
            else:
                search_from = chain[0] + 1
        return matches

    def _kleene_run(
        self, activities: list[str], start: int, strict: bool
    ) -> list[int] | None:
        """One greedy run attempt from ``start``; None when no completion."""
        types = self.pattern.event_types
        flags = self.pattern.kleene
        n = len(activities)
        cursor = start
        chain: list[int] = []
        for i, (event_type, is_kleene) in enumerate(zip(types, flags)):
            if strict:
                if cursor >= n or activities[cursor] != event_type:
                    return None
                chain.append(cursor)
                cursor += 1
            else:
                while cursor < n and activities[cursor] != event_type:
                    cursor += 1
                if cursor >= n:
                    return None
                chain.append(cursor)
                cursor += 1
            if is_kleene:
                next_type = types[i + 1] if i + 1 < len(types) else None
                while cursor < n:
                    if strict:
                        if activities[cursor] != event_type:
                            break
                        chain.append(cursor)
                        cursor += 1
                    else:
                        if next_type is not None and activities[cursor] == next_type:
                            break
                        if activities[cursor] == event_type:
                            chain.append(cursor)
                        cursor += 1
        return chain

    # -- strict contiguity -----------------------------------------------------

    def _evaluate_sc(
        self,
        activities: list[str],
        timestamps: list[float],
        max_matches: int | None,
    ) -> list[tuple[float, ...]]:
        types = self.pattern.event_types
        width = len(types)
        matches: list[tuple[float, ...]] = []
        for start in range(len(activities) - width + 1):
            if all(activities[start + i] == types[i] for i in range(width)):
                span = tuple(timestamps[start : start + width])
                if self._within(span):
                    matches.append(span)
                    if max_matches is not None and len(matches) >= max_matches:
                        break
        return matches

    # -- skip-till-next-match -----------------------------------------------------

    def _evaluate_stnm(
        self,
        activities: list[str],
        timestamps: list[float],
        max_matches: int | None,
    ) -> list[tuple[float, ...]]:
        types = self.pattern.event_types
        matches: list[tuple[float, ...]] = []
        n = len(activities)
        search_from = 0
        while search_from < n:
            # Greedy run from the next occurrence of the first type.
            chain: list[int] = []
            cursor = search_from
            for event_type in types:
                while cursor < n and activities[cursor] != event_type:
                    cursor += 1
                if cursor >= n:
                    return matches
                chain.append(cursor)
                cursor += 1
            span = tuple(timestamps[i] for i in chain)
            if self._within(span):
                matches.append(span)
                if max_matches is not None and len(matches) >= max_matches:
                    return matches
                search_from = chain[-1] + 1
            else:
                # Window exceeded: retry from the next possible start event.
                search_from = chain[0] + 1
        return matches

    # -- skip-till-any-match ---------------------------------------------------------

    def _evaluate_stam(
        self,
        activities: list[str],
        timestamps: list[float],
        max_matches: int | None,
    ) -> list[tuple[float, ...]]:
        types = self.pattern.event_types
        positions: dict[str, list[int]] = {}
        for idx, activity in enumerate(activities):
            positions.setdefault(activity, []).append(idx)
        for event_type in types:
            if event_type not in positions:
                return []
        matches: list[tuple[float, ...]] = []

        def extend(step: int, last_index: int, chain: tuple[float, ...]) -> bool:
            if step == len(types):
                matches.append(chain)
                return max_matches is not None and len(matches) >= max_matches
            for idx in positions[types[step]]:
                if idx <= last_index:
                    continue
                span = chain + (timestamps[idx],)
                if (
                    self.pattern.within is not None
                    and len(span) > 1
                    and span[-1] - span[0] > self.pattern.within
                ):
                    break  # positions ascend: later ones only widen the span
                if extend(step + 1, idx, span):
                    return True
            return False

        extend(0, -1, ())
        return matches

    def _within(self, span: tuple[float, ...]) -> bool:
        if self.pattern.within is None or len(span) < 2:
            return True
        return span[-1] - span[0] <= self.pattern.within


@dataclass(frozen=True)
class _PatternState:
    """One positive element of a composite pattern, compiled for streaming.

    ``guard`` is the union of the types of every negated element between
    the previous positive element and this one: while the automaton waits
    for this state, a skipped guard-type event arms the violation flag.
    """

    types: frozenset[str]
    kleene: bool
    guard: frozenset[str]


class PatternNfa:
    """Streaming oracle for the composite pattern language (`core.pattern`).

    Evaluates a :class:`~repro.core.pattern.Pattern` over one trace with
    the same skip-till-next-match semantics as
    :func:`repro.core.pattern.find_matches`, but as a forward
    event-at-a-time automaton: negations compile to *guard sets* checked
    while events stream past, instead of post-hoc occurrence-list
    bisection.  The two implementations share nothing but the AST -- the
    differential suite (``tests/core/test_differential.py``) exists to
    keep them behaviourally identical.
    """

    def __init__(self, pattern) -> None:
        self.pattern = pattern
        elements = pattern.elements
        pos_idx = pattern.positive_indices
        states: list[_PatternState] = []
        for ordinal, elem_index in enumerate(pos_idx):
            prev_index = pos_idx[ordinal - 1] if ordinal else -1
            guard: set[str] = set()
            for j in range(prev_index + 1, elem_index):
                if elements[j].negated:
                    guard.update(elements[j].types)
            elem = elements[elem_index]
            states.append(
                _PatternState(frozenset(elem.types), elem.kleene, frozenset(guard))
            )
        trailing: set[str] = set()
        for j in range(pos_idx[-1] + 1, len(elements)):
            if elements[j].negated:
                trailing.update(elements[j].types)
        self.states = tuple(states)
        self.trailing_guard = frozenset(trailing)

    def evaluate(
        self,
        activities: list[str],
        timestamps: list[float],
        max_matches: int | None = None,
    ) -> list[tuple[float, ...]]:
        """All matches over one trace, as timestamp tuples.

        Greedy non-overlapping runs: a valid match resumes the search
        after its last (absorbed) event; a run invalidated by the window
        or a negation retries right after its first event.
        """
        matches: list[tuple[float, ...]] = []
        n = len(activities)
        search_from = 0
        while search_from < n:
            attempt = self._attempt(activities, timestamps, search_from)
            if attempt is None:
                break  # some positive element is absent from the suffix
            flat, violated = attempt
            span = tuple(timestamps[i] for i in flat)
            if self.pattern.within is not None and (
                span[-1] - span[0] > self.pattern.within
            ):
                violated = True
            if violated:
                search_from = flat[0] + 1
            else:
                matches.append(span)
                if max_matches is not None and len(matches) >= max_matches:
                    break
                search_from = flat[-1] + 1
        return matches

    def _attempt(
        self, activities: list[str], timestamps: list[float], start: int
    ) -> tuple[list[int], bool] | None:
        """One greedy run from ``start``: (positions, violated) or None.

        ``None`` means some positive element never appeared -- the outer
        search loop then stops entirely (later starts only see a smaller
        suffix).  The run always completes before constraints are judged;
        guard hits are accumulated into ``violated`` on the way.
        """
        states = self.states
        n = len(activities)
        flat: list[int] = []
        violated = False
        guard_armed = False
        state = 0
        absorbing = False
        i = start
        while i < n:
            activity = activities[i]
            current = states[state]
            if absorbing:
                nxt = states[state + 1] if state + 1 < len(states) else None
                if nxt is not None and activity in nxt.types:
                    # Kleene hand-off: the event both ends the absorption
                    # and matches the next state.
                    if guard_armed and nxt.guard:
                        violated = True
                    guard_armed = False
                    flat.append(i)
                    state += 1
                    if states[state].kleene:
                        absorbing = True
                    else:
                        absorbing = False
                        state += 1
                        if state == len(states):
                            i += 1
                            break
                elif activity in current.types:
                    flat.append(i)
                    guard_armed = False  # negation scopes restart here
                elif nxt is not None and activity in nxt.guard:
                    guard_armed = True
            elif activity in current.types:
                if guard_armed and current.guard:
                    violated = True
                guard_armed = False
                flat.append(i)
                if current.kleene:
                    absorbing = True
                else:
                    state += 1
                    if state == len(states):
                        i += 1
                        break
            elif activity in current.guard:
                guard_armed = True
            i += 1
        if state < len(states) and not (
            absorbing and state == len(states) - 1
        ):
            return None
        # Trailing negations: scan the rest of the trace (bounded by the
        # WITHIN window when one is set, anchored at the match start).
        if self.trailing_guard:
            last = flat[-1]
            limit = (
                timestamps[flat[0]] + self.pattern.within
                if self.pattern.within is not None
                else None
            )
            for j in range(last + 1, n):
                if limit is not None and timestamps[j] > limit:
                    break
                if activities[j] in self.trailing_guard:
                    violated = True
                    break
        return flat, violated
