"""Trace analysis: the tokenisation step of document indexing.

An event trace maps onto a document whose terms are the activity names and
whose token positions are the event positions.  Timestamps ride along in a
stored field so query results can report real event times, exactly like an
Elasticsearch ``_source`` document.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import Trace


@dataclass(frozen=True)
class AnalyzedDocument:
    """One trace, analysed: term stream plus stored source fields."""

    doc_id: int
    trace_id: str
    terms: tuple[str, ...]
    timestamps: tuple[float, ...]


def analyze_trace(doc_id: int, trace: Trace) -> AnalyzedDocument:
    """Tokenize one trace into a positional term stream."""
    return AnalyzedDocument(
        doc_id=doc_id,
        trace_id=trace.trace_id,
        terms=tuple(trace.activities),
        timestamps=tuple(float(ts) for ts in trace.timestamps),
    )
