"""An Elasticsearch-style search engine over event logs.

The paper compares against Elasticsearch 7.9.1, indexing each trace as a
document of activity terms and querying with ordered span queries.  This
package rebuilds the relevant slice of that engine:

* :mod:`repro.baselines.elastic.analyzer` -- tokenize traces into terms with
  positions (the analysis phase of indexing);
* :mod:`repro.baselines.elastic.postings` -- term dictionary + per-document
  positional postings, buffered then "refreshed" into immutable segments;
* :mod:`repro.baselines.elastic.search`   -- ``span_near(in_order=True)``
  evaluation: candidate documents from postings intersection, in-document
  verification over position lists.
"""

from repro.baselines.elastic.engine import ElasticIndex

__all__ = ["ElasticIndex"]
