"""Positional inverted index: term dictionary and per-document postings.

Writes go to an in-memory buffer (the "indexing buffer"); a *refresh*
freezes the buffer into an immutable segment whose postings are sorted
numpy arrays -- the structure queries actually read, mirroring the Lucene
segment life-cycle that dominates Elasticsearch's indexing cost profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.elastic.analyzer import AnalyzedDocument


@dataclass(frozen=True)
class Posting:
    """One term's occurrences inside one document."""

    doc_id: int
    positions: np.ndarray  # sorted int64 token positions


class Segment:
    """Immutable searchable unit produced by a refresh."""

    def __init__(
        self,
        term_postings: dict[str, list[Posting]],
        documents: dict[int, AnalyzedDocument],
    ) -> None:
        self._term_postings = term_postings
        self._documents = documents

    def postings(self, term: str) -> list[Posting]:
        return self._term_postings.get(term, [])

    def doc_frequency(self, term: str) -> int:
        return len(self._term_postings.get(term, ()))

    def document(self, doc_id: int) -> AnalyzedDocument:
        return self._documents[doc_id]

    @property
    def num_documents(self) -> int:
        return len(self._documents)

    def terms(self) -> list[str]:
        return sorted(self._term_postings)


class PostingsBuffer:
    """Mutable indexing buffer accumulating analysed documents."""

    def __init__(self) -> None:
        self._term_positions: dict[str, dict[int, list[int]]] = {}
        self._documents: dict[int, AnalyzedDocument] = {}

    def add_document(self, document: AnalyzedDocument) -> None:
        if document.doc_id in self._documents:
            raise ValueError(f"duplicate doc_id {document.doc_id}")
        self._documents[document.doc_id] = document
        for position, term in enumerate(document.terms):
            self._term_positions.setdefault(term, {}).setdefault(
                document.doc_id, []
            ).append(position)

    def __len__(self) -> int:
        return len(self._documents)

    def refresh(self) -> Segment:
        """Freeze the buffer into an immutable segment and reset it."""
        term_postings: dict[str, list[Posting]] = {}
        for term, per_doc in self._term_positions.items():
            postings = [
                Posting(doc_id, np.asarray(positions, dtype=np.int64))
                for doc_id, positions in sorted(per_doc.items())
            ]
            term_postings[term] = postings
        segment = Segment(term_postings, dict(self._documents))
        self._term_positions.clear()
        self._documents.clear()
        return segment


def merge_segments(segments: list[Segment]) -> Segment:
    """Merge segments into one (the force-merge/optimize operation)."""
    term_postings: dict[str, list[Posting]] = {}
    documents: dict[int, AnalyzedDocument] = {}
    for segment in segments:
        for doc_id, document in segment._documents.items():
            if doc_id in documents:
                raise ValueError(f"doc_id {doc_id} appears in multiple segments")
            documents[doc_id] = document
        for term in segment.terms():
            term_postings.setdefault(term, []).extend(segment.postings(term))
    for postings in term_postings.values():
        postings.sort(key=lambda posting: posting.doc_id)
    return Segment(term_postings, documents)
