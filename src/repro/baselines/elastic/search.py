"""Ordered span query evaluation (``span_near`` with ``in_order=true``).

Evaluation follows the engine's real two-phase shape:

1. **candidate generation** -- intersect the doc-id sets of every query
   term's postings (conjunctive Boolean filter);
2. **in-document verification** -- walk the per-term position arrays of each
   candidate and emit the minimal in-order spans.

Span semantics use the greedy minimal-span enumeration Lucene's
``SpanNearQuery`` performs; with unlimited slop this returns the same
non-overlapping occurrence set as skip-till-next-match detection, which is
why the paper compares Elasticsearch under STNM queries.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.baselines.elastic.postings import Segment


@dataclass(frozen=True)
class SpanMatch:
    """One in-order span occurrence inside one document."""

    doc_id: int
    positions: tuple[int, ...]


def candidate_documents(segment: Segment, terms: list[str]) -> list[int]:
    """Doc ids containing every query term, rarest-term-first intersection."""
    ordered = sorted(set(terms), key=segment.doc_frequency)
    if not ordered:
        return []
    first = segment.postings(ordered[0])
    survivors = {posting.doc_id for posting in first}
    for term in ordered[1:]:
        if not survivors:
            return []
        doc_ids = {posting.doc_id for posting in segment.postings(term)}
        survivors &= doc_ids
    return sorted(survivors)


def _positions_by_doc(segment: Segment, term: str) -> dict[int, list[int]]:
    return {
        posting.doc_id: posting.positions.tolist()
        for posting in segment.postings(term)
    }


def span_near(
    segment: Segment,
    terms: list[str],
    slop: int | None = None,
) -> list[SpanMatch]:
    """All minimal in-order spans of ``terms``; ``slop`` bounds span width.

    ``slop`` follows Lucene: the number of skipped positions tolerated
    inside the span (``None`` = unlimited; 0 = strict phrase).
    """
    if not terms:
        raise ValueError("span query needs at least one term")
    per_term = [_positions_by_doc(segment, term) for term in terms]
    matches: list[SpanMatch] = []
    for doc_id in candidate_documents(segment, terms):
        position_lists = [positions[doc_id] for positions in per_term]
        if slop is None:
            spans = _doc_spans_greedy(position_lists)
        else:
            spans = [
                span
                for span in _doc_spans_from_each_start(position_lists)
                if (span[-1] - span[0] + 1) - len(terms) <= slop
            ]
        for span in spans:
            matches.append(SpanMatch(doc_id, span))
    return matches


def _doc_spans_greedy(position_lists: list[list[int]]) -> list[tuple[int, ...]]:
    """Non-overlapping greedy in-order spans (unlimited slop / STNM shape)."""
    spans: list[tuple[int, ...]] = []
    floor = -1
    while True:
        span = _next_span(position_lists, floor)
        if span is None:
            return spans
        spans.append(span)
        floor = span[-1]


def _doc_spans_from_each_start(
    position_lists: list[list[int]],
) -> list[tuple[int, ...]]:
    """Minimal chain from every occurrence of the first term (may overlap).

    Needed for finite slop: the narrow span witnessing a phrase can start
    later than the greedy earliest chain (e.g. phrase "A A B" in "AAAB"
    must start at the second A).
    """
    spans: list[tuple[int, ...]] = []
    for start in position_lists[0]:
        chain = _next_span(position_lists[1:], start)
        if chain is not None:
            spans.append((start,) + chain)
    return spans


def _next_span(
    position_lists: list[list[int]], floor: int
) -> tuple[int, ...] | None:
    """Earliest in-order chain strictly after ``floor`` (greedy per step)."""
    chain: list[int] = []
    previous = floor
    for positions in position_lists:
        idx = bisect_right(positions, previous)
        if idx >= len(positions):
            return None
        previous = positions[idx]
        chain.append(previous)
    return tuple(chain)
