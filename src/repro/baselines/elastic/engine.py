"""`ElasticIndex`: the user-facing facade of the Elasticsearch baseline."""

from __future__ import annotations

from repro.baselines.elastic.analyzer import analyze_trace
from repro.baselines.elastic.postings import PostingsBuffer, Segment, merge_segments
from repro.baselines.elastic.search import span_near
from repro.core.matches import PatternMatch
from repro.core.model import EventLog


class ElasticIndex:
    """Index event logs as positional documents; query with ordered spans.

    Usage mirrors the engine being modelled: ``index_log`` analyses and
    buffers documents, ``refresh`` makes them searchable, queries run
    against the merged view.
    """

    def __init__(self, refresh_every: int = 10_000) -> None:
        if refresh_every <= 0:
            raise ValueError("refresh_every must be positive")
        self._refresh_every = refresh_every
        self._buffer = PostingsBuffer()
        self._segments: list[Segment] = []
        self._searchable: Segment | None = None
        self._next_doc_id = 0

    @classmethod
    def from_log(cls, log: EventLog, refresh_every: int = 10_000) -> "ElasticIndex":
        index = cls(refresh_every)
        index.index_log(log)
        index.refresh()
        return index

    # -- indexing -----------------------------------------------------------------

    def index_log(self, log: EventLog) -> None:
        """Analyse and buffer every trace of ``log`` as a document."""
        for trace in log:
            document = analyze_trace(self._next_doc_id, trace)
            self._next_doc_id += 1
            self._buffer.add_document(document)
            if len(self._buffer) >= self._refresh_every:
                self._segments.append(self._buffer.refresh())
                self._searchable = None

    def refresh(self) -> None:
        """Make buffered documents searchable (freeze into a segment)."""
        if len(self._buffer):
            self._segments.append(self._buffer.refresh())
            self._searchable = None

    def force_merge(self) -> None:
        """Merge all segments into one (the optimize operation)."""
        self.refresh()
        if len(self._segments) > 1:
            self._segments = [merge_segments(self._segments)]
            self._searchable = None

    @property
    def num_documents(self) -> int:
        return sum(segment.num_documents for segment in self._segments) + len(
            self._buffer
        )

    # -- queries -------------------------------------------------------------------

    def _view(self) -> Segment:
        if self._searchable is None:
            if not self._segments:
                self._segments = [PostingsBuffer().refresh()]
            self._searchable = (
                self._segments[0]
                if len(self._segments) == 1
                else merge_segments(self._segments)
            )
            self._segments = [self._searchable]
        return self._searchable

    def span_search(
        self, pattern: list[str], slop: int | None = None
    ) -> list[PatternMatch]:
        """Ordered span query; returns matches with real event timestamps.

        ``slop=None`` is the STNM-style unlimited-gap query the paper runs;
        ``slop=0`` degenerates to a strict phrase (SC) query.
        """
        view = self._view()
        matches: list[PatternMatch] = []
        for span in span_near(view, pattern, slop):
            document = view.document(span.doc_id)
            matches.append(
                PatternMatch(
                    document.trace_id,
                    tuple(document.timestamps[p] for p in span.positions),
                )
            )
        matches.sort(key=lambda m: (m.trace_id, m.timestamps))
        return matches

    def contains(self, pattern: list[str], slop: int | None = None) -> list[str]:
        """Trace ids with at least one in-order span of ``pattern``."""
        return sorted({match.trace_id for match in self.span_search(pattern, slop)})

    def count(self, pattern: list[str], slop: int | None = None) -> int:
        """Number of span occurrences of ``pattern``."""
        return len(self.span_search(pattern, slop))
