"""Exact subsequence matching in sublinear time (the paper's [19] baseline).

Luccio et al. pre-process a tree into a suffix array over its preorder
string so that rooted subtree patterns resolve with one binary search.  The
paper (following [27]) applies the technique to event logs: the log's
traces form a tree whose root-to-leaf paths are the distinct trace
sequences, and a strict-contiguity pattern query is a search for the
pattern as a contiguous path.

This package implements that pipeline: distinct trace sequences are
deduplicated through a trace tree (:mod:`repro.baselines.suffix.trace_tree`),
a generalized suffix array is built over their symbol string
(:mod:`repro.baselines.suffix.suffix_array`, prefix-doubling on numpy), and
queries binary-search the array (:mod:`repro.baselines.suffix.matcher`) in
O(m log n + k), independent of how many traces match.

Like the original, the technique supports **strict contiguity only**, and
its pre-processing cost grows with the total length of distinct traces --
the behaviour Table 6 of the paper exposes on the diverse BPI 2017 log.
"""

from repro.baselines.suffix.matcher import SuffixArrayMatcher
from repro.baselines.suffix.suffix_array import build_suffix_array, naive_suffix_array
from repro.baselines.suffix.trace_tree import TraceTree

__all__ = [
    "SuffixArrayMatcher",
    "TraceTree",
    "build_suffix_array",
    "naive_suffix_array",
]
