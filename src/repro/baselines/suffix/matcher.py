"""Strict-contiguity pattern matching via a generalized suffix array.

Pre-processing (the cost Table 6 measures):

1. deduplicate traces through the :class:`TraceTree`;
2. concatenate the distinct trace sequences, separated by a sentinel 0,
   activities encoded as integers >= 1;
3. build the suffix array over the concatenation.

Query (the cost Table 7 measures): two binary searches bracket the suffixes
starting with the encoded pattern -- O(m log n) -- and the bracketed range
enumerates every occurrence (k of them), each mapped back to the distinct
trace it lies in and fanned out to the duplicate trace ids.  Response time
is independent of the pattern length's position in the traces and of how
many traces exist, matching the paper's observation that [19]'s query time
is flat.

Pattern continuation (the [27] use case) reads the symbol following each
occurrence -- also O(log n + k).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.suffix.suffix_array import build_suffix_array
from repro.baselines.suffix.trace_tree import TraceTree
from repro.core.matches import PatternMatch
from repro.core.model import EventLog


@dataclass(frozen=True)
class SuffixStats:
    """Size counters exposed for experiments and tests."""

    num_traces: int
    distinct_traces: int
    text_length: int


class SuffixArrayMatcher:
    """The [19] baseline: SC-only detection over a pre-built suffix array.

    Two construction modes:

    * ``mode="materialized"`` (default) mirrors the implementation profile
      the paper measured: every suffix ("subtree") of every distinct trace
      is materialised explicitly and the collection is sorted by content --
      the step §5.3 identifies as "the most computationally intense process
      is to find all the subtrees and store them", which is what collapses
      on large diverse logs like BPI 2017.
    * ``mode="array"`` is the modern equivalent: a prefix-doubling suffix
      array over the concatenated distinct traces, O(n log^2 n) with small
      memory.  Exposed for the ablation comparing the published baseline
      against its best-known implementation.

    Queries behave identically in both modes: binary search bracketing the
    pattern, O(m log n + k), flat in pattern length.
    """

    def __init__(self, log: EventLog, mode: str = "materialized") -> None:
        if mode not in ("materialized", "array"):
            raise ValueError(f"mode must be 'materialized' or 'array', got {mode!r}")
        self._mode = mode
        tree = TraceTree.from_log(log)
        paths = tree.distinct_paths()
        alphabet = sorted({a for path, _ in paths for a in path})
        self._encode = {activity: i + 1 for i, activity in enumerate(alphabet)}
        symbols: list[int] = []
        starts: list[int] = []
        self._paths: list[tuple[tuple[str, ...], list[str]]] = paths
        self._timestamps: dict[str, list[float]] = {
            trace.trace_id: list(trace.timestamps) for trace in log
        }
        for path, _ in paths:
            starts.append(len(symbols))
            symbols.extend(self._encode[a] for a in path)
            symbols.append(0)  # sentinel: no pattern symbol can cross it
        self._text = np.asarray(symbols, dtype=np.int64)
        self._starts = np.asarray(starts, dtype=np.int64)
        if mode == "array":
            self._suffix_array = build_suffix_array(self._text)
        else:
            # Materialise every per-trace suffix ("subtree") as its own tuple
            # and sort the collection by content -- the stored-subtrees
            # approach of the measured implementation.  Space and sort work
            # grow with the sum of squared trace lengths, which is exactly
            # what collapses on long-trace logs like BPI 2017.
            suffixes: list[tuple[tuple[int, ...], int]] = []
            for start, (path, _) in zip(starts, paths):
                encoded = tuple(self._encode[a] for a in path)
                for i in range(len(encoded)):
                    suffixes.append((encoded[i:], start + i))
            suffixes.sort()
            # Sentinel positions all spell the smallest symbol, so they sort
            # before every pattern-bearing suffix; their relative order is
            # irrelevant to pattern searches.  Sorting per-trace suffixes is
            # consistent with full-text comparison because the sentinel
            # terminator is smaller than every pattern symbol.
            sentinel_positions = [i for i in range(len(symbols)) if symbols[i] == 0]
            ranked = sentinel_positions + [pos for _, pos in suffixes]
            self._suffix_array = np.asarray(ranked, dtype=np.int64)
        self._stats = SuffixStats(
            num_traces=tree.num_traces,
            distinct_traces=len(paths),
            text_length=len(self._text),
        )

    @property
    def stats(self) -> SuffixStats:
        return self._stats

    # -- queries -----------------------------------------------------------------

    def detect(self, pattern: list[str]) -> list[PatternMatch]:
        """All SC occurrences of ``pattern``, with real event timestamps."""
        occurrences = self._occurrences(pattern)
        matches: list[PatternMatch] = []
        for path_index, offset in occurrences:
            _, trace_ids = self._paths[path_index]
            for trace_id in trace_ids:
                stamps = self._timestamps[trace_id]
                matches.append(
                    PatternMatch(
                        trace_id,
                        tuple(stamps[offset : offset + len(pattern)]),
                    )
                )
        matches.sort(key=lambda m: (m.trace_id, m.timestamps))
        return matches

    def contains(self, pattern: list[str]) -> list[str]:
        """Trace ids containing ``pattern`` contiguously."""
        ids = {
            trace_id
            for path_index, _ in self._occurrences(pattern)
            for trace_id in self._paths[path_index][1]
        }
        return sorted(ids)

    def continuations(self, pattern: list[str]) -> dict[str, int]:
        """Activities immediately following the pattern, with frequencies.

        Frequencies count occurrences weighted by trace multiplicity --
        the possible-continuation primitive of [27].
        """
        counts: dict[str, int] = {}
        for path_index, offset in self._occurrences(pattern):
            path, trace_ids = self._paths[path_index]
            follow = offset + len(pattern)
            if follow < len(path):
                activity = path[follow]
                counts[activity] = counts.get(activity, 0) + len(trace_ids)
        return counts

    # -- internals -------------------------------------------------------------------

    def _occurrences(self, pattern: list[str]) -> list[tuple[int, int]]:
        """(distinct-path index, offset) of each occurrence."""
        if not pattern:
            raise ValueError("pattern must be non-empty")
        encoded = []
        for activity in pattern:
            code = self._encode.get(activity)
            if code is None:
                return []
            encoded.append(code)
        needle = np.asarray(encoded, dtype=np.int64)
        lo = self._lower_bound(needle)
        hi = self._upper_bound(needle)
        result: list[tuple[int, int]] = []
        for rank in range(lo, hi):
            position = int(self._suffix_array[rank])
            path_index = int(
                np.searchsorted(self._starts, position, side="right") - 1
            )
            offset = position - int(self._starts[path_index])
            result.append((path_index, offset))
        return result

    def _compare(self, position: int, needle: np.ndarray) -> int:
        """Compare suffix at ``position`` against ``needle`` prefix-wise."""
        end = min(position + len(needle), len(self._text))
        window = self._text[position:end]
        prefix = needle[: len(window)]
        diffs = np.nonzero(window != prefix)[0]
        if diffs.size:
            first = int(diffs[0])
            return -1 if int(window[first]) < int(prefix[first]) else 1
        if len(window) < len(needle):
            return -1  # suffix exhausted: shorter sorts first
        return 0

    def _lower_bound(self, needle: np.ndarray) -> int:
        lo, hi = 0, len(self._suffix_array)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._compare(int(self._suffix_array[mid]), needle) < 0:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _upper_bound(self, needle: np.ndarray) -> int:
        lo, hi = 0, len(self._suffix_array)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._compare(int(self._suffix_array[mid]), needle) <= 0:
                lo = mid + 1
            else:
                hi = mid
        return lo
