"""Suffix-array construction over integer symbol sequences.

:func:`build_suffix_array` is the production path: prefix-doubling with
numpy ``argsort`` -- O(n log^2 n), comfortably handling the million-symbol
strings the BPI-sized logs produce.  :func:`naive_suffix_array` is the
quadratic oracle the property tests compare against.
"""

from __future__ import annotations

import numpy as np


def build_suffix_array(sequence: np.ndarray) -> np.ndarray:
    """Indices of ``sequence``'s suffixes in lexicographic order.

    ``sequence`` must be a one-dimensional integer array; values only need
    a consistent order (no contiguity requirement).
    """
    seq = np.asarray(sequence)
    if seq.ndim != 1:
        raise ValueError("sequence must be one-dimensional")
    n = len(seq)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    # rank[i] = equivalence class of suffix i under comparison of the first
    # k symbols; doubling k while re-ranking pairs (rank[i], rank[i+k]).
    order = np.argsort(seq, kind="stable")
    rank = np.empty(n, dtype=np.int64)
    sorted_vals = seq[order]
    rank[order] = np.cumsum(np.concatenate(([0], sorted_vals[1:] != sorted_vals[:-1])))
    k = 1
    while k < n:
        # Pair key: (rank[i], rank[i + k]) with -1 past the end.
        second = np.full(n, -1, dtype=np.int64)
        second[: n - k] = rank[k:]
        order = np.lexsort((second, rank))
        paired_first = rank[order]
        paired_second = second[order]
        changed = np.concatenate(
            (
                [0],
                (paired_first[1:] != paired_first[:-1])
                | (paired_second[1:] != paired_second[:-1]),
            )
        )
        new_rank = np.empty(n, dtype=np.int64)
        new_rank[order] = np.cumsum(changed)
        rank = new_rank
        if rank[order[-1]] == n - 1:
            break  # all suffixes distinct: fully sorted
        k *= 2
    return order.astype(np.int64)


def naive_suffix_array(sequence: np.ndarray) -> np.ndarray:
    """Quadratic reference: sort actual suffix slices (tests only)."""
    seq = list(np.asarray(sequence))
    order = sorted(range(len(seq)), key=lambda i: seq[i:])
    return np.asarray(order, dtype=np.int64)
