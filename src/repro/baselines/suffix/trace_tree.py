"""The trace tree: distinct trace sequences with shared-prefix structure.

Inserting every trace into a trie both deduplicates identical traces (the
dominant saving in process logs, where thousands of cases follow the same
variant) and exposes the tree whose preorder string the suffix array
indexes.  Each distinct root-to-leaf path keeps the list of trace ids that
follow it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.model import EventLog


@dataclass
class TraceTreeNode:
    """One trie node; ``children`` keyed by activity."""

    activity: str | None
    children: dict[str, "TraceTreeNode"] = field(default_factory=dict)
    trace_ids: list[str] = field(default_factory=list)  # traces ending here

    def child(self, activity: str) -> "TraceTreeNode":
        node = self.children.get(activity)
        if node is None:
            node = TraceTreeNode(activity)
            self.children[activity] = node
        return node


class TraceTree:
    """Trie over trace activity sequences."""

    def __init__(self) -> None:
        self.root = TraceTreeNode(None)
        self._num_traces = 0
        self._num_nodes = 0

    @classmethod
    def from_log(cls, log: EventLog) -> "TraceTree":
        tree = cls()
        for trace in log:
            tree.insert(trace.trace_id, trace.activities)
        return tree

    def insert(self, trace_id: str, activities: list[str]) -> None:
        """Add one trace's activity path."""
        node = self.root
        for activity in activities:
            node = node.child(activity)
        node.trace_ids.append(trace_id)
        self._num_traces += 1

    @property
    def num_traces(self) -> int:
        return self._num_traces

    def num_nodes(self) -> int:
        """Trie size (excluding the root)."""
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            for child in node.children.values():
                count += 1
                stack.append(child)
        return count

    def distinct_paths(self) -> list[tuple[tuple[str, ...], list[str]]]:
        """All distinct trace sequences with the trace ids following each.

        Returned in deterministic (depth-first, activity-sorted) order.
        """
        result: list[tuple[tuple[str, ...], list[str]]] = []

        def descend(node: TraceTreeNode, path: tuple[str, ...]) -> None:
            if node.trace_ids:
                result.append((path, list(node.trace_ids)))
            for activity in sorted(node.children):
                descend(node.children[activity], path + (activity,))

        descend(self.root, ())
        return result

    def preorder_string(self, encode: dict[str, int]) -> list[int]:
        """The Luccio-style preorder string: labels with 0 on each ascent."""
        out: list[int] = []

        def descend(node: TraceTreeNode) -> None:
            for activity in sorted(node.children):
                child = node.children[activity]
                out.append(encode[activity])
                descend(child)
                out.append(0)

        descend(self.root)
        return out
