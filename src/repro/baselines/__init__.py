"""The three comparison systems of the paper's evaluation (§5).

* :mod:`repro.baselines.suffix`  -- the suffix-array subtree-matching
  technique of Luccio et al. ([19] in the paper): heavy pre-processing,
  O(m log n + k) strict-contiguity queries.
* :mod:`repro.baselines.elastic` -- an Elasticsearch-style positional
  inverted index answering ordered span queries.
* :mod:`repro.baselines.sase`    -- the SASE complex-event-processing
  engine: no pre-processing, NFA evaluation over the whole log per query.
"""

from repro.baselines.elastic import ElasticIndex
from repro.baselines.sase import SaseEngine, SasePattern
from repro.baselines.suffix import SuffixArrayMatcher

__all__ = ["SuffixArrayMatcher", "ElasticIndex", "SaseEngine", "SasePattern"]
