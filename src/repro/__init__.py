"""repro: a full reproduction of "Sequence detection in event log files".

(Mavroudopoulos et al., EDBT 2021.)

The package indexes large collections of event logs so that arbitrary
sequential patterns -- under strict-contiguity or skip-till-next-match
semantics -- can be detected, counted and extended quickly, with the index
maintained incrementally as new log batches arrive.

Quickstart::

    from repro import EventLog, SequenceIndex, Policy

    log = EventLog.from_dict({
        "t1": ["A", "A", "B", "A", "B", "A"],
        "t2": ["A", "B", "C"],
    })
    index = SequenceIndex(policy=Policy.STNM)
    index.update(log)
    index.detect(["A", "B"])          # -> pattern matches with timestamps
    index.continuations(["A", "B"])   # -> ranked next-event proposals

Sub-packages: :mod:`repro.core` (the paper's contribution),
:mod:`repro.kvstore` (embedded LSM store), :mod:`repro.executor`
(parallel map), :mod:`repro.logs` (parsers and generators),
:mod:`repro.baselines` (suffix-array matcher, Elasticsearch-like engine,
SASE CEP engine), :mod:`repro.bench` (experiment harness).
"""

from repro.core import (
    Completion,
    ContinuationProposal,
    EmptyPatternError,
    Event,
    EventLog,
    PairMethod,
    PairStats,
    Pattern,
    PatternElement,
    PatternMatch,
    PatternPlan,
    PatternSyntaxError,
    Policy,
    PolicyMismatchError,
    ReproError,
    SequenceIndex,
    Trace,
    TraceOrderError,
    create_pairs,
    parse_pattern,
)

__version__ = "1.0.0"

__all__ = [
    "SequenceIndex",
    "Event",
    "Trace",
    "EventLog",
    "Policy",
    "PairMethod",
    "create_pairs",
    "Pattern",
    "PatternElement",
    "parse_pattern",
    "PatternMatch",
    "PatternPlan",
    "Completion",
    "PairStats",
    "ContinuationProposal",
    "ReproError",
    "TraceOrderError",
    "EmptyPatternError",
    "PatternSyntaxError",
    "PolicyMismatchError",
    "__version__",
]
