"""The query service: a multi-client socket front-end over an index.

``repro.service`` serves any engine -- a single-store
:class:`~repro.core.engine.SequenceIndex` or a
:class:`~repro.shard.index.ShardedSequenceIndex` -- over a small
length-prefixed JSON protocol (:mod:`repro.service.protocol`).  The server
(:mod:`repro.service.server`) is a socket + threadpool design with
admission control (bounded in-flight queries), per-request deadlines that
cancel shard fan-outs, bounded backpressure on the ingest path, and a
graceful drain on shutdown.  :mod:`repro.service.client` is the matching
blocking client and :mod:`repro.service.loadgen` the closed-loop load
generator behind ``repro loadgen`` and ``benchmarks/bench_sharded_service.py``.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.loadgen import LoadgenReport, run_loadgen
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    recv_frame,
    send_frame,
)
from repro.service.server import SequenceService

__all__ = [
    "MAX_FRAME_BYTES",
    "LoadgenReport",
    "ProtocolError",
    "SequenceService",
    "ServiceClient",
    "ServiceError",
    "recv_frame",
    "run_loadgen",
    "send_frame",
]
