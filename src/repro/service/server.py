"""The multi-client query server.

``SequenceService`` accepts TCP connections and serves the protocol of
:mod:`repro.service.protocol` over any engine exposing the
``detect``/``count``/``contains``/``update`` surface -- the single-store
:class:`~repro.core.engine.SequenceIndex` and the sharded
:class:`~repro.shard.index.ShardedSequenceIndex` both qualify, so the
benchmark can run the exact same traffic against either.

Control planes:

* **admission control** -- at most ``max_inflight`` requests execute at
  once; a request that cannot acquire a slot immediately is rejected with
  ``overloaded`` (the client decides whether to retry), so a burst can
  never queue unboundedly behind slow queries.
* **per-request deadlines** -- ``deadline_ms`` (or the server default) is
  converted to an absolute instant when the request is admitted.  Expired
  deadlines short-circuit before execution; a sharded engine receives the
  instant and cancels its shard fan-out mid-flight
  (:class:`~repro.core.errors.DeadlineExceeded` maps to the ``deadline``
  error code).
* **ingest backpressure** -- writes take a separate, smaller token pool
  (``max_ingest_inflight``) with a bounded wait (``ingest_wait_s``): a
  write burst slows producers down instead of starving reads, and waits
  longer than the bound are rejected with ``overloaded``.
* **graceful drain** -- :meth:`shutdown` stops accepting, answers every
  request already admitted, rejects new ones with ``shutdown``, then joins
  every connection thread and closes every socket; no thread or fd leaks
  (the tier-1 smoke test counts both).

Single-store engines serialize ``update()`` calls under a server-side lock
(the incremental builder's read-modify-write bookkeeping is not safe under
concurrent batches); the sharded engine already serializes per shard and
ingests cross-shard batches concurrently.
"""

from __future__ import annotations

import inspect
import socket
import threading
import time
from typing import Any, Callable

from repro.core.errors import (
    DeadlineExceeded,
    EmptyPatternError,
    PatternSyntaxError,
    PolicyMismatchError,
    TraceOrderError,
)
from repro.core.model import Event
from repro.ingest.ingester import drop_indexed
from repro.obs.registry import REGISTRY
from repro.service.protocol import ProtocolError, recv_frame, send_frame

_BAD_REQUEST_ERRORS = (
    EmptyPatternError,
    PatternSyntaxError,
    PolicyMismatchError,
    TraceOrderError,
    ValueError,
    TypeError,
    KeyError,
)


class _ServiceMetrics:
    """Registry-collected service counters (single lock; low rate)."""

    _NAMES = (
        "requests",
        "rejected",
        "ingest_rejected",
        "deadline_exceeded",
        "errors",
        "connections",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self._NAMES:
            setattr(self, name, 0)
        self.active_requests = 0

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def collect(self) -> dict[str, float]:
        with self._lock:
            samples = {
                f"repro_service_{name}_total": getattr(self, name)
                for name in self._NAMES
            }
            samples["repro_service_active_requests"] = self.active_requests
            return samples


class SequenceService:
    """Socket front-end over an index engine; one thread per connection.

    ``port=0`` binds an ephemeral port (see :attr:`address` after
    :meth:`start`).  The server never owns the engine: callers close the
    engine after :meth:`shutdown` returns.
    """

    def __init__(
        self,
        engine: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 8,
        max_ingest_inflight: int = 2,
        default_deadline_ms: float | None = None,
        ingest_wait_s: float = 0.5,
        obs_name: str = "service",
    ) -> None:
        if max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        if max_ingest_inflight <= 0:
            raise ValueError("max_ingest_inflight must be positive")
        self.engine = engine
        self._host = host
        self._port = port
        self._query_slots = threading.BoundedSemaphore(max_inflight)
        self._ingest_slots = threading.BoundedSemaphore(max_ingest_inflight)
        self._ingest_wait_s = ingest_wait_s
        self._default_deadline_ms = default_deadline_ms
        self._supports_deadline = (
            "deadline" in inspect.signature(engine.detect).parameters
        )
        # The sharded engine serializes ingest per shard itself; single-store
        # engines need one writer at a time.
        self._ingest_lock = (
            None if getattr(engine, "num_shards", None) else threading.Lock()
        )
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._conn_lock = threading.Lock()
        self._connections: dict[int, tuple[socket.socket, threading.Thread]] = {}
        self._next_conn_id = 1
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self.metrics = _ServiceMetrics()
        self._obs_handle: int | None = None
        self._obs_name = obs_name

    # -- lifecycle ----------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; valid after :meth:`start`."""
        if self._listener is None:
            raise RuntimeError("server is not started")
        return self._listener.getsockname()[:2]

    def start(self) -> "SequenceService":
        """Bind, listen and start the accept loop (non-blocking)."""
        if self._listener is not None:
            raise RuntimeError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(128)
        # A blocked accept() is not reliably woken by close(); poll with a
        # short timeout so shutdown() can always join the accept loop.
        listener.settimeout(0.2)
        self._listener = listener
        self._obs_handle = REGISTRY.register(
            {"service": self._obs_name}, self.metrics.collect
        )
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-service-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def shutdown(self, timeout: float = 10.0) -> None:
        """Graceful drain: finish admitted work, then close everything."""
        if self._stopped.is_set():
            return
        self._draining.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout)
        deadline = time.monotonic() + timeout
        with self._conn_lock:
            connections = list(self._connections.values())
        for sock, thread in connections:
            thread.join(max(deadline - time.monotonic(), 0.0))
            if thread.is_alive():
                # Drain budget exhausted: cut the socket so the handler's
                # blocking recv fails and the thread exits.
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
                thread.join(1.0)
        if self._obs_handle is not None:
            REGISTRY.unregister(self._obs_handle)
            self._obs_handle = None
        self._stopped.set()

    def __enter__(self) -> "SequenceService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- accept / connection handling ---------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._draining.is_set():
            try:
                conn, _addr = self._listener.accept()
            except TimeoutError:
                continue
            except OSError:
                break  # listener closed by shutdown()
            conn.settimeout(None)
            if self._draining.is_set():
                conn.close()
                break
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self.metrics.bump("connections")
            with self._conn_lock:
                conn_id = self._next_conn_id
                self._next_conn_id += 1
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(conn_id, conn),
                    name=f"repro-service-conn-{conn_id}",
                    daemon=True,
                )
                self._connections[conn_id] = (conn, thread)
            thread.start()

    def _serve_connection(self, conn_id: int, conn: socket.socket) -> None:
        try:
            while True:
                try:
                    request = recv_frame(conn)
                except (ProtocolError, OSError):
                    break
                if request is None:
                    break
                response = self._handle_request(request)
                try:
                    send_frame(conn, response)
                except (ProtocolError, OSError):
                    break
                if self._draining.is_set():
                    # One in-drain answer (likely a shutdown rejection) is
                    # enough; close instead of serving the connection forever.
                    break
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            with self._conn_lock:
                self._connections.pop(conn_id, None)

    # -- request handling ----------------------------------------------------------

    def _handle_request(self, request: dict[str, Any]) -> dict[str, Any]:
        request_id = request.get("id")
        op = request.get("op")
        self.metrics.bump("requests")
        if self._draining.is_set():
            return _error(request_id, "shutdown", "server is draining")
        if op == "ping":
            return {"id": request_id, "ok": True, "result": "pong"}
        if op == "ingest":
            return self._handle_ingest(request_id, request)
        if op in ("detect", "count", "contains", "stats"):
            return self._handle_query(request_id, op, request)
        self.metrics.bump("errors")
        return _error(request_id, "bad_request", f"unknown op: {op!r}")

    def _deadline_from(self, request: dict[str, Any]) -> float | None:
        deadline_ms = request.get("deadline_ms", self._default_deadline_ms)
        if deadline_ms is None:
            return None
        return time.monotonic() + float(deadline_ms) / 1e3

    def _handle_query(
        self, request_id: Any, op: str, request: dict[str, Any]
    ) -> dict[str, Any]:
        if not self._query_slots.acquire(blocking=False):
            self.metrics.bump("rejected")
            return _error(
                request_id, "overloaded", "too many in-flight queries"
            )
        self.metrics.bump("active_requests")
        try:
            deadline = self._deadline_from(request)
            if deadline is not None and time.monotonic() >= deadline:
                self.metrics.bump("deadline_exceeded")
                return _error(
                    request_id, "deadline", "deadline expired before execution"
                )
            try:
                result = self._execute(op, request, deadline)
            except DeadlineExceeded as exc:
                self.metrics.bump("deadline_exceeded")
                return _error(request_id, "deadline", str(exc))
            except _BAD_REQUEST_ERRORS as exc:
                self.metrics.bump("errors")
                return _error(request_id, "bad_request", str(exc))
            except Exception as exc:
                self.metrics.bump("errors")
                return _error(request_id, "internal", f"{type(exc).__name__}: {exc}")
            if deadline is not None and time.monotonic() > deadline:
                # The engine finished after the instant (e.g. single-store
                # engines cannot cancel mid-join); report the miss honestly.
                self.metrics.bump("deadline_exceeded")
                return _error(request_id, "deadline", "deadline expired")
            return {"id": request_id, "ok": True, "result": result}
        finally:
            self.metrics.bump("active_requests", -1)
            self._query_slots.release()

    def _execute(
        self, op: str, request: dict[str, Any], deadline: float | None
    ) -> Any:
        pattern = request.get("pattern")
        partition = request.get("partition", "")
        kwargs: dict[str, Any] = {}
        if self._supports_deadline:
            kwargs["deadline"] = deadline
        if op == "stats":
            stats_fn = getattr(self.engine, "storage_stats", None)
            if stats_fn is None:
                store = getattr(self.engine, "store", None)
                stats_fn = getattr(store, "storage_stats", None)
            # In-memory backends keep no storage accounting; report shape only.
            return stats_fn() if stats_fn is not None else {}
        if not isinstance(pattern, (str, list)):
            raise ValueError("pattern must be a list of activities or an expression")
        if op == "detect":
            matches = self.engine.detect(
                pattern,
                partition,
                max_matches=_opt_int(request.get("max_matches")),
                within=_opt_float(request.get("within")),
                **kwargs,
            )
            return [
                {"trace_id": m.trace_id, "timestamps": list(m.timestamps)}
                for m in matches
            ]
        if op == "count":
            return self.engine.count(
                pattern, partition, within=_opt_float(request.get("within")), **kwargs
            )
        return self.engine.contains(pattern, partition, **kwargs)

    def _handle_ingest(
        self, request_id: Any, request: dict[str, Any]
    ) -> dict[str, Any]:
        if not self._ingest_slots.acquire(timeout=self._ingest_wait_s):
            self.metrics.bump("ingest_rejected")
            return _error(
                request_id, "overloaded", "ingest backpressure: retry later"
            )
        self.metrics.bump("active_requests")
        try:
            events = request.get("events")
            if not isinstance(events, list) or not events:
                raise ValueError("ingest needs a non-empty events list")
            batch = [
                Event(str(trace_id), str(activity), float(timestamp))
                for trace_id, activity, timestamp in events
            ]
            partition = request.get("partition", "")
            # ``dedup`` is the streaming ingester's replay filter: events
            # at or before their trace's indexed tail are dropped instead
            # of tripping the builder's trace-order check, making crash
            # replay (and at-least-once producers) idempotent.
            deduped = 0
            if self._ingest_lock is not None:
                with self._ingest_lock:
                    if request.get("dedup"):
                        batch, deduped = drop_indexed(
                            batch, self.engine.indexed_tail
                        )
                    stats = self._apply_ingest(batch, partition)
            else:
                if request.get("dedup"):
                    batch, deduped = drop_indexed(batch, self.engine.indexed_tail)
                stats = self._apply_ingest(batch, partition)
            return {
                "id": request_id,
                "ok": True,
                "result": {
                    "traces_seen": stats.traces_seen,
                    "new_traces": stats.new_traces,
                    "events_indexed": stats.events_indexed,
                    "events_deduped": deduped,
                    "pairs_created": stats.pairs_created,
                },
            }
        except _BAD_REQUEST_ERRORS as exc:
            self.metrics.bump("errors")
            return _error(request_id, "bad_request", str(exc))
        except Exception as exc:
            self.metrics.bump("errors")
            return _error(request_id, "internal", f"{type(exc).__name__}: {exc}")
        finally:
            self.metrics.bump("active_requests", -1)
            self._ingest_slots.release()

    def _apply_ingest(self, batch: list[Event], partition: str) -> Any:
        """Apply a (possibly fully-deduplicated) batch to the engine.

        An empty post-dedup batch skips ``update()`` entirely so a pure
        replay does not bump write generations and evict warm caches.
        """
        if not batch:
            from repro.core.builder import UpdateStats

            return UpdateStats(partition=partition)
        return self.engine.update(batch, partition)


def _error(request_id: Any, code: str, message: str) -> dict[str, Any]:
    return {"id": request_id, "ok": False, "code": code, "error": message}


def _opt_int(value: Any) -> int | None:
    return None if value is None else int(value)


def _opt_float(value: Any) -> float | None:
    return None if value is None else float(value)
