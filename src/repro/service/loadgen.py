"""Closed-loop load generator for the query service.

``run_loadgen`` starts N client threads against a running server; each
thread loops synchronously (closed loop: at most one request in flight per
client) picking a write with probability ``write_fraction`` and a read
query from the pattern pool otherwise.  Latencies are recorded per
operation class and summarized as p50/p95/p99 plus overall
queries-per-second -- the workload and report behind ``repro loadgen`` and
``benchmarks/bench_sharded_service.py``.

Writes append fresh events to a bounded pool of generator-owned traces
(deterministic per seed), so read traffic continuously races cache
invalidation exactly the way a live monitoring deployment would.
``overloaded`` rejections are counted, not retried -- a closed loop
self-limits, so rejections only appear when admission control is genuinely
saturated.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.service.client import ServiceClient, ServiceError


@dataclass
class LoadgenReport:
    """Aggregated result of one load-generation run."""

    duration_s: float
    clients: int
    requests: int
    errors: int
    rejected: int
    deadline_exceeded: int
    qps: float
    latency_ms: dict[str, dict[str, float]] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "duration_s": self.duration_s,
            "clients": self.clients,
            "requests": self.requests,
            "errors": self.errors,
            "rejected": self.rejected,
            "deadline_exceeded": self.deadline_exceeded,
            "qps": self.qps,
            "latency_ms": self.latency_ms,
        }


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (0 on empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


class _Worker(threading.Thread):
    def __init__(
        self,
        index: int,
        host: str,
        port: int,
        patterns: Sequence[Any],
        write_fraction: float,
        write_batch: int,
        deadline_ms: float | None,
        stop: threading.Event,
        seed: int,
    ) -> None:
        super().__init__(name=f"loadgen-{index}", daemon=True)
        self._index = index
        self._host = host
        self._port = port
        self._patterns = list(patterns)
        self._write_fraction = write_fraction
        self._write_batch = write_batch
        self._deadline_ms = deadline_ms
        self._halt = stop
        self._rng = random.Random(seed * 1_000_003 + index)
        self._write_clock: dict[str, float] = {}
        self.latencies: dict[str, list[float]] = {"read": [], "write": []}
        self.requests = 0
        self.errors = 0
        self.rejected = 0
        self.deadline_exceeded = 0
        self.failure: Exception | None = None

    def _next_write(self) -> list[list[Any]]:
        """A deterministic append batch over this worker's own traces."""
        rng = self._rng
        trace_id = f"lg-{self._index}-{rng.randrange(64)}"
        last = self._write_clock.get(trace_id, 0.0)
        events = []
        for _ in range(self._write_batch):
            last += rng.randint(1, 4)
            events.append([trace_id, rng.choice("abcdefgh"), last])
        self._write_clock[trace_id] = last
        return events

    def run(self) -> None:
        try:
            client = ServiceClient(self._host, self._port)
        except OSError as exc:
            self.failure = exc
            return
        try:
            while not self._halt.is_set():
                is_write = self._rng.random() < self._write_fraction
                start = time.perf_counter()
                try:
                    if is_write:
                        client.ingest(self._next_write())
                    else:
                        pattern = self._rng.choice(self._patterns)
                        client.detect(pattern, deadline_ms=self._deadline_ms)
                except ServiceError as exc:
                    if exc.code == "overloaded":
                        self.rejected += 1
                    elif exc.code == "deadline":
                        self.deadline_exceeded += 1
                    elif exc.code == "shutdown":
                        break
                    else:
                        self.errors += 1
                    continue
                finally:
                    self.requests += 1
                elapsed_ms = (time.perf_counter() - start) * 1e3
                self.latencies["write" if is_write else "read"].append(elapsed_ms)
        except OSError as exc:
            self.failure = exc
        finally:
            client.close()


def run_loadgen(
    host: str,
    port: int,
    patterns: Sequence[Any],
    clients: int = 4,
    duration_s: float = 5.0,
    write_fraction: float = 0.2,
    write_batch: int = 8,
    deadline_ms: float | None = None,
    seed: int = 0,
) -> LoadgenReport:
    """Drive mixed read/write closed-loop traffic; returns the report.

    Raises the first worker's transport failure (a dead server must fail
    the benchmark loudly, not report zero QPS).
    """
    if not patterns:
        raise ValueError("need at least one read pattern")
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError("write_fraction must be within [0, 1]")
    stop = threading.Event()
    workers = [
        _Worker(
            i,
            host,
            port,
            patterns,
            write_fraction,
            write_batch,
            deadline_ms,
            stop,
            seed,
        )
        for i in range(clients)
    ]
    start = time.perf_counter()
    for worker in workers:
        worker.start()
    time.sleep(duration_s)
    stop.set()
    for worker in workers:
        worker.join(timeout=30.0)
    elapsed = time.perf_counter() - start
    for worker in workers:
        if worker.failure is not None:
            raise worker.failure

    latency_ms: dict[str, dict[str, float]] = {}
    total_ok = 0
    for kind in ("read", "write"):
        values = sorted(
            value for worker in workers for value in worker.latencies[kind]
        )
        total_ok += len(values)
        if values:
            latency_ms[kind] = {
                "count": len(values),
                "p50": percentile(values, 0.50),
                "p95": percentile(values, 0.95),
                "p99": percentile(values, 0.99),
                "max": values[-1],
            }
    return LoadgenReport(
        duration_s=elapsed,
        clients=clients,
        requests=sum(w.requests for w in workers),
        errors=sum(w.errors for w in workers),
        rejected=sum(w.rejected for w in workers),
        deadline_exceeded=sum(w.deadline_exceeded for w in workers),
        qps=total_ok / elapsed if elapsed > 0 else 0.0,
        latency_ms=latency_ms,
    )
