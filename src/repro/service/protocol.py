"""Length-prefixed JSON framing for the query service.

Every frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  Requests and responses are JSON objects:

Request::

    {"id": 7, "op": "detect", "pattern": ["a", "b"],   # or "SEQ(a, b)"
     "partition": "", "within": null, "max_matches": null,
     "deadline_ms": 250}
    {"id": 8, "op": "ingest", "partition": "",
     "events": [["trace-1", "login", 12.0], ...]}

Response::

    {"id": 7, "ok": true, "result": [{"trace_id": "t", "timestamps": [1, 2]}]}
    {"id": 7, "ok": false, "code": "deadline", "error": "..."}

Error codes: ``bad_request`` (malformed op/arguments), ``overloaded``
(admission control rejected the request), ``deadline`` (the per-request
deadline expired mid-execution), ``shutdown`` (the server is draining),
``internal`` (unexpected server-side failure).

Frames above :data:`MAX_FRAME_BYTES` are refused -- the peer is protecting
itself against a corrupt or hostile length prefix, so oversized frames
raise :class:`ProtocolError` and the connection is closed.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

#: refuse frames above this size (corrupt length prefix / unbounded batch)
MAX_FRAME_BYTES = 32 * 1024 * 1024

_LENGTH = struct.Struct(">I")

#: machine-readable error codes a response may carry
ERROR_CODES = ("bad_request", "overloaded", "deadline", "shutdown", "internal")


class ProtocolError(Exception):
    """The byte stream violated the framing contract; close the connection."""


def send_frame(sock: socket.socket, payload: dict[str, Any]) -> None:
    """Serialize and send one frame (atomic via ``sendall``)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    sock.sendall(_LENGTH.pack(len(body)) + body)


def recv_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    header = _recv_exact(sock, _LENGTH.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    body = _recv_exact(sock, length, allow_eof=False)
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("frame body must be a JSON object")
    return payload


def _recv_exact(
    sock: socket.socket, count: int, allow_eof: bool
) -> bytes | None:
    """Read exactly ``count`` bytes; EOF mid-frame is always an error."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining}/{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
