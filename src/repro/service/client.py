"""Blocking client for the query service.

One :class:`ServiceClient` wraps one TCP connection; requests on it are
serialized under a lock (the protocol is strict request/response per
connection), so share a client across threads freely or open one per worker
for parallel traffic -- the load generator does the latter.
"""

from __future__ import annotations

import itertools
import socket
import threading
from typing import Any, Sequence

from repro.service.protocol import recv_frame, send_frame


class ServiceError(Exception):
    """A structured error response from the server."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class ServiceClient:
    """Synchronous client; every method raises :class:`ServiceError` on a
    structured failure and ``OSError`` on transport failure."""

    def __init__(
        self, host: str, port: int, timeout: float | None = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._closed = False

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _call(self, op: str, **fields: Any) -> Any:
        request = {"id": next(self._ids), "op": op}
        request.update({k: v for k, v in fields.items() if v is not None})
        with self._lock:
            send_frame(self._sock, request)
            response = recv_frame(self._sock)
        if response is None:
            raise OSError("connection closed by server")
        if not response.get("ok"):
            raise ServiceError(
                response.get("code", "internal"),
                response.get("error", "unknown error"),
            )
        return response.get("result")

    def ping(self) -> str:
        return self._call("ping")

    def detect(
        self,
        pattern: Sequence[str] | str,
        partition: str = "",
        max_matches: int | None = None,
        within: float | None = None,
        deadline_ms: float | None = None,
    ) -> list[dict[str, Any]]:
        return self._call(
            "detect",
            pattern=list(pattern) if not isinstance(pattern, str) else pattern,
            partition=partition,
            max_matches=max_matches,
            within=within,
            deadline_ms=deadline_ms,
        )

    def count(
        self,
        pattern: Sequence[str] | str,
        partition: str = "",
        within: float | None = None,
        deadline_ms: float | None = None,
    ) -> int:
        return self._call(
            "count",
            pattern=list(pattern) if not isinstance(pattern, str) else pattern,
            partition=partition,
            within=within,
            deadline_ms=deadline_ms,
        )

    def contains(
        self,
        pattern: Sequence[str] | str,
        partition: str = "",
        deadline_ms: float | None = None,
    ) -> list[str]:
        return self._call(
            "contains",
            pattern=list(pattern) if not isinstance(pattern, str) else pattern,
            partition=partition,
            deadline_ms=deadline_ms,
        )

    def ingest(
        self,
        events: Sequence[tuple[str, str, float]],
        partition: str = "",
        dedup: bool = False,
    ) -> dict[str, int]:
        """Append events; ``dedup=True`` makes replays idempotent by
        dropping events at or before each trace's indexed tail server-side."""
        return self._call(
            "ingest",
            events=[list(event) for event in events],
            partition=partition,
            dedup=True if dedup else None,
        )

    def stats(self) -> dict[str, Any]:
        return self._call("stats")
