"""Docs lint: dead links and CLI commands that drifted from the parser.

Two classes of documentation rot this catches mechanically:

* **dead relative links** -- every ``[text](target)`` markdown link whose
  target is a repo path must resolve from the linking file's directory;
* **stale CLI examples** -- every ``repro <subcommand>`` invocation inside
  a fenced code block must name a subcommand the real
  :func:`repro.cli.build_parser` knows, so renaming or removing a
  subcommand without sweeping the docs fails CI.

Runs standalone (``python -m repro.bench.docscheck``, exit 1 on findings)
and inside tier-1 via ``tests/test_docs.py``.
"""

from __future__ import annotations

import os
import re
import sys
from typing import Iterable

#: the documentation surface checked, relative to the repo root
DOC_FILES = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "docs/ARCHITECTURE.md",
    "docs/INGEST.md",
    "docs/METRICS.md",
    "docs/OPERATIONS.md",
)

_LINK = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^(```|~~~)")
#: a CLI invocation inside a fenced block: ``repro <sub>`` either via
#: ``python -m repro <sub>`` or as a bare ``repro <sub>`` command (the
#: installed console script), with an optional ``$ `` prompt and env-var
#: assignments in front.  ``python -m repro.bench.runner``-style module
#: invocations carry a dot and are not subcommand calls.
_CLI_CALL = re.compile(
    r"""^\s*(?:\$\s+)?(?:[A-Z_][A-Z0-9_]*=\S+\s+)*
        (?:python(?:3)?\s+-m\s+repro|repro)\s+(?P<sub>[a-z][a-z0-9_-]*)\b""",
    re.VERBOSE,
)


def repo_root() -> str:
    """The repository root (three levels up from this file)."""
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.normpath(os.path.join(here, "..", "..", ".."))


def known_subcommands() -> set[str]:
    """Subcommand names straight from the live argument parser."""
    import argparse

    from repro.cli import build_parser

    for action in build_parser()._actions:
        if isinstance(action, argparse._SubParsersAction):
            return set(action.choices)
    raise RuntimeError("repro parser has no subcommands")  # pragma: no cover


def _fenced_lines(text: str) -> Iterable[tuple[int, str]]:
    """Yield ``(line_number, line)`` for lines inside fenced code blocks."""
    inside = False
    for number, line in enumerate(text.splitlines(), start=1):
        if _FENCE.match(line.strip()):
            inside = not inside
            continue
        if inside:
            yield number, line


def check_links(root: str, doc: str, text: str) -> list[str]:
    """Dead relative markdown links in one document."""
    findings = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = os.path.normpath(
            os.path.join(root, os.path.dirname(doc), path)
        )
        if not os.path.exists(resolved):
            findings.append(f"{doc}: dead link -> {target}")
    return findings


def check_cli_commands(
    doc: str, text: str, subcommands: set[str]
) -> list[str]:
    """Fenced ``repro <sub>`` invocations that name unknown subcommands."""
    findings = []
    for number, line in _fenced_lines(text):
        match = _CLI_CALL.match(line)
        if match and match.group("sub") not in subcommands:
            findings.append(
                f"{doc}:{number}: unknown repro subcommand "
                f"{match.group('sub')!r} in: {line.strip()}"
            )
    return findings


def run_docscheck(root: str | None = None) -> list[str]:
    """All findings across the documented surface (empty means healthy)."""
    root = root or repo_root()
    subcommands = known_subcommands()
    findings: list[str] = []
    for doc in DOC_FILES:
        path = os.path.join(root, doc)
        if not os.path.isfile(path):
            findings.append(f"{doc}: file is missing")
            continue
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        findings.extend(check_links(root, doc, text))
        findings.extend(check_cli_commands(doc, text, subcommands))
    return findings


def main() -> int:
    findings = run_docscheck()
    for finding in findings:
        print(finding)
    if findings:
        print(f"docscheck: {len(findings)} finding(s)")
        return 1
    print(f"docscheck: {len(DOC_FILES)} documents clean")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
