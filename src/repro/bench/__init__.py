"""Benchmark harness: regenerate every table and figure of the paper.

Each experiment in §5 has a function here producing the same rows/series
the paper reports; ``python -m repro.bench.runner`` runs them all (or a
subset) and writes text tables plus CSV files under ``results/``.

The pytest-benchmark suites in ``benchmarks/`` wrap the same workloads for
statistically robust single-operation timings; the runner produces the
paper-shaped summary tables.

Dataset sizes honour ``REPRO_BENCH_SCALE`` (default 1.0 in the library,
scaled down in the shipped benchmark defaults) so the full suite is
laptop-sized; the *shape* of every comparison -- who wins, by what factor,
where trends cross -- is what the reproduction targets, not the absolute
milliseconds of the authors' testbed.
"""

from repro.bench.reporting import ExperimentResult, format_table, write_csv
from repro.bench.workloads import (
    build_index,
    contiguous_patterns,
    prepared_dataset,
    stnm_patterns,
    timed,
)

__all__ = [
    "ExperimentResult",
    "format_table",
    "write_csv",
    "timed",
    "build_index",
    "prepared_dataset",
    "contiguous_patterns",
    "stnm_patterns",
]
