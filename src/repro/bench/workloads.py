"""Shared workload preparation for benchmarks and the experiment runner."""

from __future__ import annotations

import random
import time
from typing import Any, Callable

from repro.core.engine import SequenceIndex
from repro.core.model import EventLog
from repro.core.pattern import Pattern
from repro.core.policies import PairMethod, Policy
from repro.executor import ParallelExecutor
from repro.kvstore import InMemoryStore
from repro.logs.datasets import load_dataset

_DATASET_CACHE: dict[tuple[str, float], EventLog] = {}
_INDEX_CACHE: dict[tuple[str, float, Policy], SequenceIndex] = {}


def timed(fn: Callable[[], Any]) -> tuple[float, Any]:
    """Run ``fn`` once; return (elapsed seconds, return value)."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def prepared_dataset(name: str, scale: float) -> EventLog:
    """Load a registry dataset with process-wide caching."""
    key = (name, scale)
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = load_dataset(name, scale=scale)
    return _DATASET_CACHE[key]


def build_index(
    log: EventLog,
    policy: Policy = Policy.STNM,
    method: PairMethod | None = None,
    executor: ParallelExecutor | None = None,
) -> SequenceIndex:
    """Build a fresh in-memory index over ``log`` (the timed operation)."""
    index = SequenceIndex(
        InMemoryStore(), policy=policy, method=method, executor=executor
    )
    index.update(log)
    return index


def prepared_index(name: str, scale: float, policy: Policy) -> SequenceIndex:
    """Cached index over a registry dataset (for query benchmarks)."""
    key = (name, scale, policy)
    if key not in _INDEX_CACHE:
        _INDEX_CACHE[key] = build_index(prepared_dataset(name, scale), policy)
    return _INDEX_CACHE[key]


def stnm_patterns(
    log: EventLog, length: int, count: int, seed: int = 0
) -> list[list[str]]:
    """Patterns sampled as gapped subsequences of real traces (STNM workload)."""
    rng = random.Random(seed)
    traces = [trace for trace in log if len(trace) >= length]
    if not traces:
        alphabet = sorted(log.activities())
        return [
            [rng.choice(alphabet) for _ in range(length)] for _ in range(count)
        ]
    patterns = []
    for _ in range(count):
        trace = rng.choice(traces)
        positions = sorted(rng.sample(range(len(trace)), length))
        patterns.append([trace.activities[i] for i in positions])
    return patterns


def rare_pair_patterns(
    log: EventLog,
    index: SequenceIndex,
    length: int,
    count: int,
    seed: int = 0,
    pool: int | None = None,
) -> list[list[str]]:
    """STNM patterns of ``length`` containing at least one *rare* pair.

    Samples a pool of gapped-subsequence patterns (so every pattern has
    matches) and keeps the ``count`` whose cheapest consecutive pair has
    the lowest ``Count`` cardinality, preferring patterns whose rare pair
    is *not* the first -- the workload where selectivity-driven join
    reordering pays off most, since naive left-to-right evaluation drags
    a large intermediate chain set up to the rare pair.
    """
    candidates = stnm_patterns(log, length, pool or max(count * 10, 50), seed)

    def rank(pattern: list[str]) -> tuple[int, bool]:
        pairs = list(zip(pattern, pattern[1:]))
        cards = index.tables.get_pair_counts(pairs)
        by_pair = [cards[pair][1] for pair in pairs]
        rarest = min(range(len(by_pair)), key=lambda i: by_pair[i])
        return (by_pair[rarest], rarest == 0)

    candidates.sort(key=rank)
    return candidates[:count]


#: operator kinds cycled by :func:`composite_patterns`
COMPOSITE_KINDS = ("windowed", "alternation", "kleene", "negation")


def composite_patterns(
    log: EventLog,
    count: int,
    seed: int = 0,
    length: int = 4,
    index: SequenceIndex | None = None,
    pool: int | None = None,
) -> list[tuple[str, Pattern]]:
    """Composite-pattern workload: ``(kind, Pattern)`` pairs over real traces.

    Cycles through :data:`COMPOSITE_KINDS`.  Every pattern starts from a
    gapped subsequence of a real trace -- so the positive skeleton is known
    to occur -- then applies one operator per kind:

    * ``windowed`` -- the plain sequence under a ``WITHIN`` clause sized to
      1.5x the sampled occurrence's span (tight enough to cut matches,
      loose enough to keep the sampled one);
    * ``alternation`` -- one middle element widened with a second real
      activity;
    * ``kleene`` -- one middle element suffixed with ``+``;
    * ``negation`` -- a ``!X`` element (random real activity) inserted
      between two positives.

    With an ``index``, skeletons are sampled from a larger ``pool`` and the
    ``count`` whose cheapest consecutive pair has the lowest ``Count`` are
    kept -- the selective workload where prune-then-verify pays off (the
    composite analogue of :func:`rare_pair_patterns`).
    """
    rng = random.Random(seed)
    alphabet = sorted(log.activities())
    traces = [trace for trace in log if len(trace) >= length]
    if traces:
        pool_size = (pool or max(count * 10, 50)) if index is not None else count
        skeletons = []
        for _ in range(pool_size):
            trace = rng.choice(traces)
            positions = sorted(rng.sample(range(len(trace)), length))
            base = [trace.activities[p] for p in positions]
            span = trace.timestamps[positions[-1]] - trace.timestamps[positions[0]]
            skeletons.append((base, span))
        if index is not None:

            def rank(item: tuple[list[str], float]) -> int:
                pairs = list(zip(item[0], item[0][1:]))
                cards = index.tables.get_pair_counts(pairs)
                return min(cards[pair][1] for pair in pairs)

            skeletons.sort(key=rank)
        skeletons = skeletons[:count]
    else:
        skeletons = [
            ([rng.choice(alphabet) for _ in range(length)], float(length))
            for _ in range(count)
        ]
    workload: list[tuple[str, Pattern]] = []
    for i, (base, span) in enumerate(skeletons):
        kind = COMPOSITE_KINDS[i % len(COMPOSITE_KINDS)]
        mid = rng.randrange(1, length - 1) if length > 2 else length - 1
        elements = list(base)
        within = None
        if kind == "windowed":
            within = max(span, 1.0) * 1.5
        elif kind == "alternation":
            others = [a for a in alphabet if a != elements[mid]]
            elements[mid] = f"({elements[mid]}|{rng.choice(others or alphabet)})"
        elif kind == "kleene":
            elements[mid] = f"{elements[mid]}+"
        else:  # negation
            elements.insert(mid, f"!{rng.choice(alphabet)}")
        workload.append((kind, Pattern.of(*elements, within=within)))
    return workload


def contiguous_patterns(
    log: EventLog, length: int, count: int, seed: int = 0
) -> list[list[str]]:
    """Patterns sampled as contiguous windows of real traces (SC workload)."""
    rng = random.Random(seed)
    traces = [trace for trace in log if len(trace) >= length]
    if not traces:
        return stnm_patterns(log, length, count, seed)
    patterns = []
    for _ in range(count):
        trace = rng.choice(traces)
        start = rng.randint(0, len(trace) - length)
        patterns.append(trace.activities[start : start + length])
    return patterns
