"""Result formatting and persistence for the experiment runner."""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass, field
from typing import Any


@dataclass
class ExperimentResult:
    """One experiment's output: a header plus rows of cells."""

    experiment: str
    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(self.columns)}"
            )
        self.rows.append(list(cells))

    def note(self, text: str) -> None:
        self.notes.append(text)


def _render_cell(cell: Any) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.1f}"
        if abs(cell) >= 0.01:
            return f"{cell:.3f}"
        return f"{cell:.5f}"
    return str(cell)


def format_table(result: ExperimentResult) -> str:
    """Fixed-width text rendering in the paper's table style."""
    rendered = [[_render_cell(cell) for cell in row] for row in result.rows]
    widths = [len(col) for col in result.columns]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [f"== {result.experiment}: {result.title} =="]
    lines.append(
        "  ".join(col.ljust(widths[i]) for i, col in enumerate(result.columns))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def write_csv(result: ExperimentResult, directory: str) -> str:
    """Persist one result as ``<directory>/<experiment>.csv``; returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{result.experiment}.csv")
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(result.columns)
        for row in result.rows:
            writer.writerow(row)
    return path


def write_profile(name: str, tracer: Any, directory: str) -> str:
    """Persist a tracer's profile as ``<directory>/<name>.profile.txt``.

    The file holds the per-span-name aggregate table followed by the head
    of the recorded span tree -- enough to see where an experiment's time
    went without storing every span of a long run.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.profile.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(tracer.format_summary())
        fh.write("\n")
        tree = tracer.format_tree(max_lines=200)
        if tree:
            fh.write("\nspan tree (first 200 spans):\n")
            fh.write(tree)
            fh.write("\n")
    return path
