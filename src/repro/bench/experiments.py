"""One function per table/figure of the paper's evaluation (§5).

Every function returns an :class:`~repro.bench.reporting.ExperimentResult`
whose rows mirror the paper's presentation.  All functions take ``scale``
(fraction of the paper's dataset sizes) so the whole suite can run at
laptop size; relative comparisons -- the reproduction target -- survive
scaling.
"""

from __future__ import annotations

import statistics
from typing import Callable, Sequence

from repro.baselines.elastic import ElasticIndex
from repro.baselines.sase import SaseEngine
from repro.baselines.suffix import SuffixArrayMatcher
from repro.bench.reporting import ExperimentResult
from repro.bench.workloads import (
    build_index,
    contiguous_patterns,
    prepared_dataset,
    prepared_index,
    stnm_patterns,
    timed,
)
from repro.core.pairs import create_pairs
from repro.core.policies import PairMethod, Policy
from repro.executor import ParallelExecutor
from repro.logs.datasets import DATASETS
from repro.logs.generator import RandomLogConfig, generate_random_log
from repro.logs.stats import profile_log

#: dataset order used by Tables 5/6/7/8
TABLE_DATASETS: tuple[str, ...] = DATASETS

STNM_METHODS = (PairMethod.INDEXING, PairMethod.PARSING, PairMethod.STATE)


def _mean_time(fn: Callable[[], object], repeats: int) -> float:
    """Average wall time of ``fn`` over ``repeats`` runs (paper: 5 runs)."""
    times = []
    for _ in range(max(1, repeats)):
        elapsed, _ = timed(fn)
        times.append(elapsed)
    return statistics.fmean(times)


def _pair_creation_time(log, method: PairMethod) -> float:
    """Time to create all event pairs of ``log`` with ``method`` (one run)."""
    views = [(trace.activities, trace.timestamps) for trace in log]
    elapsed, _ = timed(
        lambda: [create_pairs(acts, stamps, method) for acts, stamps in views]
    )
    return elapsed


# --- Table 4 / Figure 2 ---------------------------------------------------------


def exp_table4(scale: float, datasets: Sequence[str] = TABLE_DATASETS) -> ExperimentResult:
    """Dataset inventory: traces and distinct activities per log."""
    result = ExperimentResult(
        "table4",
        "Number of traces and distinct activities per event log",
        ["log file", "traces", "activities", "events"],
    )
    for name in datasets:
        profile = profile_log(prepared_dataset(name, scale))
        result.add(name, profile.num_traces, profile.num_activities, profile.num_events)
    result.note(f"scale={scale} of the paper's dataset sizes")
    return result


def exp_fig2(scale: float, datasets: Sequence[str] = TABLE_DATASETS) -> ExperimentResult:
    """Events-per-trace and activities-per-trace distribution summaries."""
    result = ExperimentResult(
        "fig2",
        "Distributions of events and unique activities per trace",
        [
            "log file",
            "events/trace min",
            "events/trace mean",
            "events/trace max",
            "acts/trace min",
            "acts/trace mean",
            "acts/trace max",
        ],
    )
    for name in datasets:
        profile = profile_log(prepared_dataset(name, scale))
        events = profile.events_per_trace
        acts = profile.activities_per_trace
        result.add(
            name,
            events.minimum,
            events.mean,
            events.maximum,
            acts.minimum,
            acts.mean,
            acts.maximum,
        )
    return result


# --- Table 5: STNM pair-indexing flavors on process-like logs ----------------------


def exp_table5(
    scale: float,
    datasets: Sequence[str] = TABLE_DATASETS,
    repeats: int = 1,
) -> ExperimentResult:
    """Index build time of the three STNM flavors per dataset."""
    result = ExperimentResult(
        "table5",
        "Execution times of different STNM indexing methods (seconds)",
        ["log file", "indexing", "parsing", "state"],
    )
    for name in datasets:
        log = prepared_dataset(name, scale)
        times = [
            _mean_time(lambda m=method: build_index(log, Policy.STNM, m), repeats)
            for method in STNM_METHODS
        ]
        result.add(name, *times)
    return result


# --- Figure 3: flavors on large random logs (three sweeps) --------------------------


def exp_fig3(scale: float, repeats: int = 1) -> ExperimentResult:
    """Pair-creation time of the three flavors across the paper's sweeps.

    Sweep axes follow §5.2: events/trace at 1000 traces x 500 activities;
    traces at <=1000 events x 100 activities; activities at 500 traces x
    <=500 events.  Trace counts scale with ``scale``.
    """
    result = ExperimentResult(
        "fig3",
        "STNM pair creation on random logs (seconds)",
        ["sweep", "x", "indexing", "parsing", "state"],
    )

    def run(sweep: str, x_value: int, config: RandomLogConfig) -> None:
        log = generate_random_log(config)
        times = [
            _mean_time(lambda m=method: _pair_creation_time(log, m), repeats)
            for method in STNM_METHODS
        ]
        result.add(sweep, x_value, *times)

    traces_base = max(5, round(1000 * scale))
    for max_events in (100, 500, 1000, 2000, 4000):
        run(
            "events/trace",
            max_events,
            RandomLogConfig(
                num_traces=traces_base,
                max_events_per_trace=max_events,
                num_activities=500,
                seed=31,
            ),
        )
    for traces in (100, 500, 1000, 2500, 5000):
        run(
            "traces",
            traces,
            RandomLogConfig(
                num_traces=max(5, round(traces * scale)),
                max_events_per_trace=1000,
                num_activities=100,
                seed=32,
            ),
        )
    acts_traces = max(5, round(500 * scale))
    for acts in (4, 20, 100, 500, 1000, 2000):
        run(
            "activities",
            acts,
            RandomLogConfig(
                num_traces=acts_traces,
                max_events_per_trace=500,
                num_activities=acts,
                seed=33,
            ),
        )
    result.note("x axes keep the paper's values; trace counts scaled by scale")
    return result


# --- Table 6: pre-processing comparison -----------------------------------------------


def exp_table6(
    scale: float,
    datasets: Sequence[str] = TABLE_DATASETS,
    repeats: int = 1,
    workers: int | None = None,
) -> ExperimentResult:
    """Index-construction time: [19], Strict, Indexing (serial/parallel), ES."""
    result = ExperimentResult(
        "table6",
        "Pre-processing time comparison (seconds)",
        [
            "log file",
            "[19] suffix",
            "strict (1 thread)",
            "strict",
            "indexing (1 thread)",
            "indexing",
            "elasticsearch",
        ],
    )
    parallel = ParallelExecutor(backend="process", max_workers=workers)
    serial = ParallelExecutor.serial()
    for name in datasets:
        log = prepared_dataset(name, scale)
        suffix_time = _mean_time(lambda: SuffixArrayMatcher(log), repeats)
        strict_serial = _mean_time(
            lambda: build_index(log, Policy.SC, PairMethod.STRICT, serial), repeats
        )
        strict_parallel = _mean_time(
            lambda: build_index(log, Policy.SC, PairMethod.STRICT, parallel), repeats
        )
        indexing_serial = _mean_time(
            lambda: build_index(log, Policy.STNM, PairMethod.INDEXING, serial),
            repeats,
        )
        indexing_parallel = _mean_time(
            lambda: build_index(log, Policy.STNM, PairMethod.INDEXING, parallel),
            repeats,
        )
        elastic_time = _mean_time(lambda: ElasticIndex.from_log(log), repeats)
        result.add(
            name,
            suffix_time,
            strict_serial,
            strict_parallel,
            indexing_serial,
            indexing_parallel,
            elastic_time,
        )
    return result


# --- Table 7 / Figure 4: SC query response ----------------------------------------------


def exp_table7(
    scale: float,
    datasets: Sequence[str] = TABLE_DATASETS,
    patterns_per_length: int = 20,
) -> ExperimentResult:
    """SC detection: [19] vs our method at pattern lengths 2 and 10."""
    result = ExperimentResult(
        "table7",
        "SC query response times (seconds per query)",
        ["log file", "[19] suffix", "ours (len 2)", "ours (len 10)"],
    )
    for name in datasets:
        log = prepared_dataset(name, scale)
        matcher = SuffixArrayMatcher(log)
        index = prepared_index(name, scale, Policy.SC)
        short = contiguous_patterns(log, 2, patterns_per_length, seed=7)
        long = contiguous_patterns(log, 10, patterns_per_length, seed=8)
        suffix_time, _ = timed(lambda: [matcher.detect(p) for p in short + long])
        ours_short, _ = timed(lambda: [index.detect(p) for p in short])
        ours_long, _ = timed(lambda: [index.detect(p) for p in long])
        result.add(
            name,
            suffix_time / max(1, len(short) + len(long)),
            ours_short / max(1, len(short)),
            ours_long / max(1, len(long)),
        )
    return result


def exp_fig4(
    scale: float,
    dataset: str = "max_10000",
    lengths: Sequence[int] = (2, 3, 4, 5, 6, 7, 8, 9, 10),
    patterns_per_length: int = 20,
) -> ExperimentResult:
    """Our detection time as a function of the query pattern length."""
    result = ExperimentResult(
        "fig4",
        f"Response time vs pattern length ({dataset})",
        ["pattern length", "seconds per query"],
    )
    log = prepared_dataset(dataset, scale)
    index = prepared_index(dataset, scale, Policy.STNM)
    for length in lengths:
        patterns = stnm_patterns(log, length, patterns_per_length, seed=length)
        elapsed, _ = timed(lambda: [index.detect(p) for p in patterns])
        result.add(length, elapsed / max(1, len(patterns)))
    return result


# --- Table 8: STNM query response vs Elasticsearch and SASE --------------------------------


def exp_table8(
    scale: float,
    datasets: Sequence[str] = TABLE_DATASETS,
    lengths: Sequence[int] = (2, 5, 10),
    patterns_per_config: int = 20,
) -> ExperimentResult:
    """STNM detection: Elasticsearch-like vs SASE vs our method."""
    result = ExperimentResult(
        "table8",
        "STNM query response times (seconds per query)",
        ["pattern length", "log file", "elasticsearch", "sase", "ours"],
    )
    for length in lengths:
        for name in datasets:
            log = prepared_dataset(name, scale)
            elastic = ElasticIndex.from_log(log)
            sase = SaseEngine(log)
            index = prepared_index(name, scale, Policy.STNM)
            patterns = stnm_patterns(log, length, patterns_per_config, seed=length)
            es_time, _ = timed(lambda: [elastic.span_search(p) for p in patterns])
            sase_time, _ = timed(lambda: [sase.query(p) for p in patterns])
            ours_time, _ = timed(lambda: [index.detect(p) for p in patterns])
            count = max(1, len(patterns))
            result.add(length, name, es_time / count, sase_time / count, ours_time / count)
    return result


# --- Figures 5-7: pattern continuation --------------------------------------------------------


def exp_fig5(
    scale: float,
    dataset: str = "max_10000",
    lengths: Sequence[int] = (1, 2, 3, 4, 5, 6),
    patterns_per_length: int = 5,
) -> ExperimentResult:
    """Accurate vs Fast continuation response time vs pattern length."""
    result = ExperimentResult(
        "fig5",
        f"Continuation response time vs pattern length ({dataset})",
        ["pattern length", "accurate", "fast"],
    )
    log = prepared_dataset(dataset, scale)
    index = prepared_index(dataset, scale, Policy.STNM)
    for length in lengths:
        patterns = stnm_patterns(log, length, patterns_per_length, seed=50 + length)
        accurate, _ = timed(
            lambda: [index.continuations(p, mode="accurate") for p in patterns]
        )
        fast, _ = timed(lambda: [index.continuations(p, mode="fast") for p in patterns])
        count = max(1, len(patterns))
        result.add(length, accurate / count, fast / count)
    return result


def _fig67_setup(scale: float, dataset: str, pattern_length: int = 4):
    log = prepared_dataset(dataset, scale)
    index = prepared_index(dataset, scale, Policy.STNM)
    pattern = stnm_patterns(log, pattern_length, 1, seed=67)[0]
    return index, pattern


def exp_fig6(
    scale: float,
    dataset: str = "max_10000",
    top_ks: Sequence[int] = (1, 2, 4, 6, 8, 10, 12),
) -> ExperimentResult:
    """Hybrid continuation response time vs topK (4-event pattern)."""
    result = ExperimentResult(
        "fig6",
        f"Continuation response time vs topK ({dataset})",
        ["topK", "hybrid", "accurate", "fast"],
    )
    index, pattern = _fig67_setup(scale, dataset)
    accurate, _ = timed(lambda: index.continuations(pattern, mode="accurate"))
    fast, _ = timed(lambda: index.continuations(pattern, mode="fast"))
    for top_k in top_ks:
        hybrid, _ = timed(
            lambda: index.continuations(pattern, mode="hybrid", top_k=top_k)
        )
        result.add(top_k, hybrid, accurate, fast)
    result.note(f"pattern: {pattern}")
    return result


def exp_fig7(
    scale: float,
    dataset: str = "max_10000",
    top_ks: Sequence[int] = (1, 2, 4, 8, 12, 16, 24, 32, 48),
) -> ExperimentResult:
    """Hybrid continuation accuracy vs topK (ground truth = Accurate)."""
    result = ExperimentResult(
        "fig7",
        f"Continuation accuracy vs topK ({dataset})",
        ["topK", "accuracy"],
    )
    index, pattern = _fig67_setup(scale, dataset)
    reference = index.continuations(pattern, mode="accurate")
    for top_k in top_ks:
        hybrid = index.continuations(pattern, mode="hybrid", top_k=top_k)
        accuracy = index.explorer.ranking_accuracy(reference, hybrid)
        result.add(top_k, accuracy)
    result.note(f"pattern: {pattern}")
    return result


def exp_ablation_cache(
    scale: float, dataset: str = "max_1000", reads: int = 2000
) -> ExperimentResult:
    """Ablation: serving-layer caches on/off (not a paper experiment).

    Measures point-read latency through the LSM block cache and repeated
    detect() latency through the engine's query-result cache, each with the
    cache enabled vs disabled, on an indexed registry dataset.
    """
    import shutil
    import tempfile

    from repro.core.engine import SequenceIndex
    from repro.kvstore import LSMStore

    result = ExperimentResult(
        "ablation_cache",
        f"Serving-layer cache ablation ({dataset})",
        ["configuration", "operation", "ops", "total time (s)", "us/op"],
    )
    log = prepared_dataset(dataset, scale)
    for label, cache_bytes in (("block cache on", 8 * 1024 * 1024), ("block cache off", 0)):
        workdir = tempfile.mkdtemp(prefix="repro-cache-ablation-")
        try:
            store = LSMStore(
                workdir, memtable_flush_bytes=64 * 1024, block_cache_bytes=cache_bytes
            )
            index = SequenceIndex(store, query_cache_size=0)
            index.update(log)
            store.flush()
            trace_ids = index.trace_ids()
            probes = [trace_ids[i % len(trace_ids)] for i in range(reads)]
            # Warm-up pass so "cache on" measures hits, not first-touch misses.
            for trace_id in probes:
                store.get("seq", trace_id)
            elapsed, _ = timed(
                lambda: [store.get("seq", trace_id) for trace_id in probes]
            )
            result.add(label, "point read", reads, elapsed, elapsed / reads * 1e6)
            index.close()
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
    for label, cache_size in (("query cache on", 128), ("query cache off", 0)):
        index = SequenceIndex(query_cache_size=cache_size)
        index.update(log)
        pattern = stnm_patterns(log, length=3, count=1)[0]
        index.detect(pattern)  # warm-up / cache fill
        repeats = max(1, reads // 40)
        elapsed, _ = timed(lambda: [index.detect(pattern) for _ in range(repeats)])
        result.add(label, "repeat detect", repeats, elapsed, elapsed / repeats * 1e6)
        index.close()
    result.note("block cache: LSM data blocks; query cache: SequenceIndex results")
    return result


def exp_ablation_planner(
    scale: float,
    dataset: str = "max_10000",
    length: int = 10,
    patterns_per_config: int = 15,
    repeats: int = 3,
) -> ExperimentResult:
    """Ablation: query planner x batched reads x postings cache.

    Not a paper experiment.  Runs the Table 8 STNM query workload
    (length-10 patterns containing at least one rare pair) against an
    LSM-backed index under every combination of the three read-path
    optimisations; the all-off configuration is the naive left-to-right
    loop-of-gets baseline.  Also writes a ``BENCH_query_planner.json``
    perf-trajectory snapshot next to the CSV's directory.
    """
    import json
    import shutil
    import tempfile

    from repro.bench.workloads import rare_pair_patterns
    from repro.core.engine import SequenceIndex
    from repro.kvstore import LSMStore

    result = ExperimentResult(
        "ablation_planner",
        f"Planner/multi_get/postings-cache ablation ({dataset}, length {length})",
        ["planner", "batched reads", "postings cache", "s per query", "speedup"],
    )
    log = prepared_dataset(dataset, scale)
    workdir = tempfile.mkdtemp(prefix="repro-planner-ablation-")
    snapshot_configs = []
    try:
        store = LSMStore(workdir, memtable_flush_bytes=256 * 1024)
        base_index = SequenceIndex(store, query_cache_size=0)
        base_index.update(log)
        store.flush()
        patterns = rare_pair_patterns(
            log, base_index, length=length, count=patterns_per_config
        )
        queries = max(1, len(patterns) * repeats)
        timings: list[tuple[tuple[bool, bool, bool], float]] = []
        for planner in (False, True):
            for batched in (False, True):
                for cache in (False, True):
                    index = SequenceIndex(
                        store,
                        query_cache_size=0,
                        postings_cache_size=64 if cache else 0,
                        planner=planner,
                        batched_reads=batched,
                    )
                    for pattern in patterns:  # warm-up (block/postings caches)
                        index.detect(pattern)
                    elapsed, _ = timed(
                        lambda: [
                            index.detect(p)
                            for _ in range(repeats)
                            for p in patterns
                        ]
                    )
                    timings.append(((planner, batched, cache), elapsed / queries))
        baseline = timings[0][1]  # planner off, batched off, cache off
        for (planner, batched, cache), per_query in timings:
            result.add(
                "on" if planner else "off",
                "on" if batched else "off",
                "on" if cache else "off",
                per_query,
                baseline / per_query if per_query else float("inf"),
            )
            snapshot_configs.append(
                {
                    "planner": planner,
                    "batched_reads": batched,
                    "postings_cache": cache,
                    "seconds_per_query": per_query,
                }
            )
        store.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    best = min(snapshot_configs, key=lambda c: c["seconds_per_query"])
    snapshot = {
        "experiment": "query_planner",
        "dataset": dataset,
        "scale": scale,
        "pattern_length": length,
        "patterns": patterns_per_config,
        "repeats": repeats,
        "baseline_seconds_per_query": baseline,
        "best_seconds_per_query": best["seconds_per_query"],
        "speedup": baseline / best["seconds_per_query"]
        if best["seconds_per_query"]
        else float("inf"),
        "configs": snapshot_configs,
    }
    with open("BENCH_query_planner.json", "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2)
        fh.write("\n")
    result.note("baseline: planner off, loop-of-gets, no postings cache")
    result.note("snapshot: BENCH_query_planner.json")
    return result


def exp_pattern_language(
    scale: float,
    dataset: str = "max_10000",
    patterns_per_kind: int = 8,
    length: int = 4,
    repeats: int = 3,
) -> ExperimentResult:
    """Composite patterns: indexed prune-then-verify vs the SASE oracle.

    Not a paper experiment.  Runs the composite-pattern workload --
    windowed / alternation / kleene / negation variants of gapped
    subsequences of real traces -- through the pair-index
    prune-then-verify path and through the SASE NFA full scan that
    serves as its differential oracle.  Every match set is asserted
    byte-identical between the two engines before timing, so the
    speedup column only ever compares agreeing implementations.  Also
    writes a ``BENCH_pattern_language.json`` perf-trajectory snapshot.
    """
    import json
    import shutil
    import tempfile

    from repro.bench.workloads import COMPOSITE_KINDS, composite_patterns
    from repro.core.engine import SequenceIndex
    from repro.kvstore import LSMStore

    result = ExperimentResult(
        "pattern_language",
        f"Composite patterns: indexed vs SASE oracle ({dataset}, "
        f"{length} positives)",
        ["kind", "patterns", "sase s/query", "indexed s/query", "speedup"],
    )
    log = prepared_dataset(dataset, scale)
    workdir = tempfile.mkdtemp(prefix="repro-pattern-language-")
    snapshot_kinds = []
    try:
        store = LSMStore(workdir, memtable_flush_bytes=256 * 1024)
        index = SequenceIndex(store, policy=Policy.STNM, query_cache_size=0)
        index.update(log)
        store.flush()
        workload = composite_patterns(
            log,
            count=patterns_per_kind * len(COMPOSITE_KINDS),
            length=length,
            index=index,
        )
        oracle = SaseEngine(log)
        for kind, pattern in workload:  # verification doubles as warm-up
            indexed = {(m.trace_id, m.timestamps) for m in index.detect(pattern)}
            expected = {(m.trace_id, m.timestamps) for m in oracle.query(pattern)}
            if indexed != expected:  # pragma: no cover - differential guard
                raise AssertionError(
                    f"engines diverge on {pattern}: indexed-only "
                    f"{sorted(indexed - expected)}, oracle-only "
                    f"{sorted(expected - indexed)}"
                )
        total_sase = total_indexed = 0.0
        total_queries = 0
        for kind in COMPOSITE_KINDS:
            patterns = [p for k, p in workload if k == kind]
            queries = max(1, len(patterns) * repeats)
            sase_s, _ = timed(
                lambda: [
                    oracle.query(p) for _ in range(repeats) for p in patterns
                ]
            )
            indexed_s, _ = timed(
                lambda: [
                    index.detect(p) for _ in range(repeats) for p in patterns
                ]
            )
            total_sase += sase_s
            total_indexed += indexed_s
            total_queries += queries
            result.add(
                kind,
                len(patterns),
                sase_s / queries,
                indexed_s / queries,
                sase_s / indexed_s if indexed_s else float("inf"),
            )
            snapshot_kinds.append(
                {
                    "kind": kind,
                    "patterns": len(patterns),
                    "sase_seconds_per_query": sase_s / queries,
                    "indexed_seconds_per_query": indexed_s / queries,
                    "speedup": sase_s / indexed_s if indexed_s else float("inf"),
                }
            )
        result.add(
            "all",
            len(workload),
            total_sase / total_queries,
            total_indexed / total_queries,
            total_sase / total_indexed if total_indexed else float("inf"),
        )
        store.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    snapshot = {
        "experiment": "pattern_language",
        "dataset": dataset,
        "scale": scale,
        "positive_elements": length,
        "patterns_per_kind": patterns_per_kind,
        "repeats": repeats,
        "sase_seconds_per_query": total_sase / total_queries,
        "indexed_seconds_per_query": total_indexed / total_queries,
        "speedup": total_sase / total_indexed if total_indexed else float("inf"),
        "kinds": snapshot_kinds,
    }
    with open("BENCH_pattern_language.json", "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2)
        fh.write("\n")
    result.note("every match set verified identical to the SASE oracle")
    result.note("snapshot: BENCH_pattern_language.json")
    return result


def exp_postings_compression(
    scale: float,
    dataset: str = "max_10000",
    length: int = 10,
    patterns_per_config: int = 15,
    repeats: int = 3,
    point_reads: int = 2000,
) -> ExperimentResult:
    """Ablation: postings codec x block compression x mmap reads.

    Not a paper experiment.  Builds the ``dataset`` index once per storage
    configuration -- postings delta/varint codec on/off, SSTable block
    compression none/zlib, ``mmap`` reads on/off -- and measures bytes on
    disk, postings decode throughput (full scan-and-splice of the Index
    partitions), the Table 8 rare-pair query latency on the best read
    path, and warm-cache point reads (block cache disabled, so mmap and
    pread each serve every block physically).  Also writes a
    ``BENCH_postings_compression.json`` perf-trajectory snapshot.
    """
    import json
    import os
    import shutil
    import tempfile

    from repro.bench.workloads import rare_pair_patterns
    from repro.core.engine import SequenceIndex
    from repro.core.postings import decode_index_value
    from repro.kvstore import LSMStore

    result = ExperimentResult(
        "postings_compression",
        f"Postings-codec/block-compression/mmap ablation ({dataset}, "
        f"length {length})",
        [
            "postings codec",
            "compression",
            "mmap",
            "disk bytes",
            "ratio",
            "decode MB/s",
            "s per query",
            "point read us",
        ],
    )
    log = prepared_dataset(dataset, scale)
    grid = [
        (codec, compression, use_mmap)
        for codec in (False, True)
        for compression in (None, "zlib")
        for use_mmap in (False, True)
    ]
    # Build every configuration first, then interleave the measurement
    # rounds across configurations (taking the per-config minimum), so
    # machine drift over the run hits all configurations alike instead
    # of biasing whichever happened to run last.
    built = []
    try:
        for codec, compression, use_mmap in grid:
            workdir = tempfile.mkdtemp(prefix="repro-postings-compression-")
            store = LSMStore(
                workdir,
                memtable_flush_bytes=256 * 1024,
                compression=compression,
                mmap=use_mmap,
            )
            index = SequenceIndex(
                store, query_cache_size=0, postings_codec=codec
            )
            index.update(log)
            store.flush()
            patterns = rare_pair_patterns(
                log, index, length=length, count=patterns_per_config
            )
            built.append(
                {
                    "codec": codec,
                    "compression": compression,
                    "mmap": use_mmap,
                    "workdir": workdir,
                    "store": store,
                    "index": index,
                    "patterns": patterns,
                    "stats": store.storage_stats(),
                    "decode_s": float("inf"),
                    "query_s": float("inf"),
                    "point_s": float("inf"),
                }
            )

        def decode_all(store):
            tables = [
                t for t in store.list_tables() if t.split(":")[0] == "index"
            ]
            entries = 0
            for table in tables:
                for _, value in store.scan(table):
                    entries += len(decode_index_value(value))
            return entries

        for cfg in built:  # warm-up: block cache / page cache / postings LRU
            cfg["entries"] = decode_all(cfg["store"])
            for pattern in cfg["patterns"]:
                cfg["index"].detect(pattern)
        for _ in range(max(1, repeats)):
            for cfg in built:
                elapsed, _ = timed(lambda s=cfg["store"]: decode_all(s))
                cfg["decode_s"] = min(cfg["decode_s"], elapsed)
            for cfg in built:
                elapsed, _ = timed(
                    lambda c=cfg: [c["index"].detect(p) for p in c["patterns"]]
                )
                cfg["query_s"] = min(cfg["query_s"], elapsed)

        # Warm-cache point reads with the block cache off: every get
        # physically loads its block, so this isolates mmap vs pread.
        for cfg in built:
            trace_ids = cfg["index"].trace_ids()
            cfg["probes"] = [
                trace_ids[i % len(trace_ids)] for i in range(point_reads)
            ]
            cfg["index"].close()
            cfg["reopened"] = LSMStore(
                cfg["workdir"], block_cache_bytes=0, mmap=cfg["mmap"]
            )
            for trace_id in cfg["probes"]:  # warm the page cache
                cfg["reopened"].get("seq", trace_id)
        for _ in range(5):  # min-of-5: point reads are noise-sensitive
            for cfg in built:
                elapsed, _ = timed(
                    lambda c=cfg: [
                        c["reopened"].get("seq", t) for t in c["probes"]
                    ]
                )
                cfg["point_s"] = min(cfg["point_s"], elapsed)
        for cfg in built:
            cfg["reopened"].close()
    finally:
        for cfg in built:
            shutil.rmtree(cfg["workdir"], ignore_errors=True)

    configs = []
    for cfg in built:
        stats = cfg["stats"]
        disk_bytes = stats["file_bytes"]
        decode_mb_s = (
            stats["data_bytes"] / cfg["decode_s"] / 1e6 if cfg["decode_s"] else 0.0
        )
        per_query = cfg["query_s"] / max(1, len(cfg["patterns"]))
        point_us = cfg["point_s"] / max(1, point_reads) * 1e6
        result.add(
            "on" if cfg["codec"] else "off",
            cfg["compression"] or "none",
            "on" if cfg["mmap"] else "off",
            disk_bytes,
            stats["compression_ratio"],
            decode_mb_s,
            per_query,
            point_us,
        )
        configs.append(
            {
                "postings_codec": cfg["codec"],
                "compression": cfg["compression"] or "none",
                "mmap": cfg["mmap"],
                "bytes_on_disk": disk_bytes,
                "compression_ratio": stats["compression_ratio"],
                "index_entries": cfg["entries"],
                "decode_mb_per_s": decode_mb_s,
                "decode_entries_per_s": cfg["entries"] / cfg["decode_s"]
                if cfg["decode_s"]
                else 0.0,
                "seconds_per_query": per_query,
                "point_read_us": point_us,
            }
        )

    def _pick(codec, compression, use_mmap):
        for cfg in configs:
            if (
                cfg["postings_codec"] is codec
                and cfg["compression"] == compression
                and cfg["mmap"] is use_mmap
            ):
                return cfg
        raise KeyError((codec, compression, use_mmap))

    baseline = _pick(False, "none", False)
    best_bytes = min(configs, key=lambda c: c["bytes_on_disk"])
    packed = _pick(True, "zlib", False)
    # mmap vs pread compared on uncompressed files: with zlib every
    # physical load decompresses, which dwarfs the syscall difference.
    mmap_on = _pick(True, "none", True)
    pread = _pick(True, "none", False)
    snapshot = {
        "experiment": "postings_compression",
        "dataset": dataset,
        "scale": scale,
        "pattern_length": length,
        "patterns": patterns_per_config,
        "repeats": repeats,
        "point_reads": point_reads,
        "baseline_bytes_on_disk": baseline["bytes_on_disk"],
        "best_bytes_on_disk": best_bytes["bytes_on_disk"],
        "bytes_reduction": baseline["bytes_on_disk"] / best_bytes["bytes_on_disk"]
        if best_bytes["bytes_on_disk"]
        else float("inf"),
        "baseline_decode_entries_per_s": baseline["decode_entries_per_s"],
        "packed_decode_entries_per_s": packed["decode_entries_per_s"],
        "decode_speedup": packed["decode_entries_per_s"]
        / baseline["decode_entries_per_s"]
        if baseline["decode_entries_per_s"]
        else float("inf"),
        "baseline_seconds_per_query": baseline["seconds_per_query"],
        "packed_seconds_per_query": packed["seconds_per_query"],
        "mmap_point_read_us": mmap_on["point_read_us"],
        "pread_point_read_us": pread["point_read_us"],
        "configs": configs,
    }
    if os.path.exists("BENCH_query_planner.json"):
        with open("BENCH_query_planner.json", encoding="utf-8") as fh:
            planner = json.load(fh)
        reference = planner.get("best_seconds_per_query")
        if reference:
            snapshot["planner_best_seconds_per_query"] = reference
            snapshot["latency_vs_planner_best"] = (
                packed["seconds_per_query"] / reference
            )
    with open("BENCH_postings_compression.json", "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2)
        fh.write("\n")
    result.note("baseline: codec off, no compression, pread")
    result.note("point reads: block cache off, page cache warm")
    result.note("snapshot: BENCH_postings_compression.json")
    return result


def exp_sharded_service(
    scale: float,
    dataset: str = "max_10000",
    length: int = 10,
    num_patterns: int = 8,
    clients: int = 8,
    duration_s: float = 4.0,
    write_fraction: float = 0.2,
) -> ExperimentResult:
    """Sharded scatter-gather service vs the single-store engine.

    Not a paper experiment.  Indexes the Table 8 dataset into a
    single-store engine and into 1/2/4-shard sharded stores, serves each
    behind :class:`~repro.service.server.SequenceService`, and drives the
    same closed-loop mixed read/write workload (Table 8 rare-pair
    length-10 patterns, ``write_fraction`` ingest batches) against every
    configuration.  Before any load runs, each sharded engine's match
    sets are asserted byte-identical to the single-store engine's.
    Writes a ``BENCH_sharded_service.json`` perf-trajectory snapshot with
    p50/p99 latency and QPS per configuration.

    The throughput win is a cache-retention story: every ingest bumps the
    single-store engine's one write generation, evicting every warm query
    in the process; on N shards the same ingest touches one shard, so the
    other N-1 keep serving cached chains.
    """
    import json
    import shutil
    import tempfile

    from repro.bench.workloads import rare_pair_patterns
    from repro.core.engine import SequenceIndex
    from repro.kvstore import LSMStore
    from repro.service import SequenceService, run_loadgen
    from repro.shard import ShardedSequenceIndex

    result = ExperimentResult(
        "sharded_service",
        f"Sharded service under mixed read/write ({dataset}, "
        f"{clients} clients, {write_fraction:.0%} writes)",
        [
            "engine",
            "shards",
            "qps",
            "read p50 ms",
            "read p99 ms",
            "write p50 ms",
            "write p99 ms",
            "rejected",
        ],
    )
    log = prepared_dataset(dataset, scale)
    workdir = tempfile.mkdtemp(prefix="repro-sharded-service-")
    configs: list[dict] = []
    try:

        def store_factory(path: str) -> LSMStore:
            return LSMStore(path, memtable_flush_bytes=256 * 1024)

        def run_config(name: str, engine, num_shards: int, reference):
            """Serve ``engine``, assert correctness, run the load, record."""
            if reference is not None:
                for pattern, expected in reference:
                    got = [
                        (m.trace_id, m.timestamps)
                        for m in engine.detect(pattern)
                    ]
                    assert got == expected, (
                        f"sharded match set diverged on {pattern} "
                        f"({num_shards} shards)"
                    )
            service = SequenceService(engine, port=0, max_inflight=clients * 2)
            service.start()
            host, port = service.address
            try:
                report = run_loadgen(
                    host,
                    port,
                    patterns,
                    clients=clients,
                    duration_s=duration_s,
                    write_fraction=write_fraction,
                    seed=0,
                )
            finally:
                service.shutdown()
            read = report.latency_ms.get("read", {})
            write = report.latency_ms.get("write", {})
            result.add(
                name,
                num_shards,
                report.qps,
                read.get("p50", 0.0),
                read.get("p99", 0.0),
                write.get("p50", 0.0),
                write.get("p99", 0.0),
                report.rejected,
            )
            configs.append(
                {
                    "engine": name,
                    "num_shards": num_shards,
                    "qps": report.qps,
                    "requests": report.requests,
                    "rejected": report.rejected,
                    "deadline_exceeded": report.deadline_exceeded,
                    "errors": report.errors,
                    "latency_ms": report.latency_ms,
                    "matches_identical": reference is not None,
                }
            )

        # -- single-store baseline (also the correctness reference) ---------
        single = SequenceIndex(store_factory(f"{workdir}/single"))
        single.update(log)
        patterns = rare_pair_patterns(log, single, length, num_patterns)
        reference = [
            (
                pattern,
                [
                    (m.trace_id, m.timestamps)
                    for m in single.detect(pattern)
                ],
            )
            for pattern in patterns
        ]
        try:
            run_config("single", single, 1, None)
        finally:
            single.close()

        # -- sharded configurations ----------------------------------------
        for num_shards in (1, 2, 4):
            sharded = ShardedSequenceIndex.open(
                f"{workdir}/sharded-{num_shards}",
                store_factory,
                num_shards=num_shards,
            )
            try:
                sharded.update(log)
                run_config("sharded", sharded, num_shards, reference)
            finally:
                sharded.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    single_qps = configs[0]["qps"]
    best = max(configs[1:], key=lambda c: c["qps"])
    snapshot = {
        "experiment": "sharded_service",
        "dataset": dataset,
        "scale": scale,
        "pattern_length": length,
        "patterns": len(patterns),
        "clients": clients,
        "duration_s": duration_s,
        "write_fraction": write_fraction,
        "single_store_qps": single_qps,
        "best_sharded_qps": best["qps"],
        "best_sharded_shards": best["num_shards"],
        "speedup": best["qps"] / single_qps if single_qps else float("inf"),
        "configs": configs,
    }
    with open("BENCH_sharded_service.json", "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2)
        fh.write("\n")
    result.note(
        "every sharded configuration's match sets asserted identical to "
        "the single-store engine before load"
    )
    result.note("snapshot: BENCH_sharded_service.json")
    return result


def exp_leveled_compaction(
    scale: float,
    days: int = 10,
    traces_per_day: int = 150,
    events_per_trace: int = 8,
    reopen_repeats: int = 5,
) -> ExperimentResult:
    """Write-amplification ablation: size-tiered vs leveled compaction.

    Not a paper experiment.  Sustained streaming ingest through the feed
    pipeline (``FeedWriter`` -> ``TailIngester`` -> ``EngineSink``) into a
    single long-lived store session per strategy, with each simulated day
    indexing into its own period partition (the paper's period-partitioned
    index tables, §3.1.3) under zero-padded monotonic trace ids.  Once a
    day closes, its key region goes cold: the leveled strategy parks it
    in deep key-disjoint runs via manifest-only trivial moves, while
    size-tiered re-folds cold bytes into every next-generation tier
    merge.  Measures, per strategy:

    * write amplification = ``compaction_bytes_rewritten`` /
      ``flush_bytes_written`` over the whole ingest session (background
      compaction enabled, as deployed);
    * reopen latency of the grown store after each day, lazy
      (manifest + footers only) vs eager (index/bloom materialised),
      showing lazy reopen staying flat as the store grows.

    The ingest session deliberately never closes mid-run: closing flushes
    whatever sits in the memtable, and those undersized day-boundary
    "runt" tables would poison size-tiered's similar-size merge windows,
    understating its steady-state write amplification.  Day-boundary
    reopen latencies are instead measured on crash-consistent directory
    snapshots (immutable SSTables, atomic manifest renames, append-only
    WAL -- exactly the store's crash model), retried if a concurrent
    compaction commit retires a file mid-copy.

    Writes a ``BENCH_leveled_compaction.json`` perf-trajectory snapshot.
    """
    import json
    import os
    import random
    import shutil
    import tempfile
    import time

    from repro.core.engine import SequenceIndex
    from repro.core.model import Event
    from repro.ingest import EngineSink, FeedWriter, TailIngester
    from repro.kvstore import LSMStore, LeveledConfig

    result = ExperimentResult(
        "leveled_compaction",
        "Write amplification under sustained partition-rotating ingest",
        [
            "strategy",
            "events",
            "flushed MB",
            "rewritten MB",
            "write amp",
            "compactions",
            "moves",
            "levels",
            "reopen lazy ms",
            "reopen eager ms",
        ],
    )
    traces = max(10, int(traces_per_day * scale))
    leveled_config = dict(
        l0_compact_tables=16,
        base_level_bytes=64 * 1024,
        fanout=8,
        max_output_bytes=16 * 1024,
        grandparent_limit_factor=2,
    )

    def day_events(day: int) -> list[Event]:
        rng = random.Random(f"leveled-bench-day-{day}")
        activities = [f"a{j:02d}" for j in range(12)]
        events: list[Event] = []
        for t in range(traces):
            trace_id = f"{day:02d}-{t:06d}"
            clock = float(day * 1_000_000 + t)
            for _ in range(events_per_trace):
                clock += rng.randint(1, 3)
                events.append(Event(trace_id, rng.choice(activities), clock))
        return events

    def open_store(path: str, strategy: str) -> LSMStore:
        kwargs = {}
        if strategy == "leveled":
            kwargs["leveled"] = LeveledConfig(**leveled_config)
        return LSMStore(
            path,
            memtable_flush_bytes=32 * 1024,
            compaction=strategy,
            **kwargs,
        )

    def snapshot_dir(src: str, dst: str, attempts: int = 8) -> None:
        # A compaction commit may retire an input file between the copy
        # of the manifest and the copy of that file; the result is the
        # same partial state a crash would leave, except the manifest can
        # name a file the copy missed.  Probe-open once (also absorbing
        # one-time WAL recovery, so the timed reopens below measure
        # manifest loading, not replay) and retry the copy on failure.
        last: Exception | None = None
        for _ in range(attempts):
            shutil.rmtree(dst, ignore_errors=True)
            try:
                shutil.copytree(src, dst)
                probe = LSMStore(dst, lazy_open=True, auto_compact=False)
                probe.close()
                return
            except Exception as exc:  # noqa: BLE001 - retried, then re-raised
                last = exc
        raise RuntimeError(f"could not snapshot {src}") from last

    def reopen_ms(path: str, lazy: bool) -> float:
        best = float("inf")
        for _ in range(max(1, reopen_repeats)):
            start = time.perf_counter()
            store = LSMStore(path, lazy_open=lazy, auto_compact=False)
            elapsed = time.perf_counter() - start
            store.close()
            best = min(best, elapsed)
        return best * 1e3

    workdir = tempfile.mkdtemp(prefix="repro-leveled-compaction-")
    strategies = ("size_tiered", "leveled")
    summary: dict[str, dict] = {}
    try:
        for strategy in strategies:
            store_dir = os.path.join(workdir, strategy)
            store = open_store(store_dir, strategy)
            engine = SequenceIndex(store, query_cache_size=0)
            events_total = 0
            reopen_series = []
            try:
                for day in range(days):
                    feed = os.path.join(
                        workdir, f"{strategy}-day{day:02d}.jsonl"
                    )
                    with FeedWriter(feed) as writer:
                        writer.append(day_events(day))
                    ingester = TailIngester(
                        feed,
                        EngineSink(engine, partition=f"day-{day:02d}"),
                        feed + ".ckpt",
                        batch_events=64,
                    )
                    stats = ingester.drain()
                    ingester.close()
                    events_total += stats.events_applied
                    snap = os.path.join(workdir, f"{strategy}-snap")
                    snapshot_dir(store_dir, snap)
                    storage = store.storage_stats()
                    reopen_series.append(
                        {
                            "day": day,
                            "file_bytes": storage["file_bytes"],
                            "sstables": len(storage["sstables"]),
                            "lazy_ms": reopen_ms(snap, lazy=True),
                            "eager_ms": reopen_ms(snap, lazy=False),
                        }
                    )
                    shutil.rmtree(snap, ignore_errors=True)
                metrics = store.metrics.snapshot()
                storage = store.storage_stats()
            finally:
                store.close()
            final = reopen_series[-1]
            write_amp = (
                metrics["compaction_bytes_rewritten"]
                / metrics["flush_bytes_written"]
                if metrics["flush_bytes_written"]
                else 0.0
            )
            summary[strategy] = {
                "events": events_total,
                "flush_bytes_written": metrics["flush_bytes_written"],
                "compaction_bytes_rewritten": metrics[
                    "compaction_bytes_rewritten"
                ],
                "compactions": metrics["compactions"],
                "compaction_moves": metrics["compaction_moves"],
                "write_amp": write_amp,
                "level_count": storage["level_count"],
                "final_file_bytes": final["file_bytes"],
                "final_sstables": final["sstables"],
                "reopen_series": reopen_series,
            }
            result.add(
                strategy,
                events_total,
                metrics["flush_bytes_written"] / 1e6,
                metrics["compaction_bytes_rewritten"] / 1e6,
                write_amp,
                metrics["compactions"],
                metrics["compaction_moves"],
                storage["level_count"],
                final["lazy_ms"],
                final["eager_ms"],
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    tiered = summary["size_tiered"]
    leveled = summary["leveled"]
    # "Reopen flat" is an O(manifest) claim, not an O(bytes) claim: the
    # size-tiered store keeps a near-constant manifest while its data
    # grows ~`days`-fold, so its lazy series shows absolute flatness;
    # the leveled store's manifest grows with its table count, so its
    # series shows constant cost *per manifest entry* instead.
    st_first, st_last = (
        tiered["reopen_series"][0],
        tiered["reopen_series"][-1],
    )
    lv_first, lv_last = (
        leveled["reopen_series"][0],
        leveled["reopen_series"][-1],
    )

    def per_table_us(point: dict) -> float:
        return point["lazy_ms"] * 1e3 / max(1, point["sstables"])

    snapshot = {
        "experiment": "leveled_compaction",
        "scale": scale,
        "days": days,
        "traces_per_day": traces,
        "events_per_trace": events_per_trace,
        "leveled_config": leveled_config,
        "size_tiered": tiered,
        "leveled": leveled,
        "size_tiered_write_amp": tiered["write_amp"],
        "leveled_write_amp": leveled["write_amp"],
        "write_amp_ratio": tiered["write_amp"] / leveled["write_amp"]
        if leveled["write_amp"]
        else float("inf"),
        "leveled_wa_below_size_tiered": leveled["write_amp"]
        < tiered["write_amp"],
        "lazy_reopen_growth": st_last["lazy_ms"] / st_first["lazy_ms"]
        if st_first["lazy_ms"]
        else float("inf"),
        "lazy_reopen_bytes_growth": st_last["file_bytes"]
        / max(1, st_first["file_bytes"]),
        "leveled_lazy_us_per_table_first": per_table_us(lv_first),
        "leveled_lazy_us_per_table_last": per_table_us(lv_last),
    }
    with open("BENCH_leveled_compaction.json", "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2)
        fh.write("\n")
    result.note(
        "write amp = compaction bytes rewritten / flush bytes written, "
        "one continuously-ingesting store session per strategy"
    )
    result.note(
        "each day writes its own period partition; cold days become "
        "key-disjoint runs that leveled sinks as manifest-only moves"
    )
    result.note(
        "reopen latency: min over repeats on a crash-consistent "
        "day-boundary snapshot of the live store"
    )
    result.note(
        "lazy reopen is O(manifest): flat in absolute terms while the "
        "manifest holds steady (size-tiered series), constant per "
        "manifest entry while it grows (leveled series)"
    )
    result.note("snapshot: BENCH_leveled_compaction.json")
    return result


#: every experiment, keyed by the name used on the runner command line
ALL_EXPERIMENTS: dict[str, Callable[[float], ExperimentResult]] = {
    "table4": exp_table4,
    "fig2": exp_fig2,
    "table5": exp_table5,
    "fig3": exp_fig3,
    "table6": exp_table6,
    "table7": exp_table7,
    "fig4": exp_fig4,
    "table8": exp_table8,
    "fig5": exp_fig5,
    "fig6": exp_fig6,
    "fig7": exp_fig7,
    "ablation_cache": exp_ablation_cache,
    "ablation_planner": exp_ablation_planner,
    "pattern_language": exp_pattern_language,
    "postings_compression": exp_postings_compression,
    "sharded_service": exp_sharded_service,
    "leveled_compaction": exp_leveled_compaction,
}
