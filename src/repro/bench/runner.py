"""Command-line experiment runner.

Usage::

    python -m repro.bench.runner                     # every experiment
    python -m repro.bench.runner table6 fig4         # a subset
    REPRO_BENCH_SCALE=0.2 python -m repro.bench.runner table8

Tables print to stdout in the paper's layout; CSVs land in ``results/``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.reporting import format_table, write_csv, write_profile
from repro.logs.datasets import bench_scale
from repro.obs.trace import Tracer, activate

DEFAULT_SCALE = 0.05


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=[*ALL_EXPERIMENTS, []],
        help="experiments to run (default: all)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="dataset scale (default: $REPRO_BENCH_SCALE or "
        f"{DEFAULT_SCALE}); 1.0 = paper-sized",
    )
    parser.add_argument(
        "--results-dir",
        default="results",
        help="directory for CSV output (default: results/)",
    )
    args = parser.parse_args(argv)
    scale = args.scale if args.scale is not None else bench_scale(DEFAULT_SCALE)
    names = args.experiments or list(ALL_EXPERIMENTS)
    for name in names:
        tracer = Tracer(max_spans=50_000)
        started = time.perf_counter()
        with activate(tracer):
            result = ALL_EXPERIMENTS[name](scale)
        elapsed = time.perf_counter() - started
        print(format_table(result))
        path = write_csv(result, args.results_dir)
        profile_path = write_profile(name, tracer, args.results_dir)
        print(
            f"[{name} finished in {elapsed:.1f}s; csv: {path}; "
            f"profile: {profile_path}]"
        )
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
