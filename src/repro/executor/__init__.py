"""Partitioned parallel execution, standing in for the paper's Spark jobs.

The pre-processing component of the paper parallelises *per trace*: every
trace's event pairs can be computed independently.  This package provides
exactly that computation model -- partition a collection, map a function over
partitions on a chosen backend, concatenate results -- with ``serial``,
``thread`` and ``process`` backends.  ``max_workers=1`` on the serial backend
reproduces the paper's "1 thread / single Spark executor" configurations.
"""

from repro.executor.parallel import ParallelExecutor
from repro.executor.partition import partition_items, partition_round_robin

__all__ = ["ParallelExecutor", "partition_items", "partition_round_robin"]
