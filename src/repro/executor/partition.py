"""Partitioning helpers for the parallel executor."""

from __future__ import annotations

from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")


def partition_items(items: Sequence[T], num_partitions: int) -> list[list[T]]:
    """Split ``items`` into up to ``num_partitions`` contiguous chunks.

    Chunks differ in size by at most one element; empty chunks are dropped so
    callers never schedule no-op work.
    """
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    total = len(items)
    if total == 0:
        return []
    num_partitions = min(num_partitions, total)
    base, extra = divmod(total, num_partitions)
    partitions: list[list[T]] = []
    start = 0
    for i in range(num_partitions):
        size = base + (1 if i < extra else 0)
        partitions.append(list(items[start : start + size]))
        start += size
    return partitions


def partition_round_robin(items: Iterable[T], num_partitions: int) -> list[list[T]]:
    """Deal ``items`` round-robin; balances skewed per-item costs.

    Useful when items are traces sorted by size: contiguous chunking would
    put all the long traces in one partition, round-robin spreads them.
    """
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    partitions: list[list[T]] = [[] for _ in range(num_partitions)]
    for i, item in enumerate(items):
        partitions[i % num_partitions].append(item)
    return [p for p in partitions if p]
