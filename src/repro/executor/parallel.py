"""The parallel map/flat-map executor.

``ParallelExecutor`` mirrors the slice of the Spark API the paper's
pre-processing job uses: partition a sequence, run a pure function over each
partition, and collect the results *in input order*.  Backends:

* ``serial``  -- run in the calling thread (the paper's "1 thread" mode);
* ``thread``  -- a thread pool; effective when partition work releases the
  GIL (I/O, numpy) and always useful for overlapping store writes;
* ``process`` -- a process pool for CPU-bound pure-Python work; functions and
  items must be picklable.

All operations are deterministic: results come back in the order of the
input items regardless of backend, worker count or completion order, so
parallel output always equals serial output.  With ``balanced=True`` items
are dealt round-robin across workers (good when per-item cost is skewed,
e.g. traces sorted by length) and the results are stitched back into input
order afterwards.

With ``persistent=True`` the pool is created once and reused across calls
(call :meth:`ParallelExecutor.close` when done) -- the mode the sharded
query service runs in, where paying thread start-up per query would swamp
sub-millisecond fan-outs.  :meth:`ParallelExecutor.gather` runs independent
thunks concurrently with an optional absolute deadline; on expiry it cancels
whatever has not started and raises :class:`~repro.core.errors.DeadlineExceeded`.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable, Iterable, Sequence, TypeVar

from repro.executor.partition import partition_items, partition_round_robin

T = TypeVar("T")
R = TypeVar("R")

_BACKENDS = ("serial", "thread", "process")


def _run_indexed_map(
    func: Callable[[T], R], partition: list[tuple[int, T]]
) -> list[tuple[int, R]]:
    return [(index, func(item)) for index, item in partition]


def _run_indexed_flat_map(
    func: Callable[[T], Iterable[R]], partition: list[tuple[int, T]]
) -> list[tuple[int, list[R]]]:
    return [(index, list(func(item))) for index, item in partition]


def _run_partition(func: Callable[[list[T]], list[R]], partition: list[T]) -> list[R]:
    return func(partition)


class ParallelExecutor:
    """Partitioned map executor with pluggable backends."""

    def __init__(
        self,
        backend: str = "serial",
        max_workers: int | None = None,
        balanced: bool = True,
        persistent: bool = False,
    ) -> None:
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        self.backend = backend
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
        self.balanced = balanced
        self.persistent = persistent
        self._shared_pool: Executor | None = None
        self._closed = False

    @classmethod
    def serial(cls) -> "ParallelExecutor":
        """The single-executor configuration used for paper "1 thread" runs."""
        return cls(backend="serial", max_workers=1)

    def _num_partitions(self) -> int:
        return 1 if self.backend == "serial" else self.max_workers

    def _partition_indexed(self, items: Sequence[T]) -> list[list[tuple[int, T]]]:
        indexed = list(enumerate(items))
        if self.balanced:
            return partition_round_robin(indexed, self._num_partitions())
        return partition_items(indexed, self._num_partitions())

    def _make_pool(self) -> Executor | None:
        if self.backend == "thread":
            return ThreadPoolExecutor(max_workers=self.max_workers)
        if self.backend == "process":
            return ProcessPoolExecutor(max_workers=self.max_workers)
        return None

    def _pool(self) -> tuple[Executor | None, bool]:
        """Return ``(pool, owned)``; an owned pool must be shut down by the
        caller, a shared (persistent) pool must not."""
        if self.backend == "serial":
            return None, False
        if not self.persistent:
            return self._make_pool(), True
        if self._closed:
            raise RuntimeError("executor is closed")
        if self._shared_pool is None:
            self._shared_pool = self._make_pool()
        return self._shared_pool, False

    def close(self) -> None:
        """Shut down the persistent pool, waiting for in-flight work.

        Idempotent; only meaningful with ``persistent=True``.  After close
        the executor refuses new work.
        """
        self._closed = True
        pool, self._shared_pool = self._shared_pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _run_indexed(
        self,
        runner: Callable[..., list[tuple[int, R]]],
        func: Callable[..., object],
        items: Sequence[T],
    ) -> list[R]:
        partitions = self._partition_indexed(items)
        if not partitions:
            return []
        pool, owned = self._pool()
        if pool is None:
            chunks = [runner(func, partition) for partition in partitions]
        else:
            try:
                futures = [pool.submit(runner, func, p) for p in partitions]
                chunks = [future.result() for future in futures]
            finally:
                if owned:
                    pool.shutdown(wait=True)
        ordered: list[R] = [None] * len(items)  # type: ignore[list-item]
        for chunk in chunks:
            for index, result in chunk:
                ordered[index] = result
        return ordered

    def map(self, func: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``func`` to each item; results align with the input order."""
        return self._run_indexed(_run_indexed_map, func, items)

    def flat_map(self, func: Callable[[T], Iterable[R]], items: Sequence[T]) -> list[R]:
        """Apply ``func`` to each item and concatenate its results in input order."""
        nested: list[list[R]] = self._run_indexed(_run_indexed_flat_map, func, items)
        out: list[R] = []
        for chunk in nested:
            out.extend(chunk)
        return out

    def map_partitions(
        self, func: Callable[[list[T]], list[R]], items: Sequence[T]
    ) -> list[R]:
        """Apply ``func`` to contiguous chunks; concatenate in chunk order.

        Chunking is always contiguous here (never round-robin) so that the
        concatenated output preserves input order for element-wise ``func``.
        """
        partitions = partition_items(items, self._num_partitions())
        if not partitions:
            return []
        pool, owned = self._pool()
        if pool is None:
            chunks = [func(partition) for partition in partitions]
        else:
            try:
                futures = [pool.submit(_run_partition, func, p) for p in partitions]
                chunks = [future.result() for future in futures]
            finally:
                if owned:
                    pool.shutdown(wait=True)
        out: list[R] = []
        for chunk in chunks:
            out.extend(chunk)
        return out

    def gather(
        self,
        thunks: Sequence[Callable[[], R]],
        deadline: float | None = None,
    ) -> list[R]:
        """Run zero-argument thunks concurrently; results in input order.

        ``deadline`` is an absolute ``time.monotonic()`` instant.  If it
        passes before every thunk finished, pending futures are cancelled
        (started ones run to completion but their results are discarded) and
        :class:`~repro.core.errors.DeadlineExceeded` is raised.  On the
        serial backend thunks run inline and the deadline is checked between
        thunks -- a single thunk is never interrupted.
        """
        from repro.core.errors import DeadlineExceeded

        if not thunks:
            return []
        pool, owned = self._pool()
        if pool is None:
            results: list[R] = []
            for thunk in thunks:
                if deadline is not None and time.monotonic() >= deadline:
                    raise DeadlineExceeded(
                        f"deadline expired after {len(results)}/{len(thunks)} tasks"
                    )
                results.append(thunk())
            return results
        futures: list[Future[R]] = []
        expired = False
        try:
            futures = [pool.submit(thunk) for thunk in thunks]
            results = []
            for future in futures:
                if deadline is None:
                    results.append(future.result())
                    continue
                remaining = deadline - time.monotonic()
                try:
                    results.append(future.result(timeout=max(remaining, 0.0)))
                except FutureTimeoutError:
                    expired = True
                    raise DeadlineExceeded(
                        f"deadline expired after {len(results)}/{len(thunks)} tasks"
                    ) from None
            return results
        finally:
            for future in futures:
                future.cancel()
            if owned:
                # On a deadline miss, do NOT wait for the abandoned thunk:
                # the whole point of the deadline is answering on time.  The
                # worker thread finishes on its own and the pool is garbage
                # collected afterwards.
                pool.shutdown(wait=not expired, cancel_futures=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParallelExecutor(backend={self.backend!r}, "
            f"max_workers={self.max_workers}, balanced={self.balanced}, "
            f"persistent={self.persistent})"
        )
