"""Command-line interface: index logs and query them from a shell.

Examples::

    python -m repro generate --dataset med_5000 --scale 0.1 --out log.csv
    python -m repro index --log log.csv --store ./ix --policy stnm
    python -m repro index --log log.csv --store ./sx --shards 4
    python -m repro detect --store ./ix A,B,C --explain --profile
    python -m repro detect --store ./ix --pattern "SEQ(A, !B, (C|D)+) WITHIN 10"
    python -m repro stats  --store ./ix A,B,C
    python -m repro continue --store ./ix A,B --mode hybrid --top-k 5
    python -m repro profile --log log.csv --store ./ix
    python -m repro metrics --store ./ix
    python -m repro serve --store ./sx --port 7700
    python -m repro loadgen --port 7700 --pattern a,b --clients 4 --duration 5
    python -m repro feed --log log.csv --feed events.jsonl --chunk 64
    python -m repro ingest --feed events.jsonl --store ./ix --follow
    python -m repro ingest --feed events.jsonl --port 7700 --metrics
    python -m repro faults --seed 1234
    python -m repro faults --ingest --seeds 0:20
    python -m repro diffcheck --seeds 0:500

Stores created with ``--shards N`` carry a ``SHARDS.json`` manifest; every
other subcommand auto-detects it and opens the store through the
scatter-gather coordinator, so ``detect``/``stats``/``serve`` work
identically on single-store and sharded layouts.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.engine import SequenceIndex
from repro.core.errors import PatternSyntaxError
from repro.core.pattern import parse_pattern
from repro.core.policies import PairMethod, Policy
from repro.executor import ParallelExecutor
from repro.kvstore import LSMStore
from repro.logs.csv_log import read_csv_log, write_csv_log
from repro.logs.datasets import DATASETS, load_dataset
from repro.logs.stats import format_distributions, format_profile_table, profile_log
from repro.logs.xes import read_xes, write_xes
from repro.shard import ShardedSequenceIndex, is_sharded_store

_POLICIES = {"sc": Policy.SC, "stnm": Policy.STNM}
_METHODS = {m.value: m for m in PairMethod}


def _read_log(path: str):
    if path.endswith(".xes"):
        return read_xes(path)
    return read_csv_log(path)


def _open_index(args: argparse.Namespace):
    """Open the store behind ``args.store`` as the right engine.

    A directory carrying a ``SHARDS.json`` manifest (or a fresh ``--shards N``
    request) opens through :class:`ShardedSequenceIndex`; everything else is
    a plain single-store :class:`SequenceIndex`.  Both expose the same query
    surface, so the subcommands don't care which they got.
    """
    policy = _POLICIES[getattr(args, "policy", "stnm")]
    method = _METHODS[args.method] if getattr(args, "method", None) else None

    def make_store(path: str) -> LSMStore:
        return LSMStore(
            path,
            background_compaction=getattr(args, "background_compaction", False),
            compression=_compression_arg(args),
            mmap=getattr(args, "mmap", False),
            compaction=getattr(args, "compaction", "size_tiered"),
        )

    shards = getattr(args, "shards", None)
    if shards or is_sharded_store(args.store):
        # The coordinator brings its own thread pool; per-shard process
        # executors would not compose with the scatter-gather fan-out.
        return ShardedSequenceIndex.open(
            args.store,
            make_store,
            num_shards=shards,
            policy=policy,
            method=method,
        )
    executor = None
    workers = getattr(args, "workers", None)
    if workers and workers > 1:
        executor = ParallelExecutor(backend="process", max_workers=workers)
    return SequenceIndex(
        make_store(args.store), policy=policy, method=method, executor=executor
    )


def _compression_arg(args: argparse.Namespace) -> str | None:
    name = getattr(args, "compression", "none")
    return None if name == "none" else name


def _pattern(raw: str) -> list[str]:
    pattern = [part.strip() for part in raw.split(",") if part.strip()]
    if not pattern:
        raise SystemExit("pattern must be a comma-separated list of activities")
    return pattern


def cmd_generate(args: argparse.Namespace) -> int:
    log = load_dataset(args.dataset, scale=args.scale)
    if args.out.endswith(".xes"):
        write_xes(log, args.out)
    else:
        write_csv_log(log, args.out)
    print(f"wrote {log.num_events} events / {len(log)} traces to {args.out}")
    return 0


def cmd_index(args: argparse.Namespace) -> int:
    log = _read_log(args.log)
    with _open_index(args) as index:
        stats = index.update(log, partition=args.partition)
        print(
            f"indexed {stats.events_indexed} events from {stats.traces_seen} "
            f"traces ({stats.new_traces} new), {stats.pairs_created} pairs"
            + (f" into partition {args.partition!r}" if args.partition else "")
        )
    return 0


def cmd_detect(args: argparse.Namespace) -> int:
    if args.expr is not None:
        if args.pattern is not None:
            raise SystemExit(
                "give either a positional pattern or --pattern, not both"
            )
        if args.stam or args.within is not None:
            raise SystemExit(
                "--stam/--within apply to plain patterns only; composite "
                "expressions carry their window inside (... WITHIN 10)"
            )
        try:
            pattern = parse_pattern(args.expr)
        except PatternSyntaxError as exc:
            raise SystemExit(f"bad pattern expression: {exc}") from None
    elif args.pattern is not None:
        pattern = _pattern(args.pattern)
    else:
        raise SystemExit(
            "detect needs a pattern: positional A,B,C or --pattern 'SEQ(...)'"
        )
    with _open_index(args) as index:
        policy = Policy.STAM if args.stam else None
        partition = args.partition if args.partition else None
        if args.profile:
            matches, plan, profile = index.detect(
                pattern,
                partition=partition,
                policy=policy,
                max_matches=args.limit,
                within=args.within,
                explain_profile=True,
            )
            print("plan:")
            for line in plan.describe().splitlines():
                print(f"  {line}")
            print("profile:")
            for line in profile.describe().splitlines():
                print(f"  {line}")
        elif args.explain:
            matches, plan = index.detect(
                pattern,
                partition=partition,
                policy=policy,
                max_matches=args.limit,
                within=args.within,
                explain=True,
            )
            print("plan:")
            for line in plan.describe().splitlines():
                print(f"  {line}")
        else:
            matches = index.detect(
                pattern,
                partition=partition,
                policy=policy,
                max_matches=args.limit,
                within=args.within,
            )
        print(f"{len(matches)} completions of {pattern}")
        for match in matches[: args.show]:
            stamps = ", ".join(f"{ts:g}" for ts in match.timestamps)
            print(f"  {match.trace_id}: [{stamps}]")
        if len(matches) > args.show:
            print(f"  ... and {len(matches) - args.show} more")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    if args.pattern is None:
        return _store_stats(args)
    pattern = _pattern(args.pattern)
    with _open_index(args) as index:
        stats = index.statistics(pattern)
        for row in stats.pairs:
            last = f"{row.last_completion:g}" if row.last_completion is not None else "-"
            print(
                f"{row.pair[0]} -> {row.pair[1]}: completions={row.completions} "
                f"avg_duration={row.average_duration:g} last={last}"
            )
        print(
            f"pattern upper bound: {stats.max_completions} completions, "
            f"estimated duration {stats.estimated_duration:g}"
        )
    return 0


def _store_stats(args: argparse.Namespace) -> int:
    """Storage-level report: per-table record counts, raw vs on-disk bytes,
    and the compression ratio the block codec is achieving.

    On a sharded store the report aggregates across shards: a per-shard
    breakdown followed by the totals row."""
    if is_sharded_store(args.store):
        return _sharded_store_stats(args)
    with LSMStore(
        args.store, compression=_compression_arg(args), mmap=getattr(args, "mmap", False)
    ) as store:
        print(f"store {args.store}")
        for name in sorted(store.list_tables()):
            count = sum(1 for _ in store.scan(name))
            print(f"  {name}: {count} records")
        stats = store.storage_stats()
        print(
            f"  sstables: {len(stats['sstables'])} "
            f"({stats['records']} records on disk)"
        )
        for entry in stats["sstables"]:
            print(
                f"    {entry['file']}: v{entry['format_version']} "
                f"records={entry['records']} raw={entry['raw_data_bytes']} "
                f"disk={entry['data_bytes']}"
                + (" (mmap)" if entry["mmap"] else "")
            )
        print(
            f"  raw bytes: {stats['raw_data_bytes']}  "
            f"on-disk bytes: {stats['data_bytes']}  "
            f"(files: {stats['file_bytes']})"
        )
        print(f"  compression ratio: {stats['compression_ratio']:.2f}x")
    return 0


def _sharded_store_stats(args: argparse.Namespace) -> int:
    """Aggregate storage accounting across every shard of a sharded store."""
    with _open_index(args) as index:
        stats = index.storage_stats()
        print(f"store {args.store} ({stats['num_shards']} shards)")
        for entry in stats["shards"]:
            sstables = entry.get("sstables", ())
            print(
                f"  shard {entry['shard']:02d}: {len(sstables)} sstables, "
                f"{entry.get('records', 0)} records, "
                f"raw={entry.get('raw_data_bytes', 0)} "
                f"disk={entry.get('data_bytes', 0)}"
            )
        totals = stats["totals"]
        print(
            f"  totals: {totals['sstables']} sstables, "
            f"{totals['records']} records"
        )
        print(
            f"  raw bytes: {totals['raw_data_bytes']}  "
            f"on-disk bytes: {totals['data_bytes']}  "
            f"(files: {totals['file_bytes']})"
        )
        print(f"  compression ratio: {totals['compression_ratio']:.2f}x")
    return 0


def cmd_continue(args: argparse.Namespace) -> int:
    pattern = _pattern(args.pattern)
    with _open_index(args) as index:
        if getattr(index, "num_shards", None):
            raise SystemExit(
                "continue requires a single-store index: continuation "
                "ranking walks prefix state the sharded coordinator "
                "does not maintain"
            )
        proposals = index.continuations(
            pattern, mode=args.mode, top_k=args.top_k, within=args.within
        )
        for proposal in proposals[: args.show]:
            exact = "exact" if proposal.exact else "approx"
            print(
                f"{proposal.event}: completions={proposal.completions} "
                f"avg_gap={proposal.average_duration:g} "
                f"score={proposal.score:g} ({exact})"
            )
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Render a Prometheus-style metrics snapshot for one store.

    Opens the store (registering it with the process-wide registry),
    optionally exercises the read path with a detection so the serving
    counters are non-zero, and prints the registry's text exposition.
    """
    from repro.obs.registry import REGISTRY

    with _open_index(args) as index:
        if args.pattern:
            partition = args.partition if args.partition else None
            matches = index.detect(_pattern(args.pattern), partition=partition)
            print(f"# ran detect {args.pattern!r}: {len(matches)} completions")
        sys.stdout.write(REGISTRY.render())
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a store over the length-prefixed JSON protocol.

    Runs until interrupted (or for ``--duration`` seconds when given --
    handy for scripted smoke runs), then drains: in-flight requests finish,
    new ones are refused with the ``shutdown`` error code.
    """
    import time

    from repro.service import SequenceService

    with _open_index(args) as index:
        service = SequenceService(
            index,
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            max_ingest_inflight=args.max_ingest_inflight,
            default_deadline_ms=args.deadline_ms,
        )
        service.start()
        host, port = service.address
        shards = getattr(index, "num_shards", 1)
        print(f"serving {args.store} ({shards} shard(s)) on {host}:{port}")
        sys.stdout.flush()
        try:
            if args.duration is not None:
                time.sleep(args.duration)
            else:
                while True:
                    time.sleep(3600)
        except KeyboardInterrupt:
            print("interrupt: draining")
        finally:
            service.shutdown()
    print("server stopped")
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive closed-loop mixed read/write traffic at a running server.

    Each ``--pattern`` is either a comma-separated plain sequence (sent as
    a list) or a composite expression (anything containing ``(``, sent as
    a string).  The report prints as JSON: request counts, rejections,
    p50/p95/p99 latency per operation class, and overall QPS.
    """
    import json

    from repro.service import run_loadgen

    patterns: list[object] = []
    for raw in args.pattern:
        patterns.append(raw if "(" in raw else _pattern(raw))
    report = run_loadgen(
        args.host,
        args.port,
        patterns,
        clients=args.clients,
        duration_s=args.duration,
        write_fraction=args.write_fraction,
        write_batch=args.write_batch,
        deadline_ms=args.deadline_ms,
        seed=args.seed,
    )
    print(json.dumps(report.to_dict(), indent=2))
    return 0


def cmd_feed(args: argparse.Namespace) -> int:
    """Append a batch log into an append-only event feed.

    Events are interleaved across traces in global timestamp order (the
    shape a live producer emits) and stamped with the append instant, which
    is what the ingester's freshness metric measures against.  ``--chunk``
    plus ``--interval`` turn a static log into a paced stream for demos.
    """
    import time

    from repro.ingest import FeedWriter

    log = _read_log(args.log)
    # Stable sort: per-trace order (what the index requires) survives the
    # global interleave.
    events = sorted(log.events(), key=lambda event: event.timestamp)
    chunk = args.chunk if args.chunk else max(len(events), 1)
    written = 0
    with FeedWriter(args.feed) as writer:
        for start in range(0, len(events), chunk):
            written += writer.append(
                events[start : start + chunk], stamp=not args.no_stamp
            )
            if args.interval and start + chunk < len(events):
                time.sleep(args.interval)
    print(f"appended {written} events to {args.feed}")
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    """Tail an event feed into a live index, micro-batch by micro-batch.

    Local mode (``--store``) applies batches to the store in-process while
    it stays fully queryable; remote mode (``--port``) ships them to a
    running ``repro serve`` through the ingest op and its backpressure
    seam.  Progress survives kills: the durable checkpoint replays from
    the last applied batch and the dedup filter makes the replay a no-op.
    """
    from repro.ingest import EngineSink, ServiceSink

    if (args.store is None) == (args.port is None):
        raise SystemExit(
            "ingest needs exactly one of --store (local) or --port (remote)"
        )
    if args.store is not None:
        with _open_index(args) as index:
            return _run_ingester(args, EngineSink(index, partition=args.partition))
    from repro.service.client import ServiceClient

    with ServiceClient(args.host, args.port) as client:
        return _run_ingester(args, ServiceSink(client, partition=args.partition))


def _run_ingester(args: argparse.Namespace, sink: object) -> int:
    from repro.ingest import TailIngester

    checkpoint = args.checkpoint or args.feed + ".checkpoint"
    ingester = TailIngester(
        args.feed,
        sink,
        checkpoint,
        batch_events=args.batch_events,
        poll_interval_s=args.poll_ms / 1000.0,
        name=args.feed,
    )
    try:
        if args.follow or args.duration is not None:
            try:
                stats = ingester.run(args.duration)
            except KeyboardInterrupt:
                print("interrupt: checkpointing")
                stats = ingester.stop()
        else:
            stats = ingester.drain()
        print(
            f"applied {stats.events_applied} events in {stats.batches} "
            f"batches ({stats.events_deduped} deduped replays), "
            f"checkpoint at byte {stats.offset}, lag {stats.lag_bytes} bytes"
        )
        print(ingester.freshness.describe())
        if args.metrics:
            from repro.obs.registry import REGISTRY

            sys.stdout.write(REGISTRY.render())
    finally:
        ingester.close()
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Replay crash-recovery fault-injection seeds.

    ``--seed N`` replays the single seed a failing test printed;
    ``--seeds A:B`` sweeps a half-open range.  ``--ingest`` switches from
    the store crash harness to the ingest crash-replay harness (kill the
    tailing ingester mid-batch, replay from the checkpoint, require
    convergence with a clean batch build).  Exit status 0 means every seed
    upheld its contract; a violation prints the failure and returns 1.
    """
    from repro.faults import CrashRecoveryFailure, run_seed

    if args.seed is None and args.seeds is None:
        raise SystemExit("faults requires --seed N or --seeds A:B")
    if args.seeds is not None:
        try:
            start, stop = (int(part) for part in args.seeds.split(":", 1))
        except ValueError:
            raise SystemExit("--seeds expects A:B, e.g. 0:200") from None
        seeds = range(start, stop)
    else:
        seeds = [args.seed]
    import os

    if args.ingest:
        return _ingest_faults(args, seeds)
    failures = 0
    for seed in seeds:
        workdir = os.path.join(args.path, f"seed-{seed}") if args.path else None
        try:
            summary = run_seed(
                seed,
                ops=args.ops,
                path=workdir,
                compression=_compression_arg(args),
                compaction=args.compaction,
            )
        except CrashRecoveryFailure as exc:
            failures += 1
            print(f"FAIL {exc}")
        else:
            outcome = (
                "crashed"
                if summary["crashed"]
                else ("detected" if summary["detected"] else "survived")
            )
            print(
                f"seed {seed}: ok ({summary['fault']}, {outcome}, "
                f"acked={summary['acked']}, checked={summary['checked']})"
            )
    if failures:
        print(f"{failures} of {len(seeds)} seeds FAILED")
        return 1
    return 0


def _ingest_faults(args: argparse.Namespace, seeds) -> int:
    """Sweep the ingest crash-replay harness over ``seeds``."""
    import os

    from repro.faults import IngestReplayFailure, run_ingest_replay

    failures = 0
    for seed in seeds:
        workdir = (
            os.path.join(args.path, f"ingest-seed-{seed}") if args.path else None
        )
        try:
            summary = run_ingest_replay(seed, path=workdir)
        except IngestReplayFailure as exc:
            failures += 1
            print(f"FAIL {exc}")
        else:
            print(
                f"seed {seed}: ok (killed {summary['phase']} batch "
                f"{summary['crash_batch']}, replayed {summary['replayed']} "
                f"events, {summary['deduped']} deduped, converged)"
            )
    if failures:
        print(f"{failures} of {len(seeds)} seeds FAILED")
        return 1
    return 0


def cmd_diffcheck(args: argparse.Namespace) -> int:
    """Differential check: indexed pattern queries vs the SASE oracle.

    ``--seed N`` replays the single seed a failing test printed (with the
    shrunk counterexample); ``--seeds A:B`` sweeps a half-open range.
    Exit status 0 means both engines agreed on every case.
    """
    from repro.difftest import run_case

    if args.seed is not None:
        seeds: list[int] | range = [args.seed]
    else:
        spec = args.seeds or "0:200"
        try:
            start, stop = (int(part) for part in spec.split(":", 1))
        except ValueError:
            raise SystemExit("--seeds expects A:B, e.g. 0:500") from None
        seeds = range(start, stop)
    total = 0
    failures = 0
    for seed in seeds:
        result = run_case(seed)
        total += 1
        if result.ok:
            if args.seed is not None or args.verbose:
                print(result.report())
        else:
            failures += 1
            print(result.report())
    print(f"{total} seeds, {failures} divergences")
    return 1 if failures else 0


def cmd_profile(args: argparse.Namespace) -> int:
    if args.log is None and args.store is None:
        raise SystemExit("profile requires --log and/or --store")
    if args.log is not None:
        log = _read_log(args.log)
        profile = profile_log(log, name=args.log)
        print(format_profile_table([profile]))
        print(format_distributions([profile]))
    if args.store is not None:
        _profile_store(args.store)
    return 0


def _profile_store(path: str) -> None:
    """Report on-disk shape, integrity and serving counters of a store."""
    with LSMStore(path) as store:
        print(f"store {path}")
        print(f"  tables: {', '.join(store.list_tables()) or '(none)'}")
        print(f"  sstables: {store.sstable_count}")
        try:
            store.verify()
            print("  integrity: ok (all data CRCs verified)")
        except Exception as exc:
            print(f"  integrity: FAILED ({exc})")
        for name in store.list_tables():
            try:
                count = sum(1 for _ in store.scan(name))
            except Exception:  # corrupt data: already reported above
                print(f"    {name}: unreadable")
                continue
            print(f"    {name}: {count} keys")
        metrics = store.metrics.snapshot()
        interesting = {k: v for k, v in metrics.items() if v}
        if interesting:
            print("  session counters: " + ", ".join(
                f"{k}={v}" for k, v in sorted(interesting.items())
            ))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Sequence detection in event log files"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a registry dataset")
    gen.add_argument("--dataset", choices=DATASETS, required=True)
    gen.add_argument("--scale", type=float, default=1.0)
    gen.add_argument("--out", required=True, help=".csv or .xes output path")
    gen.set_defaults(fn=cmd_generate)

    def add_store_args(p, with_build=False, required=True):
        p.add_argument("--store", required=required, help="index store directory")
        p.add_argument("--policy", choices=sorted(_POLICIES), default="stnm")
        p.add_argument(
            "--compression",
            choices=("none", "zlib", "zstd"),
            default="none",
            help="block codec for new SSTable writes (reads auto-detect)",
        )
        p.add_argument(
            "--mmap",
            action="store_true",
            help="serve SSTable reads from a memory map (page cache)",
        )
        p.add_argument(
            "--compaction",
            choices=("size_tiered", "leveled"),
            default="size_tiered",
            help="SSTable compaction strategy (stores written under one "
            "strategy reopen under the other without migration)",
        )
        if with_build:
            p.add_argument("--method", choices=sorted(_METHODS), default=None)
            p.add_argument("--workers", type=int, default=1)
            p.add_argument(
                "--shards",
                type=int,
                default=None,
                help="create a sharded store with N LSM shards (existing "
                "stores keep their manifest's count; resharding is not "
                "supported)",
            )
            p.add_argument("--partition", default="", help="index partition name")
            p.add_argument(
                "--background-compaction",
                action="store_true",
                help="compact SSTables on a background thread while indexing",
            )

    idx = sub.add_parser("index", help="index a log file into a store")
    idx.add_argument("--log", required=True, help=".csv or .xes log file")
    add_store_args(idx, with_build=True)
    idx.set_defaults(fn=cmd_index)

    det = sub.add_parser("detect", help="detect a pattern")
    det.add_argument(
        "pattern",
        nargs="?",
        default=None,
        help="comma-separated activities, e.g. A,B,C",
    )
    det.add_argument(
        "--pattern",
        dest="expr",
        default=None,
        help="composite pattern expression, e.g. 'SEQ(A, !B, (C|D)+) WITHIN 10'",
    )
    add_store_args(det)
    det.add_argument("--partition", default="", help="partition ('' = default)")
    det.add_argument("--stam", action="store_true", help="skip-till-any-match")
    det.add_argument("--within", type=float, default=None)
    det.add_argument("--limit", type=int, default=None)
    det.add_argument("--show", type=int, default=20)
    det.add_argument(
        "--explain",
        action="store_true",
        help="print the chosen join order and pair cardinalities",
    )
    det.add_argument(
        "--profile",
        action="store_true",
        help="run under the tracer and print the per-stage time breakdown "
        "(implies --explain)",
    )
    det.set_defaults(fn=cmd_detect)

    sta = sub.add_parser(
        "stats",
        help="pairwise statistics of a pattern, or (without a pattern) "
        "per-table record counts and storage/compression accounting",
    )
    sta.add_argument("pattern", nargs="?", default=None)
    add_store_args(sta)
    sta.set_defaults(fn=cmd_stats)

    con = sub.add_parser("continue", help="rank likely next events")
    con.add_argument("pattern")
    add_store_args(con)
    con.add_argument("--mode", choices=("accurate", "fast", "hybrid"), default="hybrid")
    con.add_argument("--top-k", type=int, default=5)
    con.add_argument("--within", type=float, default=None)
    con.add_argument("--show", type=int, default=10)
    con.set_defaults(fn=cmd_continue)

    pro = sub.add_parser("profile", help="dataset shape of a log and/or a store")
    pro.add_argument("--log", default=None, help=".csv or .xes log file")
    pro.add_argument(
        "--store", default=None, help="index store directory to inspect/verify"
    )
    pro.set_defaults(fn=cmd_profile)

    met = sub.add_parser(
        "metrics", help="Prometheus-style metrics snapshot of a store"
    )
    add_store_args(met)
    met.add_argument(
        "--pattern",
        default=None,
        help="optionally run this detection first so serving counters move",
    )
    met.add_argument("--partition", default="", help="partition ('' = default)")
    met.set_defaults(fn=cmd_metrics)

    srv = sub.add_parser(
        "serve", help="serve a store to network clients (single or sharded)"
    )
    add_store_args(srv)
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument(
        "--port", type=int, default=0, help="listen port (0 = ephemeral)"
    )
    srv.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        help="admission control: concurrent queries before 'overloaded'",
    )
    srv.add_argument(
        "--max-ingest-inflight",
        type=int,
        default=2,
        help="concurrent ingest batches before backpressure kicks in",
    )
    srv.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="default per-request deadline (clients may override)",
    )
    srv.add_argument(
        "--duration",
        type=float,
        default=None,
        help="serve for this many seconds then drain (default: until Ctrl-C)",
    )
    srv.set_defaults(fn=cmd_serve)

    lod = sub.add_parser(
        "loadgen", help="closed-loop load generator against a running server"
    )
    lod.add_argument("--host", default="127.0.0.1")
    lod.add_argument("--port", type=int, required=True)
    lod.add_argument(
        "--pattern",
        action="append",
        required=True,
        help="read pattern (repeatable): A,B,C or a composite 'SEQ(...)'",
    )
    lod.add_argument("--clients", type=int, default=4)
    lod.add_argument("--duration", type=float, default=5.0)
    lod.add_argument(
        "--write-fraction",
        type=float,
        default=0.2,
        help="probability each request is an ingest batch",
    )
    lod.add_argument("--write-batch", type=int, default=8)
    lod.add_argument("--deadline-ms", type=float, default=None)
    lod.add_argument("--seed", type=int, default=0)
    lod.set_defaults(fn=cmd_loadgen)

    fed = sub.add_parser(
        "feed", help="append a batch log into an append-only event feed"
    )
    fed.add_argument("--log", required=True, help=".csv or .xes log file")
    fed.add_argument(
        "--feed", required=True, help="feed file to append to (JSONL)"
    )
    fed.add_argument(
        "--chunk",
        type=int,
        default=None,
        help="events per append call (default: one append for the whole log)",
    )
    fed.add_argument(
        "--interval",
        type=float,
        default=0.0,
        help="seconds to sleep between chunks (paces the stream for demos)",
    )
    fed.add_argument(
        "--no-stamp",
        action="store_true",
        help="omit append stamps (disables freshness accounting downstream)",
    )
    fed.set_defaults(fn=cmd_feed)

    ing = sub.add_parser(
        "ingest",
        help="tail an event feed into a live index (local store or server)",
    )
    ing.add_argument("--feed", required=True, help="feed file to tail (JSONL)")
    ing.add_argument(
        "--checkpoint",
        default=None,
        help="durable offset checkpoint (default: <feed>.checkpoint)",
    )
    add_store_args(ing, required=False)
    ing.add_argument("--partition", default="", help="index partition name")
    ing.add_argument("--host", default="127.0.0.1")
    ing.add_argument(
        "--port",
        type=int,
        default=None,
        help="ship batches to a running 'repro serve' instead of --store",
    )
    ing.add_argument(
        "--batch-events",
        type=int,
        default=256,
        help="micro-batch size (one checkpoint write per batch)",
    )
    ing.add_argument(
        "--poll-ms",
        type=float,
        default=50.0,
        help="idle poll interval while following",
    )
    ing.add_argument(
        "--follow",
        action="store_true",
        help="keep tailing for new appends (Ctrl-C drains and checkpoints)",
    )
    ing.add_argument(
        "--duration",
        type=float,
        default=None,
        help="follow for this many seconds, then drain and exit",
    )
    ing.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics exposition (freshness histogram, lag) at exit",
    )
    ing.set_defaults(fn=cmd_ingest)

    flt = sub.add_parser(
        "faults", help="replay crash-recovery fault-injection seeds"
    )
    flt.add_argument(
        "--ingest",
        action="store_true",
        help="run the ingest crash-replay harness instead of the store one",
    )
    flt.add_argument("--seed", type=int, default=None, help="one seed to replay")
    flt.add_argument(
        "--seeds", default=None, help="half-open seed range to sweep, e.g. 0:200"
    )
    flt.add_argument(
        "--ops", type=int, default=160, help="workload length per seed"
    )
    flt.add_argument(
        "--path",
        default=None,
        help="run in this directory and keep it (default: temp dir, removed)",
    )
    flt.add_argument(
        "--compression",
        choices=("none", "zlib", "zstd"),
        default="none",
        help="run the store under test with this block codec",
    )
    flt.add_argument(
        "--compaction",
        choices=("size_tiered", "leveled"),
        default="size_tiered",
        help="compaction strategy for the store under test",
    )
    flt.set_defaults(fn=cmd_faults)

    dif = sub.add_parser(
        "diffcheck",
        help="differentially test indexed pattern queries vs the SASE oracle",
    )
    dif.add_argument("--seed", type=int, default=None, help="one seed to replay")
    dif.add_argument(
        "--seeds", default=None, help="half-open seed range to sweep, e.g. 0:500"
    )
    dif.add_argument(
        "--verbose", action="store_true", help="print passing seeds too"
    )
    dif.set_defaults(fn=cmd_diffcheck)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
