"""Ingest crash-replay harness: kill the tailer mid-batch, prove convergence.

One :func:`run_ingest_replay` seed is a complete streaming crash cycle:

1. derive a deterministic interleaved event feed from the seed (integer
   timestamps keep the Count-table duration sums exact across groupings);
2. tail it into a fresh store (single or sharded, also seed-derived) with
   a :class:`~repro.ingest.ingester.TailIngester` whose fault hook raises
   :class:`~repro.faults.schedule.SimulatedCrash` at a seeded batch
   ordinal, either *before the apply* (batch read but not indexed) or
   *after the apply but before the checkpoint* (the at-least-once window);
3. drop the store's file handles without flushing
   (:func:`~repro.faults.harness.simulate_crash` -- a process kill);
4. reopen everything and let a new ingester replay from the durable
   checkpoint to the end of the feed;
5. build the same feed in one clean batch ``update()`` into a second
   store and require the two indexes to be *logically identical*
   (:func:`~repro.ingest.convergence.index_snapshot`) -- same sequences,
   same decoded pair entries, same statistics, same tails.

A pre-checkpoint kill forces the replay to re-read an already-applied
batch, so this harness exercises exactly the dedup filter that makes the
checkpoint protocol at-least-once-safe; a pre-apply kill exercises the
plain resume path.  Any divergence raises :class:`IngestReplayFailure`
with the reproducer command (``python -m repro faults --ingest --seed N``).
"""

from __future__ import annotations

import random
import shutil
import tempfile
from pathlib import Path
from typing import Any

from repro.core.engine import SequenceIndex
from repro.core.model import Event
from repro.faults.harness import simulate_crash
from repro.faults.schedule import SimulatedCrash
from repro.ingest.convergence import index_snapshot
from repro.ingest.feed import FeedWriter
from repro.ingest.ingester import EngineSink, TailIngester
from repro.kvstore.lsm import LSMStore
from repro.shard import ShardedSequenceIndex

__all__ = ["IngestReplayFailure", "generate_feed_events", "run_ingest_replay"]

_ACTIVITIES = ("login", "search", "add", "pay", "ship", "refund")
_PHASES = ("pre_apply", "pre_checkpoint")


class IngestReplayFailure(AssertionError):
    """Replay after a crash did not converge to the clean batch build."""

    def __init__(self, seed: int, message: str) -> None:
        self.seed = seed
        super().__init__(
            f"seed {seed}: {message}\n"
            f"  reproduce with: python -m repro faults --ingest --seed {seed}"
        )


def generate_feed_events(seed: int, total: int | None = None) -> list[Event]:
    """Deterministic interleaved event stream for one seed.

    Traces interleave arbitrarily but each trace's timestamps strictly
    increase (the append-only order the index requires), and timestamps
    are integers so duration sums compare exactly across batch groupings.
    """
    rng = random.Random(f"ingest-feed-{seed}")
    if total is None:
        total = rng.randint(40, 120)
    num_traces = rng.randint(3, 8)
    clocks = {f"t{seed}-{i}": rng.randint(0, 5) for i in range(num_traces)}
    trace_ids = sorted(clocks)
    events: list[Event] = []
    for _ in range(total):
        trace_id = rng.choice(trace_ids)
        clocks[trace_id] += rng.randint(1, 4)
        events.append(
            Event(trace_id, rng.choice(_ACTIVITIES), float(clocks[trace_id]))
        )
    return events


def _open_engine(path: str, shards: int | None) -> Any:
    if shards:
        return ShardedSequenceIndex.open(path, LSMStore, num_shards=shards)
    return SequenceIndex(LSMStore(path))


def _crash_engine(engine: Any) -> None:
    """Process-kill the engine: drop every underlying store's handles.

    Stores are left exactly as their last completed I/O left them; only
    the coordinator's worker threads are reaped (a real kill takes those
    with the process, but this harness stays in-process).
    """
    for shard in getattr(engine, "shards", None) or [engine]:
        simulate_crash(shard.store)
    executor = getattr(engine, "executor", None)
    if executor is not None and getattr(engine, "_owns_executor", False):
        executor.close()


def _first_divergence(streamed: dict, clean: dict) -> str:
    for table in ("seq", "index", "count", "reverse_count", "last_checked"):
        left, right = streamed[table], clean[table]
        if left == right:
            continue
        keys = set(left) | set(right)
        for key in sorted(keys, key=repr):
            if left.get(key) != right.get(key):
                return (
                    f"table {table!r} diverges at {key!r}: "
                    f"streamed={left.get(key)!r} clean={right.get(key)!r}"
                )
        return f"table {table!r} diverges"
    return "snapshots differ"


def run_ingest_replay(
    seed: int,
    path: str | None = None,
    total_events: int | None = None,
) -> dict[str, Any]:
    """Run one seed's kill/replay/converge cycle; returns a summary dict.

    Raises :class:`IngestReplayFailure` when the replayed streaming index
    differs from the clean batch build.
    """
    workdir = path or tempfile.mkdtemp(prefix=f"repro-ingest-{seed}-")
    try:
        return _run(seed, Path(workdir), total_events)
    finally:
        if path is None:
            shutil.rmtree(workdir, ignore_errors=True)


def _run(seed: int, workdir: Path, total_events: int | None) -> dict[str, Any]:
    rng = random.Random(f"ingest-replay-{seed}")
    events = generate_feed_events(seed, total_events)
    batch_events = rng.choice((4, 8, 16))
    shards = rng.choice((None, None, 2))  # 1/3 of seeds run sharded
    partition = rng.choice(("", "", "audit"))
    total_batches = -(-len(events) // batch_events)
    crash_batch = rng.randrange(total_batches)
    phase = rng.choice(_PHASES)

    feed_path = str(workdir / "events.jsonl")
    checkpoint_path = str(workdir / "ingest.checkpoint")
    stream_path = str(workdir / "stream-store")
    clean_path = str(workdir / "clean-store")

    with FeedWriter(feed_path) as writer:
        writer.append(events)

    def crash_hook(batch_no: int) -> None:
        if batch_no == crash_batch:
            raise SimulatedCrash(f"ingest kill at {phase} of batch {batch_no}")

    # -- phase 1: stream until the seeded kill ------------------------------------
    engine = _open_engine(stream_path, shards)
    ingester = TailIngester(
        feed_path,
        EngineSink(engine, partition=partition),
        checkpoint_path,
        batch_events=batch_events,
        name=f"ingest-replay-{seed}",
        pre_apply_hook=crash_hook if phase == "pre_apply" else None,
        pre_checkpoint_hook=crash_hook if phase == "pre_checkpoint" else None,
    )
    try:
        ingester.drain()
    except SimulatedCrash:
        pass
    else:
        raise IngestReplayFailure(
            seed, f"scheduled kill at batch {crash_batch} never fired"
        )
    finally:
        ingester.close()
    _crash_engine(engine)

    # -- phase 2: reopen and replay from the durable checkpoint -------------------
    engine = _open_engine(stream_path, shards)
    try:
        ingester = TailIngester(
            feed_path,
            EngineSink(engine, partition=partition),
            checkpoint_path,
            batch_events=batch_events,
            name=f"ingest-replay-{seed}-recovery",
        )
        try:
            stats = ingester.drain()
        finally:
            ingester.close()
        if stats.lag_bytes != 0:
            raise IngestReplayFailure(
                seed, f"replay left {stats.lag_bytes} bytes of feed unconsumed"
            )
        streamed = index_snapshot(engine)
    finally:
        engine.close()

    # -- phase 3: clean one-shot batch build over the same feed -------------------
    clean_engine = _open_engine(clean_path, shards)
    try:
        clean_engine.update(events, partition)
        clean = index_snapshot(clean_engine)
    finally:
        clean_engine.close()

    if streamed != clean:
        raise IngestReplayFailure(
            seed,
            f"replayed streaming index != clean batch build "
            f"(killed {phase} of batch {crash_batch}/{total_batches}, "
            f"batch_events={batch_events}, shards={shards or 1}): "
            + _first_divergence(streamed, clean),
        )

    return {
        "seed": seed,
        "phase": phase,
        "crash_batch": crash_batch,
        "total_batches": total_batches,
        "batch_events": batch_events,
        "shards": shards or 1,
        "partition": partition,
        "events": len(events),
        "replayed": stats.events_read,
        "deduped": stats.events_deduped,
    }
