"""Filesystem shim: the seam every durability-critical I/O goes through.

:class:`RealIO` is the zero-overhead production implementation (plain
``open``/``os.fsync``/``os.replace``/``os.remove``).  :class:`FaultyIO`
wraps the same surface, consults a :class:`~repro.faults.schedule.FaultSchedule`
at every operation, and injects torn writes, failed fsyncs, ``ENOSPC``,
bit flips and crash points deterministically.

The store, WAL and SSTable code take an ``io`` parameter defaulting to
:data:`REAL_IO`, so production pays a single attribute indirection and
tests swap in ``FaultyIO(schedule)`` without monkeypatching.

``fault_point(name, path)`` is the named-protocol-point seam (e.g.
``compaction.pre_swap``): a no-op on :class:`RealIO`, a schedule lookup
under ``point:<name>`` on :class:`FaultyIO`.  It replaces the bespoke
``compaction_pre_swap_hook`` with a first-class, seed-reproducible
mechanism.
"""

from __future__ import annotations

import errno
import os
from typing import IO, Any

from repro.faults.schedule import (
    BIT_FLIP,
    CORRUPT,
    CRASH,
    CRASH_AFTER_RENAME,
    CRASH_BEFORE_RENAME,
    ENOSPC,
    FAIL_FSYNC,
    TORN_WRITE,
    TRUNCATE_CRASH,
    Fault,
    FaultSchedule,
    SimulatedCrash,
)

__all__ = ["RealIO", "REAL_IO", "FaultyIO"]


class RealIO:
    """Pass-through filesystem; the default ``io`` of every store."""

    def open(self, path: str, mode: str = "rb") -> IO[Any]:
        return open(path, mode)

    def fsync(self, fobj: Any) -> None:
        os.fsync(fobj.fileno())

    def fsync_dir(self, path: str) -> None:
        """Fsync a *directory*, durably committing renames inside it.

        On ext4-style journals ``os.replace`` alone only updates the
        in-memory dentry; a crash right after the rename can roll the
        directory back and lose a fully-synced file.  Platforms whose
        directory handles reject fsync (some network filesystems) are
        skipped silently -- they provide no stronger primitive anyway.
        """
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def remove(self, path: str) -> None:
        os.remove(path)

    def fault_point(self, name: str, path: str | None = None) -> None:
        """Named protocol point (no-op outside fault injection)."""


#: shared production instance
REAL_IO = RealIO()


class FaultyIO(RealIO):
    """Schedule-driven fault injector over the :class:`RealIO` surface."""

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule

    # -- file operations ---------------------------------------------------

    def open(self, path: str, mode: str = "rb") -> IO[Any]:
        fault = self.schedule.take("open", path)
        if fault is not None and fault.kind in (CRASH, TORN_WRITE):
            raise SimulatedCrash(fault)
        if fault is not None and fault.kind == ENOSPC:
            raise OSError(errno.ENOSPC, f"injected ENOSPC opening {path}")
        fobj = open(path, mode)
        if any(flag in mode for flag in ("w", "a", "+")):
            return _FaultyFile(fobj, self, path)
        return fobj

    def fsync(self, fobj: Any) -> None:
        path = getattr(fobj, "path", None) or getattr(fobj, "name", "") or ""
        fault = self.schedule.take("fsync", str(path))
        if fault is not None:
            if fault.kind == FAIL_FSYNC:
                raise OSError(errno.EIO, f"injected fsync failure on {path}")
            if fault.kind == CRASH:
                raise SimulatedCrash(fault)
        os.fsync(fobj.fileno())

    def fsync_dir(self, path: str) -> None:
        fault = self.schedule.take("fsync_dir", path)
        if fault is not None:
            if fault.kind == FAIL_FSYNC:
                raise OSError(errno.EIO, f"injected fsync failure on dir {path}")
            if fault.kind in (CRASH, TORN_WRITE):
                raise SimulatedCrash(fault)
        super().fsync_dir(path)

    def replace(self, src: str, dst: str) -> None:
        fault = self.schedule.take("rename", dst)
        if fault is not None:
            if fault.kind in (CRASH, CRASH_BEFORE_RENAME):
                raise SimulatedCrash(fault)
            if fault.kind == CRASH_AFTER_RENAME:
                os.replace(src, dst)
                raise SimulatedCrash(fault)
            if fault.kind == ENOSPC:
                raise OSError(errno.ENOSPC, f"injected ENOSPC renaming {dst}")
        os.replace(src, dst)

    def remove(self, path: str) -> None:
        fault = self.schedule.take("remove", path)
        if fault is not None and fault.kind == CRASH:
            raise SimulatedCrash(fault)
        os.remove(path)

    # -- named protocol points ---------------------------------------------

    def fault_point(self, name: str, path: str | None = None) -> None:
        fault = self.schedule.take(f"point:{name}", path or "")
        if fault is None:
            return
        if fault.kind == TRUNCATE_CRASH and path is not None:
            size = os.path.getsize(path)
            with open(path, "r+b") as fh:
                fh.truncate(size // 2)
            raise SimulatedCrash(fault)
        if fault.kind == CORRUPT and path is not None:
            size = os.path.getsize(path)
            offset = min(size - 1, max(8, int(size * fault.arg)))
            with open(path, "r+b") as fh:
                fh.seek(offset)
                fh.write(b"\xde\xad\xbe\xef")
            return  # silent corruption: execution continues
        raise SimulatedCrash(fault)


class _FaultyFile:
    """Writable-file proxy that routes ``write``/``close`` through the schedule."""

    __slots__ = ("_file", "_io", "path")

    def __init__(self, fobj: IO[Any], io: FaultyIO, path: str) -> None:
        self._file = fobj
        self._io = io
        self.path = path

    def write(self, data: Any) -> int:
        fault = self._io.schedule.take("write", self.path)
        if fault is None or not isinstance(data, (bytes, bytearray, memoryview)):
            return self._file.write(data)
        buf = bytes(data)
        if fault.kind == TORN_WRITE:
            keep = int(len(buf) * fault.arg)
            if keep:
                self._file.write(buf[:keep])
            self._file.flush()
            raise SimulatedCrash(fault)
        if fault.kind == ENOSPC:
            raise OSError(errno.ENOSPC, f"injected ENOSPC writing {self.path}")
        if fault.kind == BIT_FLIP:
            if buf:
                flipped = bytearray(buf)
                bit = int(fault.arg * len(flipped) * 8) % (len(flipped) * 8)
                flipped[bit // 8] ^= 1 << (bit % 8)
                buf = bytes(flipped)
            return self._file.write(buf)
        if fault.kind == CRASH:
            self._file.flush()
            raise SimulatedCrash(fault)
        return self._file.write(buf)

    def close(self) -> None:
        fault = self._io.schedule.take("close", self.path)
        if fault is not None and fault.kind == CRASH:
            self._file.flush()
            raise SimulatedCrash(fault)
        self._file.close()

    # -- transparent passthroughs -----------------------------------------

    def flush(self) -> None:
        self._file.flush()

    def fileno(self) -> int:
        return self._file.fileno()

    def tell(self) -> int:
        return self._file.tell()

    def seek(self, offset: int, whence: int = 0) -> int:
        return self._file.seek(offset, whence)

    def truncate(self, size: int | None = None) -> int:
        return self._file.truncate(size)

    def read(self, size: int = -1) -> Any:
        return self._file.read(size)

    @property
    def closed(self) -> bool:
        return self._file.closed

    def __enter__(self) -> "_FaultyFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
