"""Crash-recovery harness: seeded workload x fault schedule x oracle.

One :class:`CrashRecoveryHarness` run is a complete simulated
crash/recovery cycle:

1. derive a workload (puts / list-append merges / deletes / flushes /
   compactions) and a :class:`~repro.faults.schedule.FaultSchedule` from a
   single integer seed;
2. drive the workload into an :class:`~repro.kvstore.lsm.LSMStore` whose
   I/O runs through :class:`~repro.faults.io.FaultyIO`, tracking every
   *acknowledged* operation (returned without raising) in an in-memory
   oracle;
3. when the scheduled fault kills the store (or the workload ends), drop
   the store's file handles without flushing -- a process kill -- and
   reopen the directory with a clean filesystem;
4. check the recovered state against the oracle:

   * every acknowledged write must survive;
   * an operation that raised (the in-flight op at the crash, or the one
     an injected ``ENOSPC``/fsync failure hit) may have landed or not --
     the oracle tracks both branches, anything outside them is a torn
     value;
   * no key the oracle never saw may appear (no phantoms);
   * ``verify()`` must pass -- recovery never serves torn bytes;
   * for silent-corruption faults (bit flips) the store may instead
     *detect* the damage with a typed corruption error, which counts as a
     pass: failing loudly is the contract, serving garbage is the bug.

Any violation raises :class:`CrashRecoveryFailure`, whose message embeds
the reproducer command (``python -m repro faults --seed N``).

The oracle state is a ``{(table, key): [possible values]}`` map.  An
acknowledged write advances *every* branch; an unacknowledged write forks
the branches (with and without the write).  Exactly one fault fires per
schedule, so at most one key ever carries two branches -- the map stays
tiny while still expressing the full may-or-may-not-have-landed
semantics.
"""

from __future__ import annotations

import json
import random
import shutil
import tempfile
from typing import Any

from repro.faults.io import FaultyIO
from repro.faults.schedule import CORRUPTING_KINDS, FaultSchedule, SimulatedCrash
from repro.kvstore.api import CorruptionError
from repro.kvstore.compaction import LeveledConfig
from repro.kvstore.lsm import LSMStore
from repro.obs.registry import REGISTRY

__all__ = [
    "CrashRecoveryFailure",
    "CrashRecoveryHarness",
    "WorkloadOp",
    "generate_workload",
    "run_seed",
    "simulate_crash",
]

#: sentinel for "key has no value" (the workload never stores this string)
ABSENT = "\x00<absent>"

_WRITE_KINDS = ("put", "merge", "delete")


class CrashRecoveryFailure(AssertionError):
    """A durability invariant was violated; carries the reproducer seed."""

    def __init__(self, seed: int, message: str) -> None:
        self.seed = seed
        super().__init__(
            f"seed {seed}: {message}\n"
            f"  reproduce with: python -m repro faults --seed {seed}"
        )


class WorkloadOp:
    """One step of the seeded workload."""

    __slots__ = ("kind", "table", "key", "value")

    def __init__(self, kind: str, table: str = "", key: Any = None, value: Any = None) -> None:
        self.kind = kind
        self.table = table
        self.key = key
        self.value = value

    def __repr__(self) -> str:
        if self.kind in _WRITE_KINDS:
            return f"WorkloadOp({self.kind} {self.table}[{self.key!r}])"
        return f"WorkloadOp({self.kind})"


def generate_workload(seed: int, ops: int = 160) -> list[WorkloadOp]:
    """Deterministic mixed workload over a plain table and a merge table.

    Values carry variable-length payloads so torn or truncated writes
    change bytes a checksum (or the oracle comparison) will notice.
    """
    rng = random.Random(f"workload-{seed}")
    workload: list[WorkloadOp] = []
    for i in range(ops):
        roll = rng.random()
        if roll < 0.35:
            key = rng.randrange(16)
            value = f"v{i}-" + "x" * rng.randint(0, 80)
            workload.append(WorkloadOp("put", "kv", key, value))
        elif roll < 0.65:
            key = rng.randrange(8)
            delta = [f"d{i}.{rng.randrange(1000)}"]
            workload.append(WorkloadOp("merge", "log", key, delta))
        elif roll < 0.75:
            table = rng.choice(("kv", "log"))
            key = rng.randrange(16 if table == "kv" else 8)
            workload.append(WorkloadOp("delete", table, key))
        elif roll < 0.90:
            workload.append(WorkloadOp("flush"))
        else:
            workload.append(WorkloadOp("compact"))
    return workload


def simulate_crash(store: LSMStore) -> None:
    """Drop a store's OS handles without flushing -- a process kill.

    The on-disk state is left exactly as the last completed I/O left it;
    nothing is sealed, truncated or flushed on the way out.  The store
    object is poisoned (marked closed) so accidental reuse fails loudly.
    """
    REGISTRY.unregister(store._obs_handle)
    compactor, store._compactor = store._compactor, None
    if compactor is not None:
        compactor.stop()
    try:
        store._wal._file.close()
    except Exception:
        pass  # the crash may have hit the WAL handle itself
    for reader in list(store._sstables):
        try:
            reader._file.close()
        except Exception:
            pass
    store._closed = True


class _Oracle:
    """Possible-values tracker for acknowledged vs indeterminate writes."""

    def __init__(self) -> None:
        #: (table, key) -> list of possible current values (1 or 2 entries)
        self.possible: dict[tuple[str, Any], list[Any]] = {}
        self.acked_writes = 0

    @staticmethod
    def _applied(current: Any, op: WorkloadOp) -> Any:
        if op.kind == "put":
            return op.value
        if op.kind == "delete":
            return ABSENT
        if op.kind == "merge":
            base = list(current) if isinstance(current, list) else []
            return base + list(op.value)
        raise ValueError(f"not a write op: {op!r}")

    @staticmethod
    def _freeze(value: Any) -> Any:
        return tuple(value) if isinstance(value, list) else value

    def _branches(self, op: WorkloadOp) -> list[Any]:
        return self.possible.get((op.table, op.key), [ABSENT])

    def ack(self, op: WorkloadOp) -> None:
        """The op returned: it must be reflected in every branch."""
        branches = [self._applied(v, op) for v in self._branches(op)]
        self.possible[(op.table, op.key)] = _dedup(branches, self._freeze)
        self.acked_writes += 1

    def indeterminate(self, op: WorkloadOp) -> None:
        """The op raised: it may or may not have landed -- fork branches."""
        branches = self._branches(op)
        branches = branches + [self._applied(v, op) for v in branches]
        self.possible[(op.table, op.key)] = _dedup(branches, self._freeze)


def _dedup(values: list[Any], freeze: Any) -> list[Any]:
    seen: set[Any] = set()
    out: list[Any] = []
    for value in values:
        frozen = freeze(value)
        if frozen not in seen:
            seen.add(frozen)
            out.append(value)
    return out


class CrashRecoveryHarness:
    """Run one seed's workload-under-faults cycle and verify recovery."""

    TABLES = (("kv", None), ("log", "list_append"))

    def __init__(
        self,
        path: str,
        seed: int,
        ops: int = 160,
        memtable_flush_bytes: int = 2048,
        compaction_min_tables: int = 3,
        compression: str | None = None,
        compaction: str = "size_tiered",
        schedule: FaultSchedule | None = None,
    ) -> None:
        self.path = path
        self.seed = seed
        self.ops = ops
        self.memtable_flush_bytes = memtable_flush_bytes
        self.compaction_min_tables = compaction_min_tables
        #: block codec for the store under test; faults then land inside
        #: compressed v2 blocks, exercising the per-block CRC detection path
        self.compression = compression
        #: compaction strategy under test; ``"leveled"`` shrinks the level
        #: budgets so the seeded workload actually drives cascades and
        #: manifest rewrites through the injected fault
        self.compaction = compaction
        #: explicit schedule override (default: derived from the seed) --
        #: lets tests aim a fault at a precise protocol point, e.g. the
        #: crash window around a leveled round's MANIFEST rename
        self.schedule = schedule

    def _store_kwargs(self) -> dict[str, Any]:
        kwargs: dict[str, Any] = {"compaction": self.compaction}
        if self.compaction == "leveled":
            kwargs["leveled"] = LeveledConfig(
                l0_compact_tables=max(2, self.compaction_min_tables),
                base_level_bytes=8 * 1024,
                fanout=4,
            )
        return kwargs

    def run(self) -> dict[str, Any]:
        """Execute the cycle; returns a summary dict or raises
        :class:`CrashRecoveryFailure`."""
        schedule = self.schedule or FaultSchedule.from_seed(self.seed)
        fault = schedule._faults[0]
        workload = generate_workload(self.seed, self.ops)
        oracle = _Oracle()
        crashed = False
        detected = False
        store: LSMStore | None = None

        try:
            store = LSMStore(
                self.path,
                memtable_flush_bytes=self.memtable_flush_bytes,
                compaction_min_tables=self.compaction_min_tables,
                auto_compact=True,
                background_compaction=False,
                block_cache_bytes=64 * 1024,
                compression=self.compression,
                io=FaultyIO(schedule),
                **self._store_kwargs(),
            )
            for table, operator in self.TABLES:
                store.create_table(table, merge_operator=operator)
        except (SimulatedCrash, OSError, CorruptionError) as exc:
            if not schedule.fired:
                raise
            # Fault hit during bootstrap: nothing was acknowledged yet.
            crashed = True
            detected = isinstance(exc, CorruptionError)
        else:
            crashed, detected = self._drive(store, workload, schedule, oracle)

        if store is not None:
            simulate_crash(store)

        summary = {
            "seed": self.seed,
            "fault": repr(fault),
            "fired": schedule.fired,
            "crashed": crashed,
            "detected": detected,
            "acked": oracle.acked_writes,
            "checked": 0,
        }
        self._verify_recovery(fault, oracle, summary)
        return summary

    def _drive(
        self,
        store: LSMStore,
        workload: list[WorkloadOp],
        schedule: FaultSchedule,
        oracle: _Oracle,
    ) -> tuple[bool, bool]:
        """Apply the workload; returns ``(crashed, detected)``."""
        for op in workload:
            try:
                if op.kind == "put":
                    store.put(op.table, op.key, op.value)
                elif op.kind == "merge":
                    store.merge(op.table, op.key, op.value)
                elif op.kind == "delete":
                    store.delete(op.table, op.key)
                elif op.kind == "flush":
                    store.flush()
                else:
                    store.compact()
            except SimulatedCrash:
                if op.kind in _WRITE_KINDS:
                    oracle.indeterminate(op)
                return True, False
            except (OSError, CorruptionError) as exc:
                if not schedule.fired:
                    raise  # a real I/O error, not one we injected
                if isinstance(exc, CorruptionError):
                    # Planted corruption surfaced mid-run as a typed error:
                    # that is detection; stop here and check recovery.
                    return True, True
                # Injected transient failure (ENOSPC / failed fsync): the
                # store must survive it; the op is simply unacknowledged.
                if op.kind in _WRITE_KINDS:
                    oracle.indeterminate(op)
            else:
                if op.kind in _WRITE_KINDS:
                    oracle.ack(op)
        return False, False

    def _verify_recovery(
        self, fault: Any, oracle: _Oracle, summary: dict[str, Any]
    ) -> None:
        corruption_planted = fault.kind in CORRUPTING_KINDS
        try:
            # Reopen under the same strategy: a leveled run must survive
            # its own manifest (including a torn manifest rewrite, which
            # demotes to L0 rather than failing).
            recovered = LSMStore(
                self.path, auto_compact=False, **self._store_kwargs()
            )
        except (CorruptionError, json.JSONDecodeError) as exc:
            if corruption_planted:
                summary["detected"] = True
                return  # corruption detected at open: the contract held
            raise CrashRecoveryFailure(
                self.seed, f"store failed to reopen after {fault!r}: {exc!r}"
            ) from exc
        except Exception as exc:
            raise CrashRecoveryFailure(
                self.seed, f"store failed to reopen after {fault!r}: {exc!r}"
            ) from exc
        try:
            try:
                recovered.verify()
            except CorruptionError as exc:
                if corruption_planted:
                    summary["detected"] = True
                    return
                raise CrashRecoveryFailure(
                    self.seed, f"recovered store fails verify(): {exc!r}"
                ) from exc
            self._check_values(recovered, oracle, summary)
        finally:
            recovered.close()

    def _check_values(
        self, recovered: LSMStore, oracle: _Oracle, summary: dict[str, Any]
    ) -> None:
        freeze = oracle._freeze
        checked = 0
        for (table, key), branches in oracle.possible.items():
            if not recovered.has_table(table):
                if any(freeze(v) != ABSENT for v in branches):
                    raise CrashRecoveryFailure(
                        self.seed,
                        f"table {table!r} lost in recovery but may hold "
                        f"key {key!r}",
                    )
                continue
            try:
                got = recovered.get(table, key, ABSENT)
            except Exception as exc:
                raise CrashRecoveryFailure(
                    self.seed,
                    f"reading {table}[{key!r}] after recovery raised {exc!r}",
                ) from exc
            allowed = {freeze(v) for v in branches}
            if freeze(got) not in allowed:
                raise CrashRecoveryFailure(
                    self.seed,
                    f"{table}[{key!r}] recovered as {got!r}, expected one of "
                    f"{sorted(map(repr, allowed))}",
                )
            checked += 1
        # No phantoms: every surviving key must be one the oracle saw.
        for table, _ in self.TABLES:
            if not recovered.has_table(table):
                continue
            for scan_key, _value in recovered.scan(table):
                key = scan_key[0] if len(scan_key) == 1 else scan_key
                if (table, key) not in oracle.possible:
                    raise CrashRecoveryFailure(
                        self.seed,
                        f"phantom key {table}[{key!r}] appeared after recovery",
                    )
        summary["checked"] = checked


def run_seed(
    seed: int,
    ops: int = 160,
    path: str | None = None,
    **harness_kwargs: Any,
) -> dict[str, Any]:
    """Run one seed end-to-end (in a temp dir unless ``path`` is given)."""
    workdir = path or tempfile.mkdtemp(prefix=f"repro-faults-{seed}-")
    try:
        harness = CrashRecoveryHarness(workdir, seed, ops=ops, **harness_kwargs)
        return harness.run()
    finally:
        if path is None:
            shutil.rmtree(workdir, ignore_errors=True)
