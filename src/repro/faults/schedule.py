"""Deterministic fault schedules for the durability-critical I/O path.

A :class:`FaultSchedule` is a small list of :class:`Fault` points consumed
by the :class:`~repro.faults.io.FaultyIO` filesystem shim.  Every
durability-relevant operation (``write``/``fsync``/``rename``/``remove``/
``close``/``open`` plus named protocol points like
``point:compaction.pre_swap``) asks the schedule whether a fault is due;
the *n-th* operation matching a fault's op type and path filter fires it.

Schedules are deterministic: :meth:`FaultSchedule.from_seed` derives the
fault kind, target operation, ordinal and parameters from a single integer
seed with :class:`random.Random` (whose string seeding is stable across
processes), so any failure observed under a seed is reproducible by
replaying the same seed -- the model FoundationDB-style simulation testing
is built on.

Fault kinds
-----------

``torn_write``
    Write only a prefix of the buffer, then raise :class:`SimulatedCrash`
    (a partial WAL record / truncated SSTable block, as left by a real
    kill mid-``write(2)``).
``enospc``
    Raise ``OSError(ENOSPC)`` without writing anything; the store is
    expected to *survive* this (failed-flush handoff) rather than crash.
``fail_fsync``
    Raise ``OSError(EIO)`` from ``fsync``; also survivable.
``bit_flip``
    Flip one bit of the buffer and write the corrupted bytes silently --
    recovery must later *detect* this via a checksum, never serve it.
``crash``
    Raise :class:`SimulatedCrash` instead of performing the operation.
``crash_before_rename`` / ``crash_after_rename``
    Kill immediately before / after an atomic ``os.replace``, exercising
    both sides of every rename-based commit point (manifest swap, SSTable
    seal, WAL rotation).
``truncate_crash`` / ``corrupt``
    Named-point faults: truncate the target file to half its size and
    crash, or silently overwrite four bytes mid-file.  These subsume the
    bespoke ``compaction_pre_swap_hook`` tests.

After any crash-kind fault fires the schedule goes inert (the simulated
process is dead); cleanup code running during unwind performs real I/O
without further injection, exactly as the OS would complete buffered
writes after a ``SIGKILL``.
"""

from __future__ import annotations

import random
import threading

__all__ = [
    "Fault",
    "FaultSchedule",
    "SimulatedCrash",
    "TORN_WRITE",
    "ENOSPC",
    "FAIL_FSYNC",
    "BIT_FLIP",
    "CRASH",
    "CRASH_BEFORE_RENAME",
    "CRASH_AFTER_RENAME",
    "TRUNCATE_CRASH",
    "CORRUPT",
]

TORN_WRITE = "torn_write"
ENOSPC = "enospc"
FAIL_FSYNC = "fail_fsync"
BIT_FLIP = "bit_flip"
CRASH = "crash"
CRASH_BEFORE_RENAME = "crash_before_rename"
CRASH_AFTER_RENAME = "crash_after_rename"
TRUNCATE_CRASH = "truncate_crash"
CORRUPT = "corrupt"

#: kinds that kill the simulated process when they fire
CRASH_KINDS = frozenset(
    {TORN_WRITE, CRASH, CRASH_BEFORE_RENAME, CRASH_AFTER_RENAME, TRUNCATE_CRASH}
)
#: kinds that plant silent corruption (recovery must *detect*, not serve)
CORRUPTING_KINDS = frozenset({BIT_FLIP, CORRUPT})


class SimulatedCrash(Exception):
    """A scheduled kill point was reached; the store must be abandoned.

    Deliberately an :class:`Exception` (not ``BaseException``) so
    ``finally`` blocks and ``writer.abort()``-style unwinding run -- their
    on-disk effects (closing handles, unlinking ``.tmp`` files) match what
    a real crash leaves behind closely enough for recovery testing, since
    recovery must ignore orphan temporaries anyway.
    """

    def __init__(self, fault: "Fault") -> None:
        super().__init__(f"simulated crash: {fault}")
        self.fault = fault


class Fault:
    """One scheduled injection: fire on the ``nth`` matching operation."""

    __slots__ = ("kind", "op", "nth", "path_part", "path_exclude", "arg", "fired_at")

    def __init__(
        self,
        kind: str,
        op: str,
        nth: int = 1,
        path_part: str | None = None,
        path_exclude: str | None = None,
        arg: float = 0.5,
    ) -> None:
        if nth < 1:
            raise ValueError("nth is 1-based; the first matching op is nth=1")
        self.kind = kind
        self.op = op
        self.nth = nth  # counts down; fires when it reaches zero
        self.path_part = path_part
        self.path_exclude = path_exclude
        #: kind-specific knob in [0, 1): torn-write keep fraction, bit/byte
        #: position selector for bit_flip/corrupt
        self.arg = arg
        self.fired_at: tuple[str, str] | None = None  # (op, path) that fired us

    def matches(self, op: str, path: str) -> bool:
        if self.op != op:
            return False
        if self.path_part is not None and self.path_part not in path:
            return False
        if self.path_exclude is not None and self.path_exclude in path:
            return False
        return True

    def __repr__(self) -> str:
        where = f" path~{self.path_part!r}" if self.path_part else ""
        return f"Fault({self.kind} at {self.op}#{self.nth}{where})"


class FaultSchedule:
    """Seeded, thread-safe dispenser of :class:`Fault` points.

    The schedule owns no I/O; :class:`~repro.faults.io.FaultyIO` calls
    :meth:`take` from every instrumented operation and applies whatever
    comes back.  ``take`` is one-shot per fault and the whole schedule
    halts after a crash-kind fault fires.
    """

    def __init__(self, faults: list[Fault] | tuple[Fault, ...] = (), seed: int | None = None) -> None:
        self.seed = seed
        self._faults = list(faults)
        self._lock = threading.Lock()
        self._halted = False
        #: faults that have fired, in firing order
        self.injected: list[Fault] = []
        #: per-op counts of instrumented operations seen (diagnostics)
        self.op_counts: dict[str, int] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def from_seed(cls, seed: int) -> "FaultSchedule":
        """Derive one fault deterministically from ``seed``.

        String seeding of :class:`random.Random` hashes with SHA-512, so
        the derivation is stable across processes and Python invocations
        (unlike tuple hashing, which ``PYTHONHASHSEED`` randomizes).
        """
        rng = random.Random(f"fault-schedule-{seed}")
        kind = rng.choice(
            (
                TORN_WRITE,
                TORN_WRITE,  # the most productive kind: weight it up
                ENOSPC,
                FAIL_FSYNC,
                BIT_FLIP,
                CRASH,
                CRASH_BEFORE_RENAME,
                CRASH_AFTER_RENAME,
            )
        )
        if kind in (TORN_WRITE, ENOSPC, BIT_FLIP):
            op = "write"
        elif kind == FAIL_FSYNC:
            op = "fsync"
        elif kind in (CRASH_BEFORE_RENAME, CRASH_AFTER_RENAME):
            op = "rename"
        else:  # generic crash: pick the op class to die in
            op = rng.choice(("write", "fsync", "rename", "close", "remove"))
        if op == "write":
            nth = rng.randint(1, 250)
        elif op == "fsync":
            nth = rng.randint(1, 12)
        else:
            nth = rng.randint(1, 15)
        fault = Fault(
            kind,
            op,
            nth=nth,
            # A flipped bit in the JSON manifest can change state without
            # tripping any checksum; real deployments would checksum the
            # manifest, here we scope silent flips to the CRC-covered files.
            path_exclude="MANIFEST" if kind == BIT_FLIP else None,
            arg=rng.random(),
        )
        return cls([fault], seed=seed)

    # -- consumption -------------------------------------------------------

    def take(self, op: str, path: str = "") -> Fault | None:
        """Count one ``op`` against the schedule; return a fault if due."""
        with self._lock:
            self.op_counts[op] = self.op_counts.get(op, 0) + 1
            if self._halted:
                return None
            for fault in self._faults:
                if fault.fired_at is None and fault.matches(op, path):
                    fault.nth -= 1
                    if fault.nth <= 0:
                        fault.fired_at = (op, path)
                        self.injected.append(fault)
                        if fault.kind in CRASH_KINDS:
                            self._halted = True
                        _bump_injected_total()
                        return fault
            return None

    @property
    def fired(self) -> bool:
        """Whether any fault has been injected yet."""
        with self._lock:
            return bool(self.injected)

    @property
    def halted(self) -> bool:
        """Whether a crash-kind fault has killed the simulated process."""
        with self._lock:
            return self._halted

    def __repr__(self) -> str:
        return (
            f"FaultSchedule(seed={self.seed}, faults={self._faults!r}, "
            f"injected={len(self.injected)})"
        )


# -- process-wide injection counter (exposed as repro_faults_injected_total) --

_injected_lock = threading.Lock()
_injected_total = 0


def _bump_injected_total() -> None:
    global _injected_total
    with _injected_lock:
        _injected_total += 1


def faults_injected_total() -> int:
    """Process-wide count of injected faults (all schedules, monotonic)."""
    with _injected_lock:
        return _injected_total


def _collect_fault_metrics() -> dict[str, float]:
    return {"repro_faults_injected_total": float(faults_injected_total())}


def _register_metrics() -> None:
    # Deferred import: repro.obs must stay importable without repro.faults.
    from repro.obs.registry import REGISTRY

    REGISTRY.register({"subsystem": "faults"}, _collect_fault_metrics)


_register_metrics()
