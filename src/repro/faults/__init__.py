"""Deterministic fault injection for the LSM durability path.

The subsystem has three layers:

* :mod:`repro.faults.schedule` -- :class:`FaultSchedule`: seeded, one-shot
  fault points (torn writes, failed fsyncs, ``ENOSPC``, bit flips, crashes
  around renames), fully reproducible from a single integer seed.
* :mod:`repro.faults.io` -- :class:`FaultyIO`: the filesystem shim the
  store, WAL and SSTable code route their durability-critical I/O through
  (production uses the pass-through :data:`REAL_IO`).
* :mod:`repro.faults.harness` -- :class:`CrashRecoveryHarness`: runs a
  seeded workload against an :class:`~repro.kvstore.lsm.LSMStore` under a
  fault schedule, kills the store at the scheduled point, reopens it and
  checks recovery against an in-memory oracle of acknowledged operations.
* :mod:`repro.faults.ingest` -- :func:`run_ingest_replay`: kills the
  streaming ingester mid-batch (before the apply, or between apply and
  checkpoint), replays from the durable checkpoint, and requires the
  recovered index to be logically identical to a clean batch build.

Replay any failing seed from the shell::

    python -m repro faults --seed 1234
    python -m repro faults --ingest --seed 1234
"""

from repro.faults.io import REAL_IO, FaultyIO, RealIO
from repro.faults.schedule import (
    BIT_FLIP,
    CORRUPT,
    CRASH,
    CRASH_AFTER_RENAME,
    CRASH_BEFORE_RENAME,
    ENOSPC,
    FAIL_FSYNC,
    TORN_WRITE,
    TRUNCATE_CRASH,
    Fault,
    FaultSchedule,
    SimulatedCrash,
    faults_injected_total,
)

__all__ = [
    "RealIO",
    "REAL_IO",
    "FaultyIO",
    "Fault",
    "FaultSchedule",
    "SimulatedCrash",
    "faults_injected_total",
    "TORN_WRITE",
    "ENOSPC",
    "FAIL_FSYNC",
    "BIT_FLIP",
    "CRASH",
    "CRASH_BEFORE_RENAME",
    "CRASH_AFTER_RENAME",
    "TRUNCATE_CRASH",
    "CORRUPT",
    # lazily re-exported from repro.faults.harness (see __getattr__)
    "CrashRecoveryHarness",
    "CrashRecoveryFailure",
    "run_seed",
    # lazily re-exported from repro.faults.ingest
    "IngestReplayFailure",
    "generate_feed_events",
    "run_ingest_replay",
]

_HARNESS_EXPORTS = {"CrashRecoveryHarness", "CrashRecoveryFailure", "run_seed"}
_INGEST_EXPORTS = {
    "IngestReplayFailure",
    "generate_feed_events",
    "run_ingest_replay",
}


def __getattr__(name: str):
    # The harnesses import repro.kvstore, which itself imports this package
    # for REAL_IO -- resolving them lazily keeps the import acyclic.
    if name in _HARNESS_EXPORTS:
        from repro.faults import harness

        return getattr(harness, name)
    if name in _INGEST_EXPORTS:
        from repro.faults import ingest

        return getattr(ingest, name)
    raise AttributeError(name)
