"""Streaming ingest: tail an append-only event feed into a live index.

The subsystem in one picture::

    producer --append--> feed.jsonl --tail--> TailIngester --micro-batch-->
        EngineSink (in-process engine)  or  ServiceSink (`ingest` RPC)
        --> SequenceIndex.update() / ShardedSequenceIndex.update()
        ... while detect()/count()/contains() keep serving

* :mod:`repro.ingest.feed` -- the JSONL feed format, append-stamped for
  freshness measurement, torn-tail safe for byte-offset tailing;
* :mod:`repro.ingest.checkpoint` -- durable apply-then-checkpoint offsets;
* :mod:`repro.ingest.ingester` -- the micro-batch tail loop, replay
  deduplication, backpressure-aware service sink, metrics;
* :mod:`repro.ingest.freshness` -- the event-appended -> visible-in-detect
  latency histogram behind the freshness SLO;
* :mod:`repro.ingest.convergence` -- canonical index snapshots used to
  prove streaming == batch (see :mod:`repro.faults.ingest`).

Operator docs: docs/INGEST.md.  CLI: ``python -m repro feed`` /
``python -m repro ingest``.
"""

from repro.ingest.checkpoint import Checkpoint, load_checkpoint, store_checkpoint
from repro.ingest.convergence import index_snapshot
from repro.ingest.feed import (
    FeedEvent,
    FeedFormatError,
    FeedWriter,
    feed_size,
    read_feed,
)
from repro.ingest.freshness import FreshnessTracker
from repro.ingest.ingester import (
    EngineSink,
    IngestStats,
    ServiceSink,
    TailIngester,
    drop_indexed,
)

__all__ = [
    "Checkpoint",
    "EngineSink",
    "FeedEvent",
    "FeedFormatError",
    "FeedWriter",
    "FreshnessTracker",
    "IngestStats",
    "ServiceSink",
    "TailIngester",
    "drop_indexed",
    "feed_size",
    "index_snapshot",
    "load_checkpoint",
    "read_feed",
    "store_checkpoint",
]
