"""Canonical index snapshots: proving two build paths reached the same state.

Micro-batched streaming ingest applies the same events as one big batch
``update()``, but in different batch groupings -- so the *byte* layout of
an Index row can differ (entries from different traces interleave in batch
order, and the postings codec chunks per batch) while the *logical* index
is identical.  :func:`index_snapshot` canonicalizes away exactly that
freedom and nothing else:

* ``Seq`` rows are per-trace and append-ordered -- compared verbatim;
* ``Index`` rows are compared as the *sorted* set of decoded
  ``(trace, ts_a, ts_b)`` entries per (partition, pair) -- batch grouping
  only permutes entry order across traces, never the entries themselves;
* ``Count``/``ReverseCount`` durations and completion counts and the
  per-trace ``LastChecked`` tails are order-insensitive sums/maxima --
  compared verbatim.

Works over a single-store engine or a sharded coordinator (shard snapshots
merge; traces are disjoint across shards).  The ingest crash-replay
harness (:mod:`repro.faults.ingest`) asserts snapshot equality between a
killed-and-replayed streaming build and a clean batch build.
"""

from __future__ import annotations

from typing import Any

from repro.core.postings import decode_index_value

__all__ = ["index_snapshot"]

_INDEX_PREFIX = "index"


def _partition_of(table_name: str) -> str | None:
    """Map a physical table name to its Index partition, or ``None``."""
    if table_name == _INDEX_PREFIX:
        return ""
    if table_name.startswith(_INDEX_PREFIX + ":"):
        return table_name.split(":", 1)[1]
    return None


def index_snapshot(engine: Any) -> dict[str, Any]:
    """Canonical logical contents of an engine's index tables.

    ``engine`` is a :class:`~repro.core.engine.SequenceIndex` or a
    :class:`~repro.shard.index.ShardedSequenceIndex`; snapshots of engines
    holding the same logical index compare equal regardless of batch
    grouping, storage codec, compression or shard count.
    """
    shards = list(getattr(engine, "shards", None) or [engine])
    seq: dict[str, tuple] = {}
    index: dict[tuple[str, tuple[str, str]], list] = {}
    counts: dict[tuple[str, str], list[float]] = {}
    reverse: dict[tuple[str, str], list[float]] = {}
    checked: dict[tuple[str, str], dict[str, float]] = {}
    for shard in shards:
        store = shard.store
        for trace_id, events in shard.tables.iter_sequences():
            seq[trace_id] = tuple(events)
        for table in store.list_tables():
            partition = _partition_of(table)
            if partition is None:
                continue
            for pair, raw in store.scan(table):
                entries = [tuple(entry) for entry in decode_index_value(raw)]
                index.setdefault((partition, tuple(pair)), []).extend(entries)
        for key, per_second in store.scan("count"):
            for second, (duration, completions) in per_second.items():
                slot = counts.setdefault((key[0], second), [0.0, 0])
                slot[0] += duration
                slot[1] += int(completions)
        for key, per_first in store.scan("reverse_count"):
            for first, (duration, completions) in per_first.items():
                slot = reverse.setdefault((first, key[0]), [0.0, 0])
                slot[0] += duration
                slot[1] += int(completions)
        for pair, tails in store.scan("last_checked"):
            merged = checked.setdefault(tuple(pair), {})
            for trace_id, tail in tails.items():
                if trace_id not in merged or tail > merged[trace_id]:
                    merged[trace_id] = tail
    return {
        "seq": seq,
        "index": {
            key: tuple(sorted(entries)) for key, entries in index.items()
        },
        "count": {key: tuple(slot) for key, slot in counts.items()},
        "reverse_count": {key: tuple(slot) for key, slot in reverse.items()},
        "last_checked": checked,
    }
